"""SaSeVAL: safety/security-aware validation of safety-critical systems.

A production-quality reproduction of *SaSeVAL* (Wolschke et al., DSN 2021):
a systematic process that derives security attacks traceable to safety
goals, plus everything needed to actually run them -- a threat library with
the STRIDE mappings, an ISO 26262 HARA engine, ISO/SAE 21434 TARA support,
an attack-description DSL compiling to executable test cases, and a
discrete-event automotive simulator (vehicle, CAN, V2X, Bluetooth keyless
entry, security controls, attack injectors) serving as the system under
test.

Quickstart::

    from repro import build_catalog, Hara, SaSeValPipeline
    from repro.model import FailureMode, Severity, Exposure, Controllability

    pipeline = SaSeValPipeline(name="demo")
    pipeline.provide_threat_library(build_catalog())

    hara = Hara(name="demo")
    fn = hara.add_function("Rat01", "Road works warning")
    hara.rate(fn, FailureMode.NO, hazard="Driver not warned",
              severity=Severity.S3, exposure=Exposure.E3,
              controllability=Controllability.C3)
    hara.derive_goal("Avoid ineffective warning", from_functions=["Rat01"])
    pipeline.provide_safety_analysis(hara)

    deriver = pipeline.begin_attack_description()
    # ... deriver.derive(...) per safety goal x attack type ...

See ``examples/`` for complete end-to-end runs of the paper's two use
cases.
"""

from repro.core.completeness import CompletenessAuditor, CompletenessReport
from repro.core.derivation import AttackDeriver, AttackDescriptionSet
from repro.core.pipeline import SaSeValPipeline, Step, stage_graph
from repro.core.prioritization import Prioritizer, TestPlan
from repro.core.traceability import TraceMatrix
from repro.hara.analysis import Hara
from repro.hara.asil import determine_asil
from repro.model.attack import AttackCategory, AttackDescription
from repro.model.ratings import Asil
from repro.model.safety import SafetyConcern, SafetyGoal
from repro.model.threat import AttackType, StrideType, ThreatScenario
from repro.threatlib.builder import ThreatLibraryBuilder
from repro.threatlib.catalog import build_catalog
from repro.threatlib.library import ThreatLibrary

__version__ = "1.0.0"

__all__ = [
    "Asil",
    "AttackCategory",
    "AttackDeriver",
    "AttackDescription",
    "AttackDescriptionSet",
    "AttackType",
    "CompletenessAuditor",
    "CompletenessReport",
    "Hara",
    "Prioritizer",
    "SaSeValPipeline",
    "SafetyConcern",
    "SafetyGoal",
    "Step",
    "StrideType",
    "TestPlan",
    "ThreatLibrary",
    "ThreatLibraryBuilder",
    "ThreatScenario",
    "TraceMatrix",
    "__version__",
    "build_catalog",
    "determine_asil",
    "stage_graph",
]
