"""SaSeVAL: safety/security-aware validation of safety-critical systems.

A production-quality reproduction of *SaSeVAL* (Wolschke et al., DSN 2021):
a systematic process that derives security attacks traceable to safety
goals, plus everything needed to actually run them -- a threat library with
the STRIDE mappings, an ISO 26262 HARA engine, ISO/SAE 21434 TARA support,
an attack-description DSL compiling to executable test cases, and a
discrete-event automotive simulator (vehicle, CAN, V2X, Bluetooth keyless
entry, security controls, attack injectors) serving as the system under
test.

Quickstart (the :mod:`repro.api` facade)::

    from repro import Workspace

    ws = Workspace()                       # the paper's two use cases
    pipeline = ws.pipeline("uc1")          # Steps 1-3 + RQ1 audits
    print(len(pipeline.attacks), pipeline.report.complete)

    ws.run("AD08", "uc2")                  # execute a bound attack
    ws.campaign(family="parity")           # fan a variant family out
    print(ws.results().summary())          # one queryable ResultSet
    print(ws.results().to_markdown())      # ... with uniform exporters

Custom analyses use the immutable builder directly::

    from repro import Pipeline

    pipeline = (
        Pipeline.builder("demo")
        .with_threat_library(library)
        .with_hara(hara)
        .derive_attacks(lambda deriver: deriver.derive(...))
        .build()
    )

See ``examples/`` for complete end-to-end runs of the paper's two use
cases, and the README migration note for moving off the legacy
:class:`SaSeValPipeline` step protocol.
"""

from repro.api import (
    Pipeline,
    PipelineBuilder,
    UseCaseDefinition,
    Workspace,
    default_workspace,
)
from repro.core.completeness import CompletenessAuditor, CompletenessReport
from repro.core.derivation import AttackDeriver, AttackDescriptionSet
from repro.core.pipeline import SaSeValPipeline, Step, stage_graph
from repro.core.prioritization import Prioritizer, TestPlan
from repro.core.traceability import TraceMatrix
from repro.hara.analysis import Hara
from repro.hara.asil import determine_asil
from repro.model.attack import AttackCategory, AttackDescription
from repro.model.ratings import Asil
from repro.model.safety import SafetyConcern, SafetyGoal
from repro.model.threat import AttackType, StrideType, ThreatScenario
from repro.results import ResultSet, ResultSink, RunRecord
from repro.runtime import (
    CancelToken,
    ProcessBackend,
    Runtime,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.threatlib.builder import ThreatLibraryBuilder
from repro.threatlib.catalog import build_catalog
from repro.threatlib.library import ThreatLibrary

__version__ = "1.2.0"

__all__ = [
    "Asil",
    "AttackCategory",
    "AttackDeriver",
    "AttackDescription",
    "AttackDescriptionSet",
    "AttackType",
    "CancelToken",
    "CompletenessAuditor",
    "CompletenessReport",
    "Hara",
    "Pipeline",
    "PipelineBuilder",
    "Prioritizer",
    "ProcessBackend",
    "ResultSet",
    "ResultSink",
    "RunRecord",
    "Runtime",
    "SaSeValPipeline",
    "SafetyConcern",
    "SafetyGoal",
    "SerialBackend",
    "Step",
    "StrideType",
    "TestPlan",
    "ThreadBackend",
    "ThreatLibrary",
    "ThreatLibraryBuilder",
    "ThreatScenario",
    "TraceMatrix",
    "UseCaseDefinition",
    "Workspace",
    "__version__",
    "build_catalog",
    "default_workspace",
    "determine_asil",
    "make_backend",
    "stage_graph",
]
