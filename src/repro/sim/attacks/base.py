"""Attack-injector framework.

An injector is the executable counterpart of an attack description's
*implementation comments*: it is attached to a channel of the simulated
SUT and scheduled on the shared clock.  Injectors keep simple statistics
(messages sent, window of activity) so test oracles can correlate SUT
reactions with attacker activity.
"""

from __future__ import annotations

import abc

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.network import Channel, Message


class AttackInjector(abc.ABC):
    """Base class for all attack injectors.

    Attributes:
        name: Attacker identity / label.
        channel: The channel the injector operates on.
    """

    def __init__(self, name: str, clock: SimClock, channel: Channel) -> None:
        self.name = name
        self.channel = channel
        self._clock = clock
        self.messages_sent = 0
        self.started_at: float | None = None
        self.ended_at: float | None = None

    @abc.abstractmethod
    def launch(self, start_ms: float) -> None:
        """Schedule the attack to begin at ``start_ms`` (absolute time)."""

    def _mark_start(self) -> None:
        if self.started_at is None:
            self.started_at = self._clock.now

    def _mark_end(self) -> None:
        self.ended_at = self._clock.now

    def _emit(self, message: Message) -> None:
        """Send one attack message and count it."""
        self._mark_start()
        self.channel.send(message)
        self.messages_sent += 1

    def _validate_window(self, start_ms: float, duration_ms: float) -> None:
        if start_ms < self._clock.now:
            raise SimulationError(
                f"attack {self.name!r}: start {start_ms} ms is in the past"
            )
        if duration_ms <= 0:
            raise SimulationError(
                f"attack {self.name!r}: duration must be positive"
            )


__all__ = [
    "AttackInjector",
]
