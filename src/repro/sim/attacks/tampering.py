"""Tampering and jamming attacks.

* :class:`TamperingAttack` -- a man-in-the-middle that observes traffic
  and injects *modified* copies.  Without the victim's key the attacker
  cannot recompute the MAC, so the tampered copy carries the original
  (now wrong) tag -- sender authentication catches it; in architectures
  without authentication, plausibility checks are the remaining line of
  defence (§III-C's safety-measure fallback).
* :class:`JammingAttack` -- denial of service on the physical channel
  (Table IV lists "Jamming" under Denial of service); during the jam
  window all sends are dropped.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.attacks.base import AttackInjector
from repro.sim.clock import SimClock
from repro.sim.network import Channel, Message

#: A payload mutator: receives a copy of the payload, returns the
#: tampered payload.
PayloadMutator = Callable[[dict[str, Any]], dict[str, Any]]


class TamperingAttack(AttackInjector):
    """Inject modified copies of observed messages.

    Attributes:
        target_kinds: Message kinds to tamper with.
        mutator: The payload modification applied.
        delay_ms: Gap between observing a message and injecting the
            tampered copy.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Channel,
        target_kinds: set[str],
        mutator: PayloadMutator,
        delay_ms: float = 5.0,
    ) -> None:
        super().__init__(name, clock, channel)
        if not target_kinds:
            raise SimulationError("tampering needs at least one target kind")
        self.target_kinds = set(target_kinds)
        self.mutator = mutator
        self.delay_ms = delay_ms
        self._armed = False
        self._handled_ids: set[int] = set()
        self.tampered_count = 0
        channel.tap(self._observe)

    def launch(self, start_ms: float) -> None:
        """Arm the man-in-the-middle from ``start_ms`` on."""
        self._clock.schedule_at(start_ms, self._arm)

    def _arm(self) -> None:
        self._armed = True
        self._mark_start()

    def _observe(self, message: Message) -> None:
        if not self._armed or message.kind not in self.target_kinds:
            return
        if message.unique_id in self._handled_ids:
            return  # our own injection coming back around the tap
        self._handled_ids.add(message.unique_id)
        tampered = dataclasses.replace(
            message,
            payload=self.mutator(dict(message.payload)),
            # auth_tag intentionally kept: the attacker can't recompute it.
        )
        self.tampered_count += 1
        self._clock.schedule(
            self.delay_ms, lambda m=tampered: self._inject(m)
        )

    def _inject(self, message: Message) -> None:
        self.channel.send(message)
        self.messages_sent += 1


class JammingAttack(AttackInjector):
    """Jam the channel for a window of time.

    Attributes:
        duration_ms: Length of the jamming window.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Channel,
        duration_ms: float = 5000.0,
    ) -> None:
        super().__init__(name, clock, channel)
        if duration_ms <= 0:
            raise SimulationError("jam duration must be positive")
        self.duration_ms = duration_ms

    def launch(self, start_ms: float) -> None:
        """Schedule the jamming window."""
        self._validate_window(start_ms, self.duration_ms)
        self._clock.schedule_at(start_ms, self._start_jam)

    def _start_jam(self) -> None:
        self._mark_start()
        self.channel.jam(self.duration_ms)
        self._clock.schedule(self.duration_ms, self._mark_end)


__all__ = [
    "JammingAttack",
    "PayloadMutator",
    "TamperingAttack",
]
