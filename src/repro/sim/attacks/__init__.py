"""Attack injectors -- executable attack implementations (Step 4 inputs).

Each injector corresponds to Table IV attack types:

* :class:`~repro.sim.attacks.flooding.FloodingAttack` -- Denial of
  service / "Disable", "Denial of service" (AD20),
* :class:`~repro.sim.attacks.spoofing.SpoofingAttack` and
  :class:`~repro.sim.attacks.spoofing.KeyForgeryAttack` -- Spoofing /
  "Fake messages", "Spoofing" (AD08),
* :class:`~repro.sim.attacks.replay.ReplayAttack` -- Repudiation /
  "Replay",
* :class:`~repro.sim.attacks.replay.EavesdropAttack` -- Information
  disclosure / "Eavesdropping", "Listen",
* :class:`~repro.sim.attacks.tampering.TamperingAttack` -- Tampering /
  "Alter", "Corrupt messages",
* :class:`~repro.sim.attacks.tampering.JammingAttack` -- Denial of
  service / "Jamming".
"""

from repro.sim.attacks.base import AttackInjector
from repro.sim.attacks.flooding import FloodingAttack
from repro.sim.attacks.replay import EavesdropAttack, ReplayAttack
from repro.sim.attacks.spoofing import KeyForgeryAttack, SpoofingAttack
from repro.sim.attacks.tampering import JammingAttack, TamperingAttack

__all__ = [
    "AttackInjector",
    "EavesdropAttack",
    "FloodingAttack",
    "JammingAttack",
    "KeyForgeryAttack",
    "ReplayAttack",
    "SpoofingAttack",
    "TamperingAttack",
]
