"""Spoofing attacks: forged senders, fake messages, key forgery (AD08).

Two injectors:

* :class:`SpoofingAttack` -- send messages claiming another identity
  (without its key: the honest MAC cannot be produced) or fake content
  from an attacker-controlled identity (e.g. a forged speed-limit
  broadcast).
* :class:`KeyForgeryAttack` -- AD08's implementation comments verbatim:
  "a) Randomly replace IDs of keys and b) test against increasing IDs (if
  a valid ID is known)".  The attacker holds an authenticated link (their
  own provisioned identity, per the AD08 precondition) and sweeps
  electronic key IDs against the whitelist.
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import SimulationError
from repro.sim.attacks.base import AttackInjector
from repro.sim.ble import KIND_OPEN
from repro.sim.clock import SimClock
from repro.sim.crypto import KeyStore
from repro.sim.network import Channel, Message


class SpoofingAttack(AttackInjector):
    """Send forged messages over a channel.

    Attributes:
        claimed_sender: The identity written into the messages.  When it
            differs from ``name`` and ``sign_as_self`` is False, the
            message is unauthenticated (the attacker lacks the victim's
            key) -- sender authentication rejects it.
        sign_as_self: Sign with the attacker's own provisioned key while
            still claiming ``claimed_sender`` -- verification against the
            claimed sender's key fails, modelling a stolen-but-wrong
            credential.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Channel,
        kind: str,
        claimed_sender: str,
        payload: dict[str, Any],
        keystore: KeyStore | None = None,
        sign_as_self: bool = False,
        location: str = "",
    ) -> None:
        super().__init__(name, clock, channel)
        self.kind = kind
        self.claimed_sender = claimed_sender
        self.payload = dict(payload)
        self.sign_as_self = sign_as_self
        self.location = location
        self._keystore = keystore
        self._counter = 1000  # distinct space from honest counters
        if sign_as_self:
            if keystore is None:
                raise SimulationError(
                    "sign_as_self spoofing needs a keystore"
                )
            keystore.provision(name)

    def launch(self, start_ms: float, count: int = 1, gap_ms: float = 50.0) -> None:
        """Send ``count`` forged messages starting at ``start_ms``."""
        if count < 1:
            raise SimulationError("spoofing count must be >= 1")
        for index in range(count):
            self._clock.schedule_at(
                start_ms + index * gap_ms, self._send_one
            )

    def _send_one(self) -> None:
        self._counter += 1
        message = Message(
            kind=self.kind,
            sender=self.claimed_sender,
            payload=dict(self.payload),
            counter=self._counter,
            location=self.location,
        ).with_timestamp(self._clock.now)
        if self.sign_as_self:
            assert self._keystore is not None
            key = self._keystore.key_of(self.name)
            from repro.sim.crypto import compute_mac

            message = Message(
                kind=message.kind,
                sender=message.sender,
                payload=message.payload,
                counter=message.counter,
                timestamp=message.timestamp,
                auth_tag=compute_mac(key, message.signing_bytes()),
                location=message.location,
            )
        self._emit(message)


class KeyForgeryAttack(AttackInjector):
    """AD08: sweep electronic key IDs over an authenticated link.

    Attributes:
        strategy: ``"random"`` (randomly replace IDs of keys, seeded for
            reproducibility) or ``"incrementing"`` (test against
            increasing IDs from ``known_valid_id``).
        attempts: Number of forged open commands to send.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Channel,
        keystore: KeyStore,
        strategy: str = "random",
        attempts: int = 20,
        gap_ms: float = 100.0,
        known_valid_id: str = "KEY-1000",
        seed: int = 42,
    ) -> None:
        super().__init__(name, clock, channel)
        if strategy not in ("random", "incrementing"):
            raise SimulationError(
                f"unknown key forgery strategy {strategy!r}"
            )
        if attempts < 1:
            raise SimulationError("attempts must be >= 1")
        self.strategy = strategy
        self.attempts = attempts
        self.gap_ms = gap_ms
        self.known_valid_id = known_valid_id
        self._keystore = keystore
        self._rng = random.Random(seed)
        self._counter = 0
        keystore.provision(name)  # "Attacker has an authenticated communication link"

    def launch(self, start_ms: float) -> None:
        """Schedule the ID sweep starting at ``start_ms``."""
        for index in range(self.attempts):
            self._clock.schedule_at(
                start_ms + index * self.gap_ms,
                lambda i=index: self._attempt(i),
            )

    def _attempt(self, index: int) -> None:
        self._counter += 1
        message = Message(
            kind=KIND_OPEN,
            sender=self.name,
            payload={"key_id": self._forge_id(index)},
            counter=self._counter,
            location="at-vehicle",
        ).with_timestamp(self._clock.now)
        self._emit(message.signed(self._keystore))

    def _forge_id(self, index: int) -> str:
        if self.strategy == "random":
            return f"KEY-{self._rng.randint(0, 99999):05d}"
        base = int(self.known_valid_id.rsplit("-", 1)[1])
        return f"KEY-{base + index + 1}"


__all__ = [
    "KeyForgeryAttack",
    "SpoofingAttack",
]
