"""Packet-flooding attack (AD20).

"Attacker tries to overload the ECU by packet flooding. ...  Create an
authenticated sender as attacker beside the original sender, additionally
the attacker sender should send extra messages (with high frequency or in
chaotic way)."

The injector supports both halves of that implementation comment:

* ``authenticated=True`` provisions the attacker in the keystore, so
  sender authentication does *not* stop the flood -- only the flooding
  detector's frequency analysis can,
* ``chaotic=True`` varies the inter-message gap deterministically (a
  fixed pattern of long/short gaps) instead of a constant rate, to probe
  naive fixed-window detectors.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.attacks.base import AttackInjector
from repro.sim.clock import SimClock
from repro.sim.crypto import KeyStore
from repro.sim.network import Channel, Message

#: Deterministic "chaotic" gap pattern (multipliers on the base interval).
_CHAOTIC_PATTERN = (0.2, 1.7, 0.4, 0.1, 2.3, 0.6, 0.3, 1.1)


class FloodingAttack(AttackInjector):
    """Flood a channel with extra messages from one sender identity.

    Attributes:
        kind: Message kind to flood with (mimics legitimate traffic).
        interval_ms: Base gap between messages (1/rate).
        duration_ms: Attack window length.
        authenticated: Sign messages with the attacker's provisioned key.
        chaotic: Use the varying gap pattern instead of a constant rate.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Channel,
        kind: str,
        interval_ms: float = 5.0,
        duration_ms: float = 5000.0,
        keystore: KeyStore | None = None,
        authenticated: bool = True,
        chaotic: bool = False,
        payload_factory: Callable[[int], dict[str, Any]] | None = None,
        location: str = "",
    ) -> None:
        super().__init__(name, clock, channel)
        self.kind = kind
        self.interval_ms = interval_ms
        self.duration_ms = duration_ms
        self.authenticated = authenticated
        self.chaotic = chaotic
        self.location = location
        self._keystore = keystore
        self._payload_factory = payload_factory or (lambda n: {"flood": n})
        self._counter = 0
        self._burst_end = 0.0
        self._burst_step = 0
        if authenticated:
            if keystore is None:
                raise ValueError(
                    "authenticated flooding needs a keystore to provision "
                    "the attacker identity in"
                )
            keystore.provision(name)

    def launch(self, start_ms: float) -> None:
        """Schedule the flood over [start_ms, start_ms + duration_ms]."""
        self._validate_window(start_ms, self.duration_ms)
        self._burst_end = start_ms + self.duration_ms
        self._burst_step = 0
        self._clock.schedule_at(start_ms, self._burst)

    def _burst(self) -> None:
        # The whole flood repeats through this one bound method -- a
        # closure per packet would allocate ~12k lambdas per variant.
        if self._clock.now > self._burst_end:
            self._mark_end()
            return
        self._send_one()
        gap = self.interval_ms
        if self.chaotic:
            gap *= _CHAOTIC_PATTERN[self._burst_step % len(_CHAOTIC_PATTERN)]
        self._burst_step += 1
        # post, not schedule: the burst never cancels itself, so the
        # per-packet EventHandle allocation is pure overhead.
        clock = self._clock
        clock.post(clock.now + max(gap, 0.01), self._burst)

    def _send_one(self) -> None:
        self._counter += 1
        # Timestamp at construction: one Message build per flood packet
        # (create_signed constructs the signed instance directly) on the
        # hottest send path.
        if self.authenticated:
            assert self._keystore is not None
            message = Message.create_signed(
                self._keystore,
                kind=self.kind,
                sender=self.name,
                payload=self._payload_factory(self._counter),
                counter=self._counter,
                timestamp=self._clock.now,
                location=self.location,
            )
        else:
            message = Message(
                kind=self.kind,
                sender=self.name,
                payload=self._payload_factory(self._counter),
                counter=self._counter,
                timestamp=self._clock.now,
                location=self.location,
            )
        self._emit(message)


__all__ = [
    "FloodingAttack",
]
