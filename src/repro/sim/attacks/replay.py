"""Replay and eavesdropping attacks.

* :class:`ReplayAttack` -- captures traffic via a channel tap and re-sends
  it verbatim later and/or on another channel.  Because the replayed
  message keeps its original counter, timestamp and (valid!) MAC, sender
  authentication passes -- only freshness checks (replay guard, message
  counter) or location plausibility can stop it.  Cross-channel replay
  models UC I's "warnings replayed from other locations or other
  vehicles" (SG05).
* :class:`EavesdropAttack` -- a purely passive tap building the usage
  profile of §IV-B's privacy attacks ("attacks may create profiles about
  the usage", SG06 "Avoid profile building with warnings").
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.sim.attacks.base import AttackInjector
from repro.sim.clock import SimClock
from repro.sim.network import Channel, Message


class ReplayAttack(AttackInjector):
    """Capture-and-replay of channel traffic.

    Attributes:
        capture_kinds: Message kinds worth recording (None = everything).
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Channel,
        capture_kinds: set[str] | None = None,
    ) -> None:
        super().__init__(name, clock, channel)
        self.capture_kinds = capture_kinds
        self.captured: list[Message] = []
        self._seen_ids: set[int] = set()
        channel.tap(self._capture)

    def launch(self, start_ms: float) -> None:
        """Capturing is armed at construction; launch is a no-op.

        Use :meth:`replay` to schedule the actual re-sends.
        """

    def _capture(self, message: Message) -> None:
        if message.unique_id in self._seen_ids:
            return  # our own replay coming back around the tap
        if self.capture_kinds is None or message.kind in self.capture_kinds:
            self.captured.append(message)
            self._seen_ids.add(message.unique_id)

    def replay(
        self,
        at_ms: float,
        index: int = -1,
        count: int = 1,
        gap_ms: float = 50.0,
        via: Channel | None = None,
    ) -> None:
        """Schedule ``count`` verbatim re-sends of a captured message.

        Args:
            at_ms: Absolute start time; must leave time to capture first.
            index: Which captured message (default: latest at replay time).
            count: Number of re-sends.
            gap_ms: Gap between re-sends.
            via: Channel to replay on (default: the capture channel);
                a different channel models replaying at another location /
                towards another vehicle.
        """
        if count < 1:
            raise SimulationError("replay count must be >= 1")
        target = via or self.channel
        for repetition in range(count):
            self._clock.schedule_at(
                at_ms + repetition * gap_ms,
                lambda i=index, t=target: self._replay_one(i, t),
            )

    def _replay_one(self, index: int, target: Channel) -> None:
        if not self.captured:
            return  # nothing captured yet; the attack fizzles
        try:
            message = self.captured[index]
        except IndexError:
            return
        self._mark_start()
        # Verbatim: original counter, timestamp and MAC are preserved.
        target.send(message)
        self.messages_sent += 1


class EavesdropAttack(AttackInjector):
    """Passive profiling of channel traffic.

    Records every observed message and derives a usage profile: counts per
    message kind, per sender, and the observation times -- enough to show
    that "attacks may create profiles about the usage" when traffic is
    observable.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Channel,
        classifier: Callable[[Message], str] | None = None,
    ) -> None:
        super().__init__(name, clock, channel)
        self._classifier = classifier or (lambda message: message.kind)
        self.observations: list[tuple[float, str, str]] = []
        channel.tap(self._observe)

    def launch(self, start_ms: float) -> None:
        """Passive attacks are armed at construction; launch is a no-op."""

    def _observe(self, message: Message) -> None:
        self._mark_start()
        self.observations.append(
            (self._clock.now, self._classifier(message), message.sender)
        )

    def profile(self) -> dict[str, dict[str, int]]:
        """The derived usage profile.

        Returns ``{"by_kind": {...}, "by_sender": {...}}`` observation
        counts.  A non-trivial profile from an outsider position is the
        success evidence of the privacy attacks.
        """
        by_kind: dict[str, int] = {}
        by_sender: dict[str, int] = {}
        for __, kind, sender in self.observations:
            by_kind[kind] = by_kind.get(kind, 0) + 1
            by_sender[sender] = by_sender.get(sender, 0) + 1
        return {"by_kind": by_kind, "by_sender": by_sender}

    def observed_activity_times(self, kind: str) -> tuple[float, ...]:
        """Observation times of one message kind (usage pattern)."""
        return tuple(
            time for time, observed, __ in self.observations if observed == kind
        )


__all__ = [
    "EavesdropAttack",
    "ReplayAttack",
]
