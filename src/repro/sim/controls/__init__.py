"""Security controls of the simulated SUT (the 'Expected Measures').

* framework: :class:`~repro.sim.controls.base.SecurityControl`,
  :class:`~repro.sim.controls.base.ControlPipeline`,
  :class:`~repro.sim.controls.base.Decision`,
* authentication: :class:`~repro.sim.controls.authentication
  .SenderAuthentication`, :class:`~repro.sim.controls.authentication
  .MessageCounterCheck`,
* availability: :class:`~repro.sim.controls.flooding.FloodingDetector`,
* access: :class:`~repro.sim.controls.access.IdWhitelist`,
  :class:`~repro.sim.controls.access.ReplayGuard`,
* plausibility: :class:`~repro.sim.controls.plausibility.ValueRangeCheck`,
  :class:`~repro.sim.controls.plausibility.LocationConsistencyCheck`.
"""

from repro.sim.controls.access import IdWhitelist, ReplayGuard
from repro.sim.controls.authentication import (
    MessageCounterCheck,
    SenderAuthentication,
)
from repro.sim.controls.base import (
    ControlPipeline,
    Decision,
    DetectionRecord,
    SecurityControl,
)
from repro.sim.controls.flooding import FloodingDetector
from repro.sim.controls.plausibility import (
    LocationConsistencyCheck,
    ValueRangeCheck,
)
from repro.sim.controls.pseudonym import PseudonymProvider, linkability

__all__ = [
    "ControlPipeline",
    "Decision",
    "DetectionRecord",
    "FloodingDetector",
    "IdWhitelist",
    "LocationConsistencyCheck",
    "MessageCounterCheck",
    "PseudonymProvider",
    "ReplayGuard",
    "SecurityControl",
    "SenderAuthentication",
    "ValueRangeCheck",
    "linkability",
]
