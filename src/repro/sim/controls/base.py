"""Security-control framework of the simulated SUT.

Attack descriptions name their *Expected Measures* ("Message counter for
broken messages", "Check received vehicles electronic ID with list of
allowed IDs"); in the simulator each measure is a
:class:`SecurityControl` that inspects incoming messages and returns a
:class:`Decision`.  Controls are stacked in a :class:`ControlPipeline` in
front of an ECU: the first denial wins, every denial is published as a
``control.detection`` event (the "dedicated log files" of §III-C) and
recorded in the pipeline's detection log, which test oracles read to
decide the *Attack Fails* criteria.
"""

from __future__ import annotations

import abc
from typing import NamedTuple

from repro.sim.clock import SimClock
from repro.sim.events import EventBus
from repro.sim.network import Message


class Decision(NamedTuple):
    """The verdict of one control over one message.

    A ``NamedTuple`` rather than a frozen dataclass: decisions are
    allocated on the per-message admit path (one per denial under a
    flood), and tuple construction skips the dataclass ``__init__``
    overhead while keeping immutability and field names.

    Attributes:
        allowed: True to pass the message on.
        control: Name of the deciding control (empty for the implicit
            "no control objected" pass).
        reason: Denial reason / pass note, human-readable.
    """

    allowed: bool
    control: str = ""
    reason: str = ""

    @classmethod
    def passed(cls, control: str = "", reason: str = "") -> "Decision":
        """An allow decision.

        Controls on the message hot path should prefer their pre-built
        :attr:`SecurityControl.pass_decision` -- a ``Decision`` is
        immutable, so one allow verdict per control serves every message
        instead of allocating one per inspection.
        """
        return cls(allowed=True, control=control, reason=reason)

    @classmethod
    def denied(cls, control: str, reason: str) -> "Decision":
        """A deny decision; the reason lands in the detection log."""
        return cls(allowed=False, control=control, reason=reason)


class DetectionRecord(NamedTuple):
    """One detection-log entry (a denied message).

    A ``NamedTuple`` for the same reason as :class:`Decision`: a
    protected ECU under a flood appends one record per denied packet.
    """

    time: float
    control: str
    reason: str
    message_kind: str
    sender: str


class SecurityControl(abc.ABC):
    """Base class for all security controls.

    Subclasses implement :meth:`inspect`; they may keep per-sender state
    (counters, rate windows, replay caches) -- one control instance guards
    one ECU, so state is per protection point, as in a real SUT.

    ``__slots__``-based (as are the built-in subclasses): ``inspect``
    runs once per delivered message per ECU, where slot attribute access
    is measurably cheaper than a ``__dict__`` walk.  Subclasses that
    declare no ``__slots__`` of their own still work (they just carry a
    ``__dict__`` for their extra attributes).
    """

    __slots__ = ("name", "pass_decision")

    def __init__(self, name: str) -> None:
        self.name = name
        #: Reusable allow verdict (immutable; one instance per control).
        self.pass_decision = Decision.passed(name)

    @abc.abstractmethod
    def inspect(self, message: Message, now: float) -> Decision:
        """Inspect a message at time ``now`` and allow or deny it."""

    def reset(self) -> None:
        """Clear any per-sender state (between test executions)."""


#: The implicit "no control objected" verdict (immutable, shared).
_PIPELINE_PASS = Decision.passed()


class ControlPipeline:
    """An ordered stack of controls guarding one ECU.

    The pipeline is also the ECU's intrusion log: every denial is recorded
    and published on the event bus under
    ``control.detection.<ecu>`` so oracles and the safety monitor can react.
    """

    __slots__ = (
        "ecu_name",
        "_clock",
        "_bus",
        "_controls",
        "_detections",
        "_counts",
        "_detection_topic",
        "_detection_probe",
    )

    def __init__(
        self,
        ecu_name: str,
        clock: SimClock,
        bus: EventBus,
        controls: list[SecurityControl] | None = None,
    ) -> None:
        self.ecu_name = ecu_name
        self._clock = clock
        self._bus = bus
        self._controls: list[SecurityControl] = list(controls or [])
        # Columnar log: plain 5-tuples in DetectionRecord field order.
        # A flood appends one row per denied packet; the named view is
        # materialised lazily (``detections``) while per-control totals
        # are kept incrementally (``control_counts``), so verdict
        # derivation never walks tens of thousands of rows.
        self._detections: list[tuple] = []
        self._counts: dict[str, int] = {}
        # Built once: a per-denial f-string means a fresh hash per publish.
        self._detection_topic = f"control.detection.{ecu_name}"
        # A flood denies tens of thousands of messages per variant; the
        # probe keeps each unobserved denial event at counter cost.
        self._detection_probe = bus.probe(self._detection_topic)

    def add(self, control: SecurityControl) -> "ControlPipeline":
        """Append a control; returns self for chaining."""
        self._controls.append(control)
        return self

    @property
    def controls(self) -> tuple[SecurityControl, ...]:
        """The stacked controls, in inspection order."""
        return tuple(self._controls)

    def admit(self, message: Message) -> Decision:
        """Run all controls; first denial wins and is logged."""
        controls = self._controls
        if not controls:
            return _PIPELINE_PASS
        now = self._clock.now
        for control in controls:
            decision = control.inspect(message, now)
            if not decision.allowed:
                # Raw-tuple row (DetectionRecord field order): building
                # the NamedTuple here costs ~3x on a path that runs
                # once per denied packet; named access is restored
                # lazily by the ``detections`` view.
                name = decision.control or control.name
                self._detections.append(
                    (
                        now,
                        name,
                        decision.reason,
                        message.kind,
                        message.sender,
                    )
                )
                counts = self._counts
                counts[name] = counts.get(name, 0) + 1
                if self._detection_probe.active:
                    self._bus.publish(
                        now,
                        self._detection_topic,
                        self.ecu_name,
                        control=name,
                        reason=decision.reason,
                        kind=message.kind,
                        sender=message.sender,
                    )
                else:
                    # Inlined EventBus.tally: one increment per denial.
                    topic_counts = self._detection_probe.counts
                    topic = self._detection_topic
                    try:
                        topic_counts[topic] += 1
                    except KeyError:
                        topic_counts[topic] = 1
                return decision
        return _PIPELINE_PASS

    @property
    def detections(self) -> tuple[DetectionRecord, ...]:
        """The intrusion log of this ECU (named records, built on read)."""
        return tuple(map(DetectionRecord._make, self._detections))

    def raw_detections(self) -> tuple[tuple, ...]:
        """The intrusion log as plain rows (DetectionRecord field order).

        Rows compare equal to the corresponding :class:`DetectionRecord`
        (both are tuples); scenario result collection uses this form to
        avoid materialising one NamedTuple per denied flood packet.
        """
        return tuple(self._detections)

    @property
    def control_counts(self) -> dict[str, int]:
        """Denials per control name (maintained incrementally)."""
        return dict(self._counts)

    def detections_by(self, control_name: str) -> tuple[DetectionRecord, ...]:
        """Detections raised by one named control."""
        return tuple(
            DetectionRecord._make(row)
            for row in self._detections
            if row[1] == control_name
        )

    def reset(self) -> None:
        """Clear control state and the detection log."""
        for control in self._controls:
            control.reset()
        self._detections.clear()
        self._counts.clear()


__all__ = [
    "ControlPipeline",
    "Decision",
    "DetectionRecord",
    "SecurityControl",
]
