"""Security-control framework of the simulated SUT.

Attack descriptions name their *Expected Measures* ("Message counter for
broken messages", "Check received vehicles electronic ID with list of
allowed IDs"); in the simulator each measure is a
:class:`SecurityControl` that inspects incoming messages and returns a
:class:`Decision`.  Controls are stacked in a :class:`ControlPipeline` in
front of an ECU: the first denial wins, every denial is published as a
``control.detection`` event (the "dedicated log files" of §III-C) and
recorded in the pipeline's detection log, which test oracles read to
decide the *Attack Fails* criteria.
"""

from __future__ import annotations

import abc
import dataclasses

from repro.sim.clock import SimClock
from repro.sim.events import EventBus
from repro.sim.network import Message


@dataclasses.dataclass(frozen=True)
class Decision:
    """The verdict of one control over one message.

    Attributes:
        allowed: True to pass the message on.
        control: Name of the deciding control (empty for the implicit
            "no control objected" pass).
        reason: Denial reason / pass note, human-readable.
    """

    allowed: bool
    control: str = ""
    reason: str = ""

    @classmethod
    def passed(cls, control: str = "", reason: str = "") -> "Decision":
        """An allow decision.

        Controls on the message hot path should prefer their pre-built
        :attr:`SecurityControl.pass_decision` -- a ``Decision`` is
        immutable, so one allow verdict per control serves every message
        instead of allocating one per inspection.
        """
        return cls(allowed=True, control=control, reason=reason)

    @classmethod
    def denied(cls, control: str, reason: str) -> "Decision":
        """A deny decision; the reason lands in the detection log."""
        return cls(allowed=False, control=control, reason=reason)


@dataclasses.dataclass(frozen=True)
class DetectionRecord:
    """One detection-log entry (a denied message)."""

    time: float
    control: str
    reason: str
    message_kind: str
    sender: str


class SecurityControl(abc.ABC):
    """Base class for all security controls.

    Subclasses implement :meth:`inspect`; they may keep per-sender state
    (counters, rate windows, replay caches) -- one control instance guards
    one ECU, so state is per protection point, as in a real SUT.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        #: Reusable allow verdict (immutable; one instance per control).
        self.pass_decision = Decision.passed(name)

    @abc.abstractmethod
    def inspect(self, message: Message, now: float) -> Decision:
        """Inspect a message at time ``now`` and allow or deny it."""

    def reset(self) -> None:
        """Clear any per-sender state (between test executions)."""


#: The implicit "no control objected" verdict (immutable, shared).
_PIPELINE_PASS = Decision.passed()


class ControlPipeline:
    """An ordered stack of controls guarding one ECU.

    The pipeline is also the ECU's intrusion log: every denial is recorded
    and published on the event bus under
    ``control.detection.<ecu>`` so oracles and the safety monitor can react.
    """

    def __init__(
        self,
        ecu_name: str,
        clock: SimClock,
        bus: EventBus,
        controls: list[SecurityControl] | None = None,
    ) -> None:
        self.ecu_name = ecu_name
        self._clock = clock
        self._bus = bus
        self._controls: list[SecurityControl] = list(controls or [])
        self._detections: list[DetectionRecord] = []
        # Built once: a per-denial f-string means a fresh hash per publish.
        self._detection_topic = f"control.detection.{ecu_name}"

    def add(self, control: SecurityControl) -> "ControlPipeline":
        """Append a control; returns self for chaining."""
        self._controls.append(control)
        return self

    @property
    def controls(self) -> tuple[SecurityControl, ...]:
        """The stacked controls, in inspection order."""
        return tuple(self._controls)

    def admit(self, message: Message) -> Decision:
        """Run all controls; first denial wins and is logged."""
        now = self._clock.now
        for control in self._controls:
            decision = control.inspect(message, now)
            if not decision.allowed:
                record = DetectionRecord(
                    time=now,
                    control=decision.control or control.name,
                    reason=decision.reason,
                    message_kind=message.kind,
                    sender=message.sender,
                )
                self._detections.append(record)
                self._bus.publish(
                    now,
                    self._detection_topic,
                    self.ecu_name,
                    control=record.control,
                    reason=record.reason,
                    kind=record.message_kind,
                    sender=record.sender,
                )
                return decision
        return _PIPELINE_PASS

    @property
    def detections(self) -> tuple[DetectionRecord, ...]:
        """The intrusion log of this ECU."""
        return tuple(self._detections)

    def detections_by(self, control_name: str) -> tuple[DetectionRecord, ...]:
        """Detections raised by one named control."""
        return tuple(
            record
            for record in self._detections
            if record.control == control_name
        )

    def reset(self) -> None:
        """Clear control state and the detection log."""
        for control in self._controls:
            control.reset()
        self._detections.clear()


__all__ = [
    "ControlPipeline",
    "Decision",
    "DetectionRecord",
    "SecurityControl",
]
