"""Flooding detection / rate limiting.

AD20's *Attack Fails* criterion reads: "security control identifies
unwanted sender enforce change of frequency".  :class:`FloodingDetector`
implements exactly that: a sliding-window rate check per sender; a sender
exceeding the limit is *flagged as unwanted* and blocked for a cool-down
period (the enforced frequency change).  The SUT is thereby "expected to
detect the flooding situation and to react appropriately".
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.controls.base import Decision, SecurityControl
from repro.sim.network import Message


class FloodingDetector(SecurityControl):
    """Sliding-window per-sender rate limiter with unwanted-sender flagging.

    Attributes:
        window_ms: Length of the observation window.
        max_messages: Messages allowed per sender within the window.
        cooldown_ms: Block duration once a sender is flagged.
    """

    __slots__ = (
        "window_ms",
        "max_messages",
        "cooldown_ms",
        "_history",
        "_blocked_until",
        "_flagged",
        "_block_decisions",
        "_last_block",
    )

    def __init__(
        self,
        window_ms: float = 1000.0,
        max_messages: int = 20,
        cooldown_ms: float = 5000.0,
        name: str = "flooding-detector",
    ) -> None:
        super().__init__(name)
        if window_ms <= 0 or cooldown_ms < 0:
            raise SimulationError("flooding detector windows must be positive")
        if max_messages < 1:
            raise SimulationError("max_messages must be >= 1")
        self.window_ms = window_ms
        self.max_messages = max_messages
        self.cooldown_ms = cooldown_ms
        self._history: dict[str, deque[float]] = {}
        self._blocked_until: dict[str, float] = {}
        self._flagged: set[str] = set()
        # (sender, blocked_until) -> the deny Decision for that block
        # window: a sustained flood denies thousands of messages with
        # the identical (immutable) verdict -- format it once.  The last
        # block is additionally kept unpacked: consecutive denials of
        # one flooding sender hit it without building a tuple key.
        self._block_decisions: dict[tuple[str, float], Decision] = {}
        self._last_block: tuple[str, float, Decision] | None = None

    def inspect(self, message: Message, now: float) -> Decision:
        sender = message.sender
        blocked_until = self._blocked_until.get(sender, -1.0)
        if now < blocked_until:
            last = self._last_block
            if (
                last is not None
                and last[1] == blocked_until
                and last[0] == sender
            ):
                return last[2]
            block = (sender, blocked_until)
            decision = self._block_decisions.get(block)
            if decision is None:
                decision = self._block_decisions[block] = Decision.denied(
                    self.name,
                    f"sender {sender!r} blocked until {blocked_until:.0f} ms "
                    "(enforced frequency change)",
                )
            self._last_block = (sender, blocked_until, decision)
            return decision
        window = self._history.get(sender)
        if window is None:  # setdefault would build a deque per message
            window = self._history[sender] = deque()
        window.append(now)
        while window and window[0] < now - self.window_ms:
            window.popleft()
        if len(window) > self.max_messages:
            self._flagged.add(sender)
            self._blocked_until[sender] = now + self.cooldown_ms
            window.clear()
            return Decision.denied(
                self.name,
                f"flooding detected: sender {sender!r} exceeded "
                f"{self.max_messages} msgs / {self.window_ms:.0f} ms; "
                "identified as unwanted sender",
            )
        return self.pass_decision

    def is_flagged(self, sender: str) -> bool:
        """True when the sender was ever identified as unwanted."""
        return sender in self._flagged

    @property
    def flagged_senders(self) -> tuple[str, ...]:
        """All senders identified as unwanted, sorted."""
        return tuple(sorted(self._flagged))

    def reset(self) -> None:
        self._history.clear()
        self._blocked_until.clear()
        self._flagged.clear()
        self._block_decisions.clear()
        self._last_block = None


__all__ = [
    "FloodingDetector",
]
