"""Pseudonym rotation -- the privacy extension the paper proposes.

"In order to address privacy concerns, we propose to extend this work in
the future." (§V)  The UC II analysis already found two privacy attacks
(usage profiling, cross-location tracking); the canonical V2X
counter-measure is *pseudonym rotation*: senders periodically change
their over-the-air identifier so a passive observer cannot link messages
into a profile.

Two pieces:

* :class:`PseudonymProvider` -- wraps a sender identity, deriving
  deterministic epoch pseudonyms and provisioning each in the keystore
  (honest receivers can still authenticate every epoch's messages),
* :func:`linkability` -- the evaluation metric: given an eavesdropper's
  observations, how large is the largest linkable cluster relative to
  the whole?  Rotation drives it toward 1/number-of-epochs.
"""

from __future__ import annotations

import hashlib

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.crypto import KeyStore


class PseudonymProvider:
    """Epoch-based pseudonyms for one real sender identity.

    The pseudonym for epoch *n* is ``H(real_identity, n)``-derived and
    provisioned in the shared keystore, so receivers that trust the
    keystore's enrolment can verify messages from any epoch while a
    passive observer sees unlinkable identifiers.
    """

    def __init__(
        self,
        real_identity: str,
        clock: SimClock,
        keystore: KeyStore,
        rotation_period_ms: float = 5000.0,
    ) -> None:
        if rotation_period_ms <= 0:
            raise SimulationError("rotation period must be positive")
        self.real_identity = real_identity
        self.rotation_period_ms = rotation_period_ms
        self._clock = clock
        self._keystore = keystore
        self._issued: list[str] = []

    def current_epoch(self) -> int:
        """The rotation epoch at the current simulation time."""
        return int(self._clock.now // self.rotation_period_ms)

    def current_pseudonym(self) -> str:
        """The (provisioned) pseudonym for the current epoch."""
        epoch = self.current_epoch()
        digest = hashlib.sha256(
            f"pseudonym:{self.real_identity}:{epoch}".encode("utf-8")
        ).hexdigest()[:12]
        pseudonym = f"pseu-{digest}"
        if pseudonym not in self._issued:
            self._issued.append(pseudonym)
            self._keystore.provision(pseudonym)
        return pseudonym

    @property
    def issued_pseudonyms(self) -> tuple[str, ...]:
        """All pseudonyms issued so far, in issue order."""
        return tuple(self._issued)


def linkability(observed_senders: list[str]) -> float:
    """Largest linkable cluster / total observations, in [0, 1].

    1.0 means every observation carries the same identifier (a perfect
    profile); with rotation over *k* epochs the value approaches the
    largest single epoch's share.  Empty observation lists are perfectly
    unlinkable (0.0).
    """
    if not observed_senders:
        return 0.0
    counts: dict[str, int] = {}
    for sender in observed_senders:
        counts[sender] = counts.get(sender, 0) + 1
    return max(counts.values()) / len(observed_senders)


__all__ = [
    "PseudonymProvider",
    "linkability",
]
