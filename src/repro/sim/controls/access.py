"""Access-control measures: ID whitelist and replay guard.

* :class:`IdWhitelist` -- Table VII's expected measure, "Check received
  vehicles electronic ID with list of allowed IDs".  AD08's
  implementation comments attack it with (a) randomly replaced key IDs
  and (b) incrementing IDs from a known valid one.
* :class:`ReplayGuard` -- the timestamp/nonce freshness check UC II
  proposes against command replay ("this might be prevented by timestamps
  resp. challenge-responds-patterns within the communication").
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.controls.base import Decision, SecurityControl
from repro.sim.network import Message


class IdWhitelist(SecurityControl):
    """Accept only messages whose electronic ID is on the allowed list.

    Attributes:
        field: Payload field carrying the electronic ID (``"key_id"``).
        allowed: The allowed IDs.
        kinds: Message kinds the check applies to (``None`` = all kinds).
            Diagnostics or telemetry messages without a key ID are not the
            whitelist's business.
    """

    def __init__(
        self,
        allowed: set[str],
        field: str = "key_id",
        kinds: set[str] | None = None,
        name: str = "id-whitelist",
    ) -> None:
        super().__init__(name)
        if not allowed:
            raise SimulationError("an empty whitelist would deny everything")
        self.field = field
        self.kinds = set(kinds) if kinds is not None else None
        self.allowed = set(allowed)

    def inspect(self, message: Message, now: float) -> Decision:
        if self.kinds is not None and message.kind not in self.kinds:
            return self.pass_decision
        value = message.payload.get(self.field)
        if value is None:
            return Decision.denied(
                self.name, f"missing electronic ID field {self.field!r}"
            )
        if value not in self.allowed:
            return Decision.denied(
                self.name, f"electronic ID {value!r} not in list of allowed IDs"
            )
        return self.pass_decision

    def allow(self, identifier: str) -> None:
        """Provision an additional allowed ID."""
        self.allowed.add(identifier)

    def revoke(self, identifier: str) -> None:
        """Remove an ID (e.g. a stolen key)."""
        self.allowed.discard(identifier)


class ReplayGuard(SecurityControl):
    """Freshness check: recent timestamp plus no reuse of (sender, counter).

    A replayed message carries its original timestamp and counter; either
    the timestamp is stale (older than ``max_age_ms``) or, for fast
    replays, the (sender, counter) pair was already consumed.
    """

    def __init__(
        self, max_age_ms: float = 500.0, name: str = "replay-guard"
    ) -> None:
        super().__init__(name)
        if max_age_ms <= 0:
            raise SimulationError("max_age_ms must be positive")
        self.max_age_ms = max_age_ms
        self._seen: set[tuple[str, int]] = set()

    def inspect(self, message: Message, now: float) -> Decision:
        age = now - message.timestamp
        if age > self.max_age_ms:
            return Decision.denied(
                self.name,
                f"stale message from {message.sender!r}: {age:.0f} ms old "
                f"(limit {self.max_age_ms:.0f} ms)",
            )
        key = (message.sender, message.counter)
        if key in self._seen:
            return Decision.denied(
                self.name,
                f"replayed message: counter {message.counter} from "
                f"{message.sender!r} already consumed",
            )
        self._seen.add(key)
        return self.pass_decision

    def reset(self) -> None:
        self._seen.clear()


__all__ = [
    "IdWhitelist",
    "ReplayGuard",
]
