"""Plausibility checks -- the safety-measure fallback of §III-C.

"For example, a safety measure could determine that plausibility checks
fail and trigger the shutdown of a system.  Such a measure could also be
effective if an attack would cause inconsistent states."

Two concrete checks the use cases need:

* :class:`ValueRangeCheck` -- a payload value must lie within a plausible
  range (e.g. a V2X speed limit between 5 and 130 km/h); tampered or
  fuzzed values outside the range are rejected.
* :class:`LocationConsistencyCheck` -- the message's origin location must
  match the receiver's expectation; warnings "replayed from other
  locations or other vehicles" (the UC I SG05 attack) fail it.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.controls.base import Decision, SecurityControl
from repro.sim.network import Message


class ValueRangeCheck(SecurityControl):
    """Require a numeric payload field within [minimum, maximum].

    Messages without the field pass (the check guards one field, not the
    schema); non-numeric values are implausible and denied.
    """

    def __init__(
        self,
        field: str,
        minimum: float,
        maximum: float,
        name: str = "value-range",
    ) -> None:
        super().__init__(name)
        if minimum > maximum:
            raise SimulationError(
                f"range check {field!r}: minimum {minimum} > maximum {maximum}"
            )
        self.field = field
        self.minimum = minimum
        self.maximum = maximum

    def inspect(self, message: Message, now: float) -> Decision:
        if self.field not in message.payload:
            return self.pass_decision
        value = message.payload[self.field]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return Decision.denied(
                self.name,
                f"implausible non-numeric {self.field!r}: {value!r}",
            )
        if not self.minimum <= value <= self.maximum:
            return Decision.denied(
                self.name,
                f"implausible {self.field!r}={value} outside "
                f"[{self.minimum}, {self.maximum}]",
            )
        return self.pass_decision


class LocationConsistencyCheck(SecurityControl):
    """Require the message's origin location to match expectations.

    The receiver registers the locations it considers plausible (e.g. the
    construction site the vehicle is actually approaching); a warning
    recorded elsewhere and replayed here carries the wrong location.
    Messages without location information are denied when
    ``require_location`` is set, passed otherwise.
    """

    def __init__(
        self,
        plausible_locations: set[str],
        require_location: bool = True,
        name: str = "location-consistency",
    ) -> None:
        super().__init__(name)
        if not plausible_locations:
            raise SimulationError(
                "location consistency needs at least one plausible location"
            )
        self.plausible_locations = set(plausible_locations)
        self.require_location = require_location

    def inspect(self, message: Message, now: float) -> Decision:
        if not message.location:
            if self.require_location:
                return Decision.denied(
                    self.name, "message carries no origin location"
                )
            return self.pass_decision
        if message.location not in self.plausible_locations:
            return Decision.denied(
                self.name,
                f"origin location {message.location!r} inconsistent with "
                f"expected {sorted(self.plausible_locations)}",
            )
        return self.pass_decision

    def expect(self, location: str) -> None:
        """Add a plausible origin location (vehicle moved on)."""
        self.plausible_locations.add(location)


__all__ = [
    "LocationConsistencyCheck",
    "ValueRangeCheck",
]
