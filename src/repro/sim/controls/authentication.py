"""Sender authentication and message-counter controls.

Two of the classical controls the paper's attacks must contend with:

* :class:`SenderAuthentication` -- verifies the HMAC tag; defeats naive
  spoofing and tampering (AD20's flooding attacker deliberately *owns* a
  provisioned identity to get past this).
* :class:`MessageCounterCheck` -- Table VI's expected measure, "Message
  counter for broken messages": every sender's counter must increase
  strictly; replays and duplicated floods trip it.
"""

from __future__ import annotations

from repro.sim.controls.base import Decision, SecurityControl
from repro.sim.crypto import KeyStore
from repro.sim.network import Message


class SenderAuthentication(SecurityControl):
    """Verify the message's HMAC tag against the claimed sender's key.

    Denies messages whose sender is unprovisioned, whose tag is missing,
    or whose tag does not verify (spoofed identity or tampered payload).
    """

    __slots__ = ("_keystore",)

    def __init__(self, keystore: KeyStore, name: str = "sender-auth") -> None:
        super().__init__(name)
        self._keystore = keystore

    def inspect(self, message: Message, now: float) -> Decision:
        if not self._keystore.is_provisioned(message.sender):
            return Decision.denied(
                self.name, f"unknown sender {message.sender!r}"
            )
        if not message.auth_tag:
            return Decision.denied(
                self.name, f"unauthenticated message from {message.sender!r}"
            )
        key = self._keystore.key_of(message.sender)
        # Memoised on the message instance: a broadcast delivers one
        # frozen message to N receivers, and each would otherwise redo
        # the identical HMAC.
        if not message.mac_verified(key):
            return Decision.denied(
                self.name,
                f"MAC verification failed for {message.sender!r} "
                "(spoofed sender or tampered payload)",
            )
        return self.pass_decision


class MessageCounterCheck(SecurityControl):
    """Require strictly increasing per-sender message counters.

    The Table VI expected measure.  A replayed message repeats an old
    counter; a badly implemented flood reuses counters; both are "broken
    messages" and denied.
    """

    __slots__ = ("_last",)

    def __init__(self, name: str = "message-counter") -> None:
        super().__init__(name)
        self._last: dict[str, int] = {}

    def inspect(self, message: Message, now: float) -> Decision:
        last = self._last.get(message.sender)
        if last is not None and message.counter <= last:
            return Decision.denied(
                self.name,
                f"broken message counter from {message.sender!r}: "
                f"{message.counter} after {last}",
            )
        self._last[message.sender] = message.counter
        return self.pass_decision

    def reset(self) -> None:
        self._last.clear()


__all__ = [
    "MessageCounterCheck",
    "SenderAuthentication",
]
