"""Discrete-event simulation clock.

The simulator substrate is a classic discrete-event kernel: callbacks are
scheduled at absolute times (milliseconds, float) and executed in time
order; ties execute in scheduling order (a monotone sequence number breaks
them), which keeps every run fully deterministic -- a hard requirement for
reproducible attack testing (RQ3).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Callable

from repro.errors import SimulationError


@dataclasses.dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry; ordering by (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(compare=False, default=False)


class EventHandle:
    """Handle returned by scheduling calls; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """The scheduled execution time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled."""
        return self._event.cancelled


class SimClock:
    """The discrete-event scheduler.

    All simulator components share one clock; time only advances through
    :meth:`run_until` / :meth:`run`.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: list[_ScheduledEvent] = []

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute ``time``.

        Raises:
            SimulationError: when scheduling in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} ms; clock is at {self._now} ms"
            )
        event = _ScheduledEvent(
            time=time, sequence=self._sequence, callback=callback
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay`` milliseconds.

        Raises:
            SimulationError: on negative delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        start: float | None = None,
        until: float | None = None,
    ) -> None:
        """Schedule ``callback`` every ``period`` ms, optionally bounded.

        The first execution happens at ``start`` (default: one period from
        now); repetition stops once the next occurrence would exceed
        ``until``.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first = start if start is not None else self._now + period

        def fire_and_reschedule(at: float) -> None:
            callback()
            next_time = at + period
            if until is None or next_time <= until:
                self.schedule_at(next_time, lambda: fire_and_reschedule(next_time))

        self.schedule_at(first, lambda: fire_and_reschedule(first))

    def run_until(self, time: float) -> int:
        """Execute events up to and including ``time``; advance the clock.

        Returns the number of events executed.  The clock ends exactly at
        ``time`` even if the queue drains earlier.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to {time} ms from {self._now} ms"
            )
        executed = 0
        while self._queue and self._queue[0].time <= time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            executed += 1
        self._now = time
        return executed

    def run(self) -> int:
        """Execute all pending events (events may schedule new ones).

        Returns the number of events executed.
        """
        executed = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            executed += 1
        return executed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)


__all__ = [
    "EventHandle",
    "SimClock",
]
