"""Discrete-event simulation clock.

The simulator substrate is a classic discrete-event kernel: callbacks are
scheduled at absolute times (milliseconds, float) and executed in time
order; ties execute in scheduling order (a monotone sequence number breaks
them), which keeps every run fully deterministic -- a hard requirement for
reproducible attack testing (RQ3).

This module is the hottest path of every campaign run, so the internals
are built for throughput while keeping the execution order bit-identical
to the original dataclass-heap implementation:

* heap entries are plain ``(time, sequence, handle, callback)`` tuples --
  the heap compares them at C speed on the ``(time, sequence)`` prefix
  (``sequence`` is unique, so the trailing elements are never compared),
  with no per-event ``__lt__`` dispatch and no dataclass allocation;
* :class:`EventHandle` objects (``__slots__``-based) are only allocated
  for externally scheduled events; internal reschedules (the periodic
  path) push bare tuples with a ``None`` handle;
* the :attr:`SimClock.pending` counter is maintained live -- incremented
  on schedule, decremented on cancel and on execution -- instead of
  re-scanning the whole queue per access;
* :meth:`SimClock.schedule_periodic` drives each repetition through one
  reusable ``__slots__`` object rather than allocating a fresh closure
  pair per firing.

Sequence numbers are consumed one per scheduled occurrence in the same
program order as before, so tie-breaking (and therefore every verdict of
the golden-parity harness) is preserved exactly.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

from repro.errors import SimulationError

#: EventHandle lifecycle states (plain ints: compared in the pop loop).
_PENDING = 0
_DONE = 1
_CANCELLED = 2


class EventHandle:
    """Handle returned by scheduling calls; allows cancellation."""

    __slots__ = ("_clock", "_time", "_state")

    def __init__(self, clock: "SimClock", time: float) -> None:
        self._clock = clock
        self._time = time
        self._state = _PENDING

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran (or was cancelled).

        Cancellation updates the owning clock's live ``pending`` counter;
        the dead heap entry itself is discarded lazily when popped.
        """
        if self._state == _PENDING:
            self._state = _CANCELLED
            self._clock._pending -= 1

    @property
    def time(self) -> float:
        """The scheduled execution time."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled (not when it already ran)."""
        return self._state == _CANCELLED


class _PeriodicSchedule:
    """One repeating schedule: fires, then re-pushes itself.

    A single instance per :meth:`SimClock.schedule_periodic` call
    replaces the closure pair the old implementation allocated on every
    firing.  Invariant preserved from that implementation: the user
    callback runs *before* the next occurrence is pushed, so anything the
    callback schedules at the same timestamp receives an earlier
    tie-breaking sequence number than the repetition itself.
    """

    __slots__ = ("_clock", "_period", "_callback", "_until", "_next_time")

    def __init__(
        self,
        clock: "SimClock",
        period: float,
        callback: Callable[[], None],
        first: float,
        until: float | None,
    ) -> None:
        self._clock = clock
        self._period = period
        self._callback = callback
        self._until = until
        self._next_time = first

    def __call__(self) -> None:
        self._callback()
        next_time = self._next_time + self._period
        if self._until is None or next_time <= self._until:
            self._next_time = next_time
            self._clock._push(next_time, None, self)


class SimClock:
    """The discrete-event scheduler.

    All simulator components share one clock; time only advances through
    :meth:`run_until` / :meth:`run`.
    """

    __slots__ = ("now", "_sequence", "_queue", "_pending")

    def __init__(self) -> None:
        #: Current simulation time in milliseconds.  A plain slot
        #: attribute rather than a property: ``clock.now`` is read on
        #: every admit/publish/send in a campaign (hundreds of thousands
        #: of reads per flood variant) and the property dispatch was
        #: measurable.  Only the run loops write it.
        self.now = 0.0
        self._sequence = 0
        # Heap of (time, sequence, EventHandle | None, callback).
        self._queue: list[tuple] = []
        self._pending = 0

    def _push(
        self,
        time: float,
        handle: EventHandle | None,
        callback: Callable[[], None],
    ) -> None:
        """Push one occurrence (no past-check; callers validate)."""
        heappush(self._queue, (time, self._sequence, handle, callback))
        self._sequence += 1
        self._pending += 1

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute ``time``.

        Raises:
            SimulationError: when scheduling in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} ms; clock is at {self.now} ms"
            )
        handle = EventHandle(self, time)
        # _push inlined: schedule_at runs per attack packet / timer tick.
        heappush(self._queue, (time, self._sequence, handle, callback))
        self._sequence += 1
        self._pending += 1
        return handle

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay`` milliseconds.

        Raises:
            SimulationError: on negative delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    def post(self, time: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`EventHandle`.

        The non-allocating path for hot callers (message delivery, ECU
        service queues) that never cancel: ordering semantics are
        identical, only the handle -- and its allocation -- is skipped.

        Raises:
            SimulationError: when scheduling in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} ms; clock is at {self.now} ms"
            )
        # _push inlined: post runs once per delivery and per ECU service
        # slot -- the two highest-volume scheduling sites in a campaign.
        heappush(self._queue, (time, self._sequence, None, callback))
        self._sequence += 1
        self._pending += 1

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        start: float | None = None,
        until: float | None = None,
    ) -> None:
        """Schedule ``callback`` every ``period`` ms, optionally bounded.

        The first execution happens at ``start`` (default: one period from
        now); repetition stops once the next occurrence would exceed
        ``until``.  The whole repetition chain shares one internal
        schedule object -- no per-firing closure allocation.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first = start if start is not None else self.now + period
        if first < self.now:
            raise SimulationError(
                f"cannot schedule at {first} ms; clock is at {self.now} ms"
            )
        self._push(
            first, None, _PeriodicSchedule(self, period, callback, first, until)
        )

    def run_until(self, time: float) -> int:
        """Execute events up to and including ``time``; advance the clock.

        Returns the number of events executed.  The clock ends exactly at
        ``time`` even if the queue drains earlier.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot run backwards to {time} ms from {self.now} ms"
            )
        queue = self._queue
        executed = 0
        while queue and queue[0][0] <= time:
            event_time, _sequence, handle, callback = heappop(queue)
            if handle is not None:
                if handle._state == _CANCELLED:
                    continue  # counter already adjusted at cancel time
                handle._state = _DONE
            self._pending -= 1
            self.now = event_time
            callback()
            executed += 1
        self.now = time
        return executed

    def run(self) -> int:
        """Execute all pending events (events may schedule new ones).

        Returns the number of events executed.
        """
        queue = self._queue
        executed = 0
        while queue:
            event_time, _sequence, handle, callback = heappop(queue)
            if handle is not None:
                if handle._state == _CANCELLED:
                    continue
                handle._state = _DONE
            self._pending -= 1
            self.now = event_time
            callback()
            executed += 1
        return executed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1) --
        maintained live instead of scanning the queue)."""
        return self._pending


__all__ = [
    "EventHandle",
    "SimClock",
]
