"""Ready-made SUT configurations for the paper's two use cases.

* :class:`ConstructionSiteScenario` -- Use Case I / Fig. 2: an autonomous
  vehicle approaches a construction site; the RSU informs the vehicle via
  the OBU; the OBU warns the driver so control is transferred back before
  the site.  Safety goals SG01..SG06 of §IV-A are monitored.
* :class:`KeylessEntryScenario` -- Use Case II: opening and closing a
  vehicle via smartphone over Bluetooth low energy, with the BLE->CAN
  forwarding gateway ("ECU_GW").  Safety goals SG01..SG04 of §IV-B are
  monitored.

Both scenarios are :class:`~repro.engine.kernel.KernelScenario` assemblies
on the unified :class:`~repro.engine.kernel.SimKernel`: the kernel owns
the clock, event bus, keystore, world and every communication medium; the
classes here only declare the components, deployed controls and
safety-goal checks.  The declarative counterparts (what the campaign
runner executes) live in :mod:`repro.engine.registry` -- these classes
remain the single source of truth the registry's specs point at.

Both scenarios take a ``controls`` set naming the security controls to
deploy, so ablation benchmarks can flip each expected measure on and off
and observe the attack verdict change exactly as the attack description
predicts.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SimulationError
from repro.sim.kernel import KernelScenario, ScenarioResult, SimKernel
from repro.sim.ble import (
    AccessEcu,
    DoorLock,
    DoorLockEcu,
    DoorState,
    Smartphone,
)
from repro.sim.controls import (
    FloodingDetector,
    IdWhitelist,
    LocationConsistencyCheck,
    MessageCounterCheck,
    ReplayGuard,
    SenderAuthentication,
    ValueRangeCheck,
)
from repro.sim.topology import RangePropagation
from repro.sim.v2x import (
    KIND_ROAD_WORKS,
    KIND_V2V_RELAY,
    OnBoardUnit,
    RoadsideUnit,
    V2VRelay,
)
from repro.sim.vehicle import Driver, DrivingMode, Vehicle

__all__ = [
    "CONTROL_AUTH",
    "CONTROL_COUNTER",
    "CONTROL_FLOOD",
    "CONTROL_LOCATION",
    "CONTROL_RANGE",
    "CONTROL_REPLAY",
    "CONTROL_WHITELIST",
    "ConstructionSiteScenario",
    "FleetConstructionSiteScenario",
    "KeylessEntryScenario",
    "ScenarioResult",
    "UC1_ALL_CONTROLS",
    "UC2_ALL_CONTROLS",
]

#: Control names accepted by both scenarios' ``controls`` parameter.
CONTROL_AUTH = "sender-auth"
CONTROL_COUNTER = "message-counter"
CONTROL_FLOOD = "flooding-detector"
CONTROL_RANGE = "value-range"
CONTROL_LOCATION = "location-consistency"
CONTROL_WHITELIST = "id-whitelist"
CONTROL_REPLAY = "replay-guard"

UC1_ALL_CONTROLS = frozenset(
    {CONTROL_AUTH, CONTROL_COUNTER, CONTROL_FLOOD, CONTROL_RANGE, CONTROL_LOCATION}
)
UC2_ALL_CONTROLS = frozenset(
    {
        CONTROL_AUTH,
        CONTROL_COUNTER,
        CONTROL_FLOOD,
        CONTROL_WHITELIST,
        CONTROL_REPLAY,
    }
)


class ConstructionSiteScenario(KernelScenario):
    """Use Case I: AV approaching a construction site (Fig. 2).

    Geometry and timing defaults: the vehicle starts at position 0 at
    25 m/s; the construction zone spans [1500, 1600) m (reached after
    ~60 s unattacked); the RSU broadcasts a road-works warning every
    500 ms from t=500 ms.  The driver needs 1.5 s to take over after the
    OBU's warning.

    Safety goals monitored (§IV-A):

    * **SG01** -- the vehicle must not be inside the construction zone
      without the driver in control (violated when the zone is entered in
      AUTOMATED/HANDOVER mode),
    * **SG03** -- speed limits must be communicated safely (violated when
      the automation ever targets an implausible speed),
    * **SG04** -- take-over warnings must not be missed (FTTI between an
      accepted warning and the take-over request),
    * **SG05** -- no flood of unintended hazard warnings (violated when
      more than ``max_warnings`` are shown).
    """

    ALL_CONTROLS = UC1_ALL_CONTROLS
    CONTROL_SCOPE = "UC1"
    DEFAULT_DURATION_MS = 80000.0
    #: SG04's FTTI deadline scans this topic's events.
    RETAINED_TOPICS = ("vehicle.handover_requested",)

    ZONE_NAME = "construction"
    RSU_LOCATION = "site-A"
    REMOTE_LOCATION = "site-B"
    LEGAL_MAX_SPEED_MPS = 40.0

    def __init__(
        self,
        controls: frozenset[str] | set[str] = UC1_ALL_CONTROLS,
        vehicle_speed_mps: float = 25.0,
        driver_reaction_ms: float = 1500.0,
        rsu_period_ms: float = 500.0,
        zone_start_m: float = 1500.0,
        zone_end_m: float = 1600.0,
        zone_speed_limit_mps: float = 8.0,
        handover_ftti_ms: float = 500.0,
        max_warnings: int = 5,
        obu_queue_capacity: int = 64,
        road_length_m: float = 3000.0,
        trace_mode: str = "full",
    ) -> None:
        super().__init__(
            SimKernel(road_length_m=road_length_m, trace_mode=trace_mode),
            controls,
        )
        self.zone_speed_limit_mps = zone_speed_limit_mps
        self.handover_ftti_ms = handover_ftti_ms
        self.max_warnings = max_warnings

        self.world.add_zone(self.ZONE_NAME, zone_start_m, zone_end_m)

        self.vehicle = Vehicle(
            "ego", self.clock, self.bus, self.world,
            position_m=0.0, speed_mps=vehicle_speed_mps,
        )
        self.driver = Driver(
            self.vehicle, self.clock, self.bus,
            reaction_time_ms=driver_reaction_ms,
            comfort_speed_mps=zone_speed_limit_mps,
        )

        self.v2x = self.kernel.channel(
            "v2x", latency_ms=2.0, bandwidth_per_ms=4.0
        )
        self.remote_channel = self.kernel.channel("v2x-remote", latency_ms=2.0)
        self.rsu = RoadsideUnit(
            "RSU-A", self.clock, self.v2x, self.keystore, self.RSU_LOCATION
        )
        self.remote_rsu = RoadsideUnit(
            "RSU-B",
            self.clock,
            self.remote_channel,
            self.keystore,
            self.REMOTE_LOCATION,
        )
        self.obu = OnBoardUnit(
            "OBU", self.clock, self.bus, self.vehicle,
            queue_capacity=obu_queue_capacity,
        )
        self._deploy_obu_controls()
        self.v2x.attach(self.obu)
        # A shut-down OBU ignores every delivery forever; take it off the
        # air so a sustained flood stops paying for calls into a corpse.
        self.bus.subscribe(
            f"ecu.{self.obu.name}.shutdown",
            lambda event: self.v2x.detach(self.obu),
        )

        self.rsu.broadcast_periodically(
            rsu_period_ms, zone_start_m, zone_speed_limit_mps, until=None
        )

        self.monitor = self.kernel.monitor()
        self._install_goal_checks()

    def _deploy_obu_controls(self) -> None:
        # The flooding detector runs first: rate analysis is cheap and must
        # shield the costlier checks (and the processing queue) from load.
        pipeline = self.obu.pipeline
        if CONTROL_FLOOD in self.controls:
            pipeline.add(
                FloodingDetector(
                    window_ms=1000.0, max_messages=20, cooldown_ms=5000.0
                )
            )
        if CONTROL_AUTH in self.controls:
            pipeline.add(SenderAuthentication(self.keystore))
        if CONTROL_COUNTER in self.controls:
            pipeline.add(MessageCounterCheck())
        if CONTROL_RANGE in self.controls:
            pipeline.add(
                ValueRangeCheck(
                    "speed_limit_mps", 1.0, self.LEGAL_MAX_SPEED_MPS
                )
            )
        if CONTROL_LOCATION in self.controls:
            pipeline.add(
                LocationConsistencyCheck(
                    {self.RSU_LOCATION}, require_location=False
                )
            )

    def _install_goal_checks(self) -> None:
        # Zone resolved once; the periodic check runs thousands of times.
        zone = self.world.zone(self.ZONE_NAME)

        def sg01_zone_without_driver() -> str | None:
            in_zone = zone.contains(self.vehicle.position_m)
            automated = self.vehicle.mode in (
                DrivingMode.AUTOMATED,
                DrivingMode.HANDOVER_REQUESTED,
            )
            if in_zone and automated:
                return (
                    "vehicle inside the construction zone in "
                    f"{self.vehicle.mode.value} mode at "
                    f"{self.vehicle.speed_mps:.1f} m/s"
                )
            return None

        def sg03_implausible_speed_target() -> str | None:
            if self.vehicle.target_speed_mps > self.LEGAL_MAX_SPEED_MPS:
                return (
                    "automation targets implausible speed "
                    f"{self.vehicle.target_speed_mps:.1f} m/s"
                )
            return None

        def sg05_warning_flood() -> str | None:
            if self.obu.warnings_shown > self.max_warnings:
                return (
                    f"{self.obu.warnings_shown} hazard warnings shown "
                    f"(limit {self.max_warnings})"
                )
            return None

        self.monitor.add_invariant("SG01", sg01_zone_without_driver)
        self.monitor.add_invariant("SG03", sg03_implausible_speed_target)
        self.monitor.add_invariant("SG05", sg05_warning_flood)

        # SG04: once a warning is accepted, the take-over request must
        # follow within the FTTI.
        def arm_sg04(event) -> None:
            if not self._sg04_armed:
                self._sg04_armed = True
                self.monitor.expect_event_within(
                    "SG04",
                    "vehicle.handover_requested",
                    self.handover_ftti_ms,
                    description="take-over warning to the driver",
                )

        self._sg04_armed = False
        self.bus.subscribe("obu.warning_accepted", arm_sg04)

    # -- result collection ---------------------------------------------------

    def detection_records(self) -> dict[str, tuple]:
        return {"OBU": self.obu.pipeline.raw_detections()}

    def detection_control_counts(self) -> dict[str, dict[str, int]]:
        return {"OBU": self.obu.pipeline.control_counts}

    def collect_stats(self) -> dict[str, Any]:
        return {
            "v2x": self.v2x.stats,
            "obu": self.obu.stats,
            "vehicle": {
                "position_m": self.vehicle.position_m,
                "speed_mps": self.vehicle.speed_mps,
                "mode": self.vehicle.mode.value,
                "handover_requested_at": self.vehicle.handover_requested_at,
                "manual_since": self.vehicle.manual_since,
            },
            "warnings_shown": self.obu.warnings_shown,
        }


class FleetConstructionSiteScenario(KernelScenario):
    """Use Case I over a *fleet*: an N-vehicle convoy under ranged radio.

    The spatial generalisation of :class:`ConstructionSiteScenario`:
    ``fleet_size`` vehicles drive in convoy toward the construction
    zone, the RSU is a **placed** actor whose road-works warnings only
    reach on-board units inside ``rsu_range_m`` (the
    :class:`~repro.sim.topology.RangePropagation` model over the
    kernel's :class:`~repro.sim.topology.Topology`), and -- when
    ``v2v_enabled`` -- each vehicle carries a
    :class:`~repro.sim.v2x.V2VRelay` forwarding warnings to convoy
    members the RSU cannot reach.  An attacker can be *placed* too
    (``attacker_position_m``/``attacker_range_m``): its traffic is
    range-gated exactly like everyone else's, which is what lets the
    ``attacker-position`` variant family flip verdicts on placement
    alone.

    Safety goals are monitored per vehicle: the aggregate ids
    (``SG01``, ``SG03``, ``SG05``) keep the published oracles working,
    and per-vehicle ids (``SG01:ego-2``) carry the verdict-per-vehicle
    story through the standard result path.
    """

    ALL_CONTROLS = UC1_ALL_CONTROLS
    CONTROL_SCOPE = "UC1"
    DEFAULT_DURATION_MS = 80000.0
    #: SG04's FTTI deadline scans this topic's events.
    RETAINED_TOPICS = ("vehicle.handover_requested",)

    ZONE_NAME = "construction"
    RSU_LOCATION = "site-A"
    LEGAL_MAX_SPEED_MPS = 40.0

    def __init__(
        self,
        controls: frozenset[str] | set[str] = UC1_ALL_CONTROLS,
        fleet_size: int = 4,
        headway_m: float = 40.0,
        vehicle_speed_mps: float = 25.0,
        driver_reaction_ms: float = 1500.0,
        rsu_period_ms: float = 500.0,
        zone_start_m: float = 1500.0,
        zone_end_m: float = 1600.0,
        zone_speed_limit_mps: float = 8.0,
        rsu_position_m: float = 1200.0,
        rsu_range_m: float | None = 600.0,
        v2v_enabled: bool = True,
        v2v_range_m: float = 150.0,
        v2v_max_hops: int = 2,
        max_warnings: int = 5,
        obu_queue_capacity: int = 64,
        road_length_m: float = 3000.0,
        attacker_position_m: float | None = None,
        attacker_range_m: float = 250.0,
        trace_mode: str = "full",
    ) -> None:
        if fleet_size < 1:
            raise SimulationError("fleet size must be >= 1")
        if headway_m <= 0:
            raise SimulationError("headway must be positive")
        super().__init__(
            SimKernel(road_length_m=road_length_m, trace_mode=trace_mode),
            controls,
        )
        self.fleet_size = fleet_size
        self.zone_speed_limit_mps = zone_speed_limit_mps
        self.max_warnings = max_warnings

        self.world.add_zone(self.ZONE_NAME, zone_start_m, zone_end_m)
        self.topology = self.kernel.create_topology()

        self.v2x = self.kernel.channel(
            "v2x",
            latency_ms=2.0,
            bandwidth_per_ms=4.0,
            propagation=RangePropagation(self.topology),
        )

        # The convoy: ego-1 leads (closest to the zone), followers trail
        # at headway_m intervals.  Each vehicle owns its kinematics; the
        # topology tracks it and carries its V2V transmit range.
        self.vehicles: list[Vehicle] = []
        self.drivers: list[Driver] = []
        self.obus: list[OnBoardUnit] = []
        self.relays: list[V2VRelay] = []
        for index in range(1, fleet_size + 1):
            vehicle = Vehicle(
                f"ego-{index}",
                self.clock,
                self.bus,
                self.world,
                position_m=(fleet_size - index) * headway_m,
                speed_mps=vehicle_speed_mps,
            )
            driver = Driver(
                vehicle,
                self.clock,
                self.bus,
                reaction_time_ms=driver_reaction_ms,
                comfort_speed_mps=zone_speed_limit_mps,
            )
            self.topology.track(vehicle, transmit_range_m=v2v_range_m)
            obu = OnBoardUnit(
                f"OBU-{index}",
                self.clock,
                self.bus,
                vehicle,
                queue_capacity=obu_queue_capacity,
            )
            self._deploy_obu_controls(obu)
            self.topology.bind(obu.name, vehicle.name)
            self.v2x.attach(obu)
            # As in the single-vehicle scenario: dead OBUs leave the air.
            self.bus.subscribe(
                f"ecu.{obu.name}.shutdown",
                lambda event, obu=obu: self.v2x.detach(obu),
            )
            self.vehicles.append(vehicle)
            self.drivers.append(driver)
            self.obus.append(obu)
            if v2v_enabled:
                relay = V2VRelay(
                    f"V2V-{index}",
                    self.clock,
                    self.v2x,
                    self.keystore,
                    self.bus,
                    max_hops=v2v_max_hops,
                )
                self.topology.bind(relay.name, vehicle.name)
                # Relays only forward road-works warnings (original or
                # relayed); declaring the kinds keeps a CAM flood from
                # paying one no-op receive per relay per packet.
                self.v2x.attach(
                    relay, kinds=(KIND_ROAD_WORKS, KIND_V2V_RELAY)
                )
                self.relays.append(relay)

        self.topology.add_stationary(
            "RSU-A", rsu_position_m, transmit_range_m=rsu_range_m
        )
        self.rsu = RoadsideUnit(
            "RSU-A", self.clock, self.v2x, self.keystore, self.RSU_LOCATION
        )
        if attacker_position_m is not None:
            self.topology.add_stationary(
                "attacker",
                attacker_position_m,
                transmit_range_m=attacker_range_m,
            )

        self.rsu.broadcast_periodically(
            rsu_period_ms, zone_start_m, zone_speed_limit_mps, until=None
        )

        self.monitor = self.kernel.monitor()
        self._install_goal_checks()

    def _deploy_obu_controls(self, obu: OnBoardUnit) -> None:
        # Same stack and order as the single-vehicle scenario: rate
        # analysis first, then authenticity, freshness, plausibility.
        pipeline = obu.pipeline
        if CONTROL_FLOOD in self.controls:
            pipeline.add(
                FloodingDetector(
                    window_ms=1000.0, max_messages=20, cooldown_ms=5000.0
                )
            )
        if CONTROL_AUTH in self.controls:
            pipeline.add(SenderAuthentication(self.keystore))
        if CONTROL_COUNTER in self.controls:
            pipeline.add(MessageCounterCheck())
        if CONTROL_RANGE in self.controls:
            pipeline.add(
                ValueRangeCheck(
                    "speed_limit_mps", 1.0, self.LEGAL_MAX_SPEED_MPS
                )
            )
        if CONTROL_LOCATION in self.controls:
            pipeline.add(
                LocationConsistencyCheck(
                    {self.RSU_LOCATION}, require_location=False
                )
            )

    def _install_goal_checks(self) -> None:
        for vehicle in self.vehicles:
            self._install_vehicle_goals(vehicle)

        def sg03_implausible_speed_target() -> str | None:
            for vehicle in self.vehicles:
                if vehicle.target_speed_mps > self.LEGAL_MAX_SPEED_MPS:
                    return (
                        f"{vehicle.name} automation targets implausible "
                        f"speed {vehicle.target_speed_mps:.1f} m/s"
                    )
            return None

        def sg05_warning_flood() -> str | None:
            for obu in self.obus:
                if obu.warnings_shown > self.max_warnings:
                    return (
                        f"{obu.name}: {obu.warnings_shown} hazard warnings "
                        f"shown (limit {self.max_warnings})"
                    )
            return None

        self.monitor.add_invariant("SG03", sg03_implausible_speed_target)
        self.monitor.add_invariant("SG05", sg05_warning_flood)

    def _install_vehicle_goals(self, vehicle: Vehicle) -> None:
        zone = self.world.zone(self.ZONE_NAME)

        def sg01_zone_without_driver() -> str | None:
            in_zone = zone.contains(vehicle.position_m)
            automated = vehicle.mode in (
                DrivingMode.AUTOMATED,
                DrivingMode.HANDOVER_REQUESTED,
            )
            if in_zone and automated:
                return (
                    f"{vehicle.name} inside the construction zone in "
                    f"{vehicle.mode.value} mode at "
                    f"{vehicle.speed_mps:.1f} m/s"
                )
            return None

        # Registered twice: once under the aggregate id the published
        # oracles check, once per vehicle for the per-vehicle verdicts.
        self.monitor.add_invariant("SG01", sg01_zone_without_driver)
        self.monitor.add_invariant(
            f"SG01:{vehicle.name}", sg01_zone_without_driver
        )

    # -- result collection ---------------------------------------------------

    def per_vehicle_verdicts(self) -> dict[str, str]:
        """``vehicle name -> "withstood" | "violated"`` per convoy member."""
        return {
            vehicle.name: (
                "violated"
                if self.monitor.is_violated(f"SG01:{vehicle.name}")
                else "withstood"
            )
            for vehicle in self.vehicles
        }

    def detection_records(self) -> dict[str, tuple]:
        return {obu.name: obu.pipeline.raw_detections() for obu in self.obus}

    def detection_control_counts(self) -> dict[str, dict[str, int]]:
        return {obu.name: obu.pipeline.control_counts for obu in self.obus}

    def collect_stats(self) -> dict[str, Any]:
        handovers = sum(
            1 for v in self.vehicles if v.manual_since is not None
        )
        return {
            "v2x": self.v2x.stats,
            "fleet": {
                vehicle.name: {
                    "position_m": vehicle.position_m,
                    "speed_mps": vehicle.speed_mps,
                    "mode": vehicle.mode.value,
                    "handover_requested_at": vehicle.handover_requested_at,
                    "manual_since": vehicle.manual_since,
                    "saturated": vehicle.position_saturated,
                }
                for vehicle in self.vehicles
            },
            "per_vehicle_verdicts": self.per_vehicle_verdicts(),
            "fleet_size": self.fleet_size,
            "handovers": handovers,
            "handover_ratio": handovers / self.fleet_size,
            "warnings_shown": sum(obu.warnings_shown for obu in self.obus),
            "relayed": sum(relay.forwarded for relay in self.relays),
        }


class KeylessEntryScenario(KernelScenario):
    """Use Case II: keyless car opener over Bluetooth low energy.

    The owner's smartphone (electronic key ``KEY-1000``) opens and closes
    the vehicle; the BLE-facing gateway ("ECU_GW") admission-controls each
    command and forwards it over the body CAN to the door-lock ECU.

    Safety goals monitored (§IV-B):

    * **SG01** -- "Keep vehicle closed": the door must never open for an
      unauthorized actor,
    * **SG02** -- "Avoid intermittent open/close": no open/close
      oscillation (more than ``max_transitions`` state changes),
    * **SG03** -- "Prevent non-availability of opening": a legitimate open
      attempt must succeed within its deadline (armed per attempt),
    * **SG04** -- "Prevent unintended closing": the door must not close
      unless the owner asked.
    """

    ALL_CONTROLS = UC2_ALL_CONTROLS
    CONTROL_SCOPE = "UC2"
    DEFAULT_DURATION_MS = 20000.0
    #: SG01/SG03 read door.opened events (actor + timing), SG04 reads
    #: door.closed -- retained so the lean trace mode stays
    #: verdict-identical.
    RETAINED_TOPICS = ("door.opened", "door.closed")

    OWNER = "phone-owner"
    OWNER_KEY_ID = "KEY-1000"

    def __init__(
        self,
        controls: frozenset[str] | set[str] = UC2_ALL_CONTROLS,
        ble_latency_ms: float = 5.0,
        can_frame_time_ms: float = 1.0,
        open_deadline_ms: float = 500.0,
        max_transitions: int = 6,
        trace_mode: str = "full",
    ) -> None:
        super().__init__(SimKernel(trace_mode=trace_mode), controls)
        self.open_deadline_ms = open_deadline_ms
        self.max_transitions = max_transitions

        self.ble = self.kernel.channel(
            "ble", latency_ms=ble_latency_ms, bandwidth_per_ms=5.0
        )
        self.can = self.kernel.can_bus(
            "body-can", frame_time_ms=can_frame_time_ms, queue_capacity=64
        )
        self.lock = DoorLock(self.clock, self.bus)
        self.access_ecu = AccessEcu(
            "ECU_GW", self.clock, self.bus, self.can
        )
        self._deploy_access_controls()
        self.ble.attach(self.access_ecu)
        self.door_ecu = DoorLockEcu(
            "door-ecu", self.clock, self.bus, self.lock
        )
        self.can.attach(self.door_ecu)
        self.phone = Smartphone(
            self.OWNER, self.OWNER_KEY_ID, self.clock, self.ble, self.keystore
        )
        self.monitor = self.kernel.monitor()
        self._owner_open_times: list[float] = []
        self._install_goal_checks()

    def _deploy_access_controls(self) -> None:
        # Order: rate analysis first (shields everything downstream from
        # load), then authenticity, then freshness, then authorization.
        pipeline = self.access_ecu.pipeline
        if CONTROL_FLOOD in self.controls:
            pipeline.add(
                FloodingDetector(
                    window_ms=1000.0, max_messages=10, cooldown_ms=3000.0
                )
            )
        if CONTROL_AUTH in self.controls:
            pipeline.add(SenderAuthentication(self.keystore))
        if CONTROL_REPLAY in self.controls:
            pipeline.add(ReplayGuard(max_age_ms=200.0))
        if CONTROL_COUNTER in self.controls:
            pipeline.add(MessageCounterCheck())
        if CONTROL_WHITELIST in self.controls:
            pipeline.add(
                IdWhitelist(
                    {self.OWNER_KEY_ID},
                    kinds={"open_command", "close_command"},
                )
            )

    def _install_goal_checks(self) -> None:
        def sg01_unauthorized_open() -> str | None:
            for event in self.bus.events("door.opened"):
                actor = event.data.get("actor")
                if actor != self.OWNER:
                    return f"vehicle opened by unauthorized actor {actor!r}"
                recently_requested = any(
                    0.0 <= event.time - request_time <= self.open_deadline_ms * 4
                    for request_time in self._owner_open_times
                )
                if not recently_requested:
                    return (
                        "vehicle opened under the owner's identity without "
                        f"a recent owner request (at {event.time:.0f} ms; "
                        "replayed command)"
                    )
            return None

        def sg02_intermittent() -> str | None:
            transitions = self.lock.open_count + self.lock.close_count
            if transitions > self.max_transitions:
                return (
                    f"{transitions} open/close transitions "
                    f"(limit {self.max_transitions})"
                )
            return None

        def sg04_unintended_close() -> str | None:
            for event in self.bus.events("door.closed"):
                actor = event.data.get("actor")
                if actor != self.OWNER:
                    return f"vehicle closed by unauthorized actor {actor!r}"
            return None

        self.monitor.add_invariant("SG01", sg01_unauthorized_open)
        self.monitor.add_invariant("SG02", sg02_intermittent)
        self.monitor.add_invariant("SG04", sg04_unintended_close)

    # -- owner actions -----------------------------------------------------

    def owner_opens(self, at_ms: float, expect_within_ms: float | None = None) -> None:
        """Schedule a legitimate open attempt (arming SG03's deadline).

        ``expect_within_ms`` defaults to the scenario's open deadline.
        """
        deadline = expect_within_ms or self.open_deadline_ms

        def attempt() -> None:
            self._owner_open_times.append(self.clock.now)
            self.phone.send_open()
            self.monitor.expect_event_within(
                "SG03", "door.opened", deadline,
                description="opening of the vehicle",
            )

        self.clock.schedule_at(at_ms, attempt)

    def owner_closes(self, at_ms: float) -> None:
        """Schedule a legitimate close command."""
        self.clock.schedule_at(at_ms, self.phone.send_close)

    # -- result collection ---------------------------------------------------

    def detection_records(self) -> dict[str, tuple]:
        return {"ECU_GW": self.access_ecu.pipeline.raw_detections()}

    def detection_control_counts(self) -> dict[str, dict[str, int]]:
        return {"ECU_GW": self.access_ecu.pipeline.control_counts}

    def collect_stats(self) -> dict[str, Any]:
        return {
            "ble": self.ble.stats,
            "can": self.can.stats,
            "access_ecu": self.access_ecu.stats,
            "door": {
                "state": self.lock.state.value,
                "open_count": self.lock.open_count,
                "close_count": self.lock.close_count,
            },
        }

    @property
    def door_state(self) -> DoorState:
        """Current lock state."""
        return self.lock.state
