"""Bluetooth LE keyless car opener (Use Case II).

"The use cases are opening and closing a vehicle via smartphone, which
communicates via Bluetooth low energy with the car."  The substrate:

* :class:`Smartphone` -- the legitimate key device; sends authenticated
  ``open_command`` / ``close_command`` messages carrying its electronic
  key ID,
* :class:`AccessEcu` -- the vehicle-side gateway ("ECU_GW" in Table VII):
  admission-controls each command, then forwards it as a CAN frame to the
  door-lock ECU (the forwarding path the CAN-flooding attack abuses),
* :class:`DoorLockEcu` + :class:`DoorLock` -- the actuator; publishes
  ``door.opened`` / ``door.closed`` events the safety monitor and oracles
  evaluate (UC II SG01 "Keep vehicle closed" etc.).
"""

from __future__ import annotations

import enum

from repro.sim.can import CanBus, make_frame
from repro.sim.clock import SimClock
from repro.sim.crypto import KeyStore
from repro.sim.ecu import Gateway
from repro.sim.events import EventBus
from repro.sim.network import Medium, Message

KIND_OPEN = "open_command"
KIND_CLOSE = "close_command"
KIND_DIAG = "diag_request"

#: CAN identifiers used on the body CAN.  Diagnostics frames carry a
#: lower identifier and therefore win arbitration over door commands --
#: which is why a forwarded diagnostics flood starves the door function
#: (UC II: "Flooding of the CAN bus, by forwarded Bluetooth request,
#: reducing availability of the function (SG03)").
CAN_ID_DIAG = 0x100
CAN_ID_DOOR_COMMAND = 0x200


class DoorState(enum.Enum):
    """Lock state of the vehicle."""

    CLOSED = "closed"
    OPEN = "open"


class DoorLock:
    """The physical lock actuator with its published state."""

    def __init__(self, clock: SimClock, bus: EventBus) -> None:
        self.state = DoorState.CLOSED
        self._clock = clock
        self._bus = bus
        self.open_count = 0
        self.close_count = 0

    def open(self, actor: str) -> None:
        """Open the vehicle (idempotent)."""
        if self.state is DoorState.OPEN:
            return
        self.state = DoorState.OPEN
        self.open_count += 1
        self._bus.publish(self._clock.now, "door.opened", "door", actor=actor)

    def close(self, actor: str) -> None:
        """Close the vehicle (idempotent)."""
        if self.state is DoorState.CLOSED:
            return
        self.state = DoorState.CLOSED
        self.close_count += 1
        self._bus.publish(self._clock.now, "door.closed", "door", actor=actor)


class Smartphone:
    """The owner's smartphone key.

    Attributes:
        name: Sender identity (provisioned -- the phone is paired).
        key_id: The electronic key ID carried in every command; the
            :class:`~repro.sim.controls.access.IdWhitelist` checks it.
    """

    def __init__(
        self,
        name: str,
        key_id: str,
        clock: SimClock,
        channel: Medium,
        keystore: KeyStore,
    ) -> None:
        self.name = name
        self.key_id = key_id
        self._clock = clock
        self._channel = channel
        self._keystore = keystore
        self._counter = 0
        keystore.provision(name)

    def _command(self, kind: str) -> Message:
        self._counter += 1
        message = Message(
            kind=kind,
            sender=self.name,
            payload={"key_id": self.key_id},
            counter=self._counter,
            location="at-vehicle",
        ).with_timestamp(self._clock.now)
        return self._channel.send(message.signed(self._keystore))

    def send_open(self) -> Message:
        """Send an authenticated open command."""
        return self._command(KIND_OPEN)

    def send_close(self) -> Message:
        """Send an authenticated close command."""
        return self._command(KIND_CLOSE)


class AccessEcu(Gateway):
    """The BLE-facing gateway ECU ("ECU_GW").

    Admitted open/close commands are forwarded onto the body CAN as door
    frames; the door-lock ECU executes them.  Every admitted command is
    also counted so availability oracles (SG03 "Prevent non-availability
    of opening") can measure service latency end to end.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        bus: EventBus,
        can_bus: CanBus,
        service_time_ms: float = 0.2,
        queue_capacity: int | None = 32,
    ) -> None:
        super().__init__(
            name,
            clock,
            bus,
            service_time_ms=service_time_ms,
            queue_capacity=queue_capacity,
        )
        self._can = can_bus
        self.add_route(KIND_OPEN, can_bus, self._to_door_frame)
        self.add_route(KIND_CLOSE, can_bus, self._to_door_frame)
        self.add_route(KIND_DIAG, can_bus, self._to_diag_frame)

    def _to_diag_frame(self, message: Message) -> Message:
        return make_frame(
            sender=self.name,
            can_id=CAN_ID_DIAG,
            kind="diag_frame",
            request=message.payload.get("request"),
            origin=message.sender,
        )

    def _to_door_frame(self, message: Message) -> Message:
        command = "open" if message.kind == KIND_OPEN else "close"
        return make_frame(
            sender=self.name,
            can_id=CAN_ID_DOOR_COMMAND,
            kind="door_command",
            command=command,
            key_id=message.payload.get("key_id"),
            origin=message.sender,
        )


class DoorLockEcu:
    """CAN receiver executing door commands on the lock actuator."""

    def __init__(
        self, name: str, clock: SimClock, bus: EventBus, lock: DoorLock
    ) -> None:
        self.name = name
        self._clock = clock
        self._bus = bus
        self._lock = lock

    def receive(self, frame: Message) -> None:
        """Execute a door command frame (other frames are ignored)."""
        if frame.kind != "door_command":
            return
        command = frame.payload.get("command")
        actor = str(frame.payload.get("origin", frame.sender))
        if command == "open":
            self._lock.open(actor)
        elif command == "close":
            self._lock.close(actor)


__all__ = [
    "AccessEcu",
    "CAN_ID_DIAG",
    "CAN_ID_DOOR_COMMAND",
    "DoorLock",
    "DoorLockEcu",
    "DoorState",
    "KIND_CLOSE",
    "KIND_DIAG",
    "KIND_OPEN",
    "Smartphone",
]
