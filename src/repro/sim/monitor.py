"""The safety monitor: goal invariants and FTTI deadlines.

SaSeVAL's test verdicts hinge on whether an attack violated a safety goal.
The monitor watches the running simulation and records
:class:`Violation` objects when

* a registered **invariant** (a predicate over the live SUT state, checked
  periodically) reports a violation -- e.g. "the vehicle is inside the
  construction zone while still in automated mode" (SG01), or
* an expected **reaction deadline** passes without the expected event --
  the FTTI notion of ISO 26262: "the counter measures of the SUT have a
  maximum time span to react and mitigate the imminent hazardous event".
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventBus

#: An invariant check: returns None when satisfied, a detail string when
#: violated.
InvariantCheck = Callable[[], str | None]


@dataclasses.dataclass(frozen=True)
class Violation:
    """One recorded safety-goal violation."""

    time: float
    goal_id: str
    detail: str


class SafetyMonitor:
    """Watches safety goals over a running simulation."""

    def __init__(
        self, clock: SimClock, bus: EventBus, check_period_ms: float = 50.0
    ) -> None:
        if check_period_ms <= 0:
            raise SimulationError("check period must be positive")
        self._clock = clock
        self._bus = bus
        self.check_period_ms = check_period_ms
        self._violations: list[Violation] = []
        self._violated_goals: set[str] = set()
        # Invariants registered at the same clock time share one periodic
        # sweep: registration time -> [(goal_id, check), ...].
        self._sweeps: dict[float, list[tuple[str, InvariantCheck]]] = {}

    # -- invariants ---------------------------------------------------------

    def add_invariant(
        self,
        goal_id: str,
        check: InvariantCheck,
        until: float | None = None,
    ) -> None:
        """Register a periodic invariant for a safety goal.

        The first violation per goal is recorded (with its detail); later
        periods do not re-record it -- a violated goal stays violated for
        the rest of the run, matching the test-verdict semantics.

        Unbounded invariants registered at the same clock time (the
        common case: a scenario installs all its goal checks during
        construction) share **one** periodic sweep that runs them in
        registration order -- a fleet scenario's 2N+2 goal checks cost
        one scheduled event per period instead of 2N+2.  Checks are
        read-only predicates over live SUT state, so batching them into
        a single event at the identical firing times cannot change what
        any check observes.  Bounded invariants (``until``) keep their
        own schedule, which stops exactly at ``until``.
        """
        if until is not None:
            def run_check() -> None:
                self._run_one(goal_id, check)

            self._clock.schedule_periodic(
                self.check_period_ms, run_check, until=until
            )
            return
        entries = self._sweeps.get(self._clock.now)
        if entries is None:
            entries = []
            self._sweeps[self._clock.now] = entries
            self._clock.schedule_periodic(
                self.check_period_ms,
                lambda entries=entries: self._sweep(entries),
            )
        entries.append((goal_id, check))

    def _run_one(self, goal_id: str, check: InvariantCheck) -> None:
        if goal_id in self._violated_goals:
            return
        detail = check()
        if detail is not None:
            self._record(goal_id, detail)

    def _sweep(self, entries: list[tuple[str, InvariantCheck]]) -> None:
        violated = self._violated_goals
        for goal_id, check in entries:
            if goal_id in violated:
                continue
            detail = check()
            if detail is not None:
                self._record(goal_id, detail)

    # -- FTTI deadlines -------------------------------------------------------

    def expect_event_within(
        self,
        goal_id: str,
        topic: str,
        deadline_ms: float,
        description: str = "",
    ) -> None:
        """Require an event under ``topic`` within ``deadline_ms`` from now.

        If no matching event is published before the deadline, the goal is
        violated ("reaction not within the FTTI").

        The deadline check reads the event trace, so ``topic`` is
        registered for retention -- under the lean ``"counts"`` trace
        mode the scenario should additionally list it in its
        ``RETAINED_TOPICS`` (retention starts at registration; events
        published earlier in the same millisecond are only covered by a
        construction-time registration).
        """
        if deadline_ms <= 0:
            raise SimulationError("deadline must be positive")
        self._bus.retain(topic)
        registered_at = self._clock.now

        def check_deadline() -> None:
            if goal_id in self._violated_goals:
                return
            for event in self._bus.events(topic):
                if event.time >= registered_at:
                    return  # reaction happened in time
            what = description or f"event {topic!r}"
            self._record(
                goal_id,
                f"{what} did not occur within {deadline_ms:.0f} ms "
                f"(FTTI expired at {registered_at + deadline_ms:.0f} ms)",
            )

        self._clock.schedule(deadline_ms, check_deadline)

    # -- results ---------------------------------------------------------------

    def _record(self, goal_id: str, detail: str) -> None:
        violation = Violation(
            time=self._clock.now, goal_id=goal_id, detail=detail
        )
        self._violations.append(violation)
        self._violated_goals.add(goal_id)
        self._bus.publish(
            self._clock.now,
            f"safety.violation.{goal_id}",
            "safety-monitor",
            detail=detail,
        )

    @property
    def violations(self) -> tuple[Violation, ...]:
        """All recorded violations, in time order."""
        return tuple(self._violations)

    def is_violated(self, goal_id: str) -> bool:
        """True when the goal was violated at any point of the run."""
        return goal_id in self._violated_goals

    def violated_goals(self) -> tuple[str, ...]:
        """Identifiers of all violated goals, sorted."""
        return tuple(sorted(self._violated_goals))

    @property
    def all_goals_held(self) -> bool:
        """True when no violation was recorded."""
        return not self._violations


__all__ = [
    "InvariantCheck",
    "SafetyMonitor",
    "Violation",
]
