"""Lightweight-but-honest cryptographic primitives for the simulator.

The attack descriptions of §IV assume "a valid end-to-end encryption" and
authenticated senders; the interesting attacks are the ones that work
*despite* those controls (replay, flooding by an authenticated sender, key
forgery against the ID check).  The simulator therefore needs real message
authentication semantics -- forgery must actually fail -- without pulling
in a cryptography dependency.  HMAC-SHA256 from the standard library gives
exactly that: honest verification behaviour with toy key management.

Nothing here is security advice; it is a simulation substrate.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import hashlib
import hmac
import threading

from repro.errors import SimulationError

# Batch-scoped HMAC memo (see shared_mac_memo).  Thread-local so batches
# running on a thread backend never share mutable state across workers.
# Sized so a whole family batch fits: flood variants sign ~12.5k distinct
# (key, payload) pairs each, and exposed/protected twins replay the same
# attacker schedule, so a limit above one variant's footprint turns the
# second variant's signing pass into pure dict hits.
_MEMO_STATE = threading.local()
_MEMO_LIMIT = 65536


@contextlib.contextmanager
def shared_mac_memo():
    """Activate a shared ``(key, payload) -> tag`` memo for this thread.

    HMAC-SHA256 is a pure function, so memoising it is semantically
    transparent; what the context manager adds over the per-``Message``
    caches in :mod:`repro.sim.network` is *cross-variant* reuse: a batch
    of variants from one scenario family re-signs and re-verifies the
    same canonical payloads with the same provisioned keys, and the memo
    lets the whole batch pay for each distinct digest once.

    Scoped (rather than a module global) so that unbatched runs keep the
    exact PR-5 cost profile and serial-vs-batched benchmarks stay honest.
    Nesting reuses the outer memo.
    """
    previous = getattr(_MEMO_STATE, "memo", None)
    memo = {} if previous is None else previous
    _MEMO_STATE.memo = memo
    try:
        yield memo
    finally:
        _MEMO_STATE.memo = previous


def compute_mac(key: bytes, payload: bytes) -> str:
    """HMAC-SHA256 tag (hex) over ``payload`` with ``key``.

    Inside a :func:`shared_mac_memo` scope, distinct ``(key, payload)``
    pairs are digested once and replayed from the memo thereafter.
    """
    memo = getattr(_MEMO_STATE, "memo", None)
    if memo is None:
        return hmac.digest(key, payload, "sha256").hex()
    token = (key, payload)
    tag = memo.get(token)
    if tag is None:
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        tag = memo[token] = hmac.digest(key, payload, "sha256").hex()
    return tag


def verify_mac(key: bytes, payload: bytes, tag: str) -> bool:
    """Constant-time verification of a :func:`compute_mac` tag.

    This is the uncached primitive.  Hot paths that re-verify the same
    broadcast message per receiver go through
    :meth:`repro.sim.network.Message.mac_verified`, which memoises the
    verdict per ``(message instance, key)`` -- safe because messages are
    frozen, and a tampered replica is a fresh instance with cold caches.
    """
    expected = compute_mac(key, payload)
    return hmac.compare_digest(expected, tag)


@functools.lru_cache(maxsize=1024)
def derive_key(identity: str) -> bytes:
    """Deterministic shared-key derivation for ``identity``.

    Pure sha256 over the identity string, so the cache is safe to share
    process-wide: every :class:`KeyStore` derives the same bytes for the
    same identity.  Campaign batches re-provision the same handful of
    identities ("rsu", "av", fleet vehicle names) per variant; caching
    the digest makes provisioning a dict lookup after the first variant.
    """
    return hashlib.sha256(f"key:{identity}".encode("utf-8")).digest()


def canonical_payload(fields: dict[str, object]) -> bytes:
    """Deterministic byte encoding of a message payload for MACing.

    Keys are sorted so logically equal payloads always authenticate
    identically regardless of construction order.
    """
    parts = [f"{key}={fields[key]!r}" for key in sorted(fields)]
    return "|".join(parts).encode("utf-8")


class KeyStore:
    """Shared-key registry for authenticated senders.

    The store models the credential provisioning of the SUT: every
    *authenticated* participant (RSU, smartphone key, on-board ECUs) holds
    a shared key; attackers may or may not possess one -- AD20's flooding
    attacker explicitly does ("Create an authenticated sender as attacker
    beside the original sender").
    """

    def __init__(self) -> None:
        self._keys: dict[str, bytes] = {}

    def provision(self, identity: str) -> bytes:
        """Create (or return) the shared key for ``identity``.

        Keys are derived deterministically from the identity so simulation
        runs are reproducible; this is a simulation, not key management.
        """
        if identity not in self._keys:
            self._keys[identity] = derive_key(identity)
        return self._keys[identity]

    def key_of(self, identity: str) -> bytes:
        """The provisioned key of ``identity``.

        Raises:
            SimulationError: when the identity was never provisioned.
        """
        if identity not in self._keys:
            raise SimulationError(f"no key provisioned for {identity!r}")
        return self._keys[identity]

    def is_provisioned(self, identity: str) -> bool:
        """True when ``identity`` holds a shared key."""
        return identity in self._keys

    def identities(self) -> tuple[str, ...]:
        """All provisioned identities, in provisioning order."""
        return tuple(self._keys)


@dataclasses.dataclass
class ChallengeResponse:
    """A deterministic challenge-response session helper.

    UC II notes replay "might be prevented by timestamps resp.
    challenge-responds-patterns within the communication"; this implements
    the pattern: the verifier issues a fresh challenge, the prover answers
    with ``HMAC(key, challenge)``, and each challenge is single-use.
    """

    keystore: KeyStore
    _counter: int = 0
    _outstanding: dict[str, str] = dataclasses.field(default_factory=dict)

    def issue_challenge(self, identity: str) -> str:
        """Issue a fresh single-use challenge for ``identity``."""
        self._counter += 1
        challenge = f"challenge-{identity}-{self._counter}"
        self._outstanding[challenge] = identity
        return challenge

    def respond(self, identity: str, challenge: str) -> str:
        """The prover's response (requires the identity's key)."""
        key = self.keystore.key_of(identity)
        return compute_mac(key, challenge.encode("utf-8"))

    def verify(self, identity: str, challenge: str, response: str) -> bool:
        """Verify a response; consumes the challenge either way.

        A challenge can be verified at most once -- replaying a captured
        (challenge, response) pair fails because the challenge is spent.
        """
        expected_identity = self._outstanding.pop(challenge, None)
        if expected_identity != identity:
            return False
        if not self.keystore.is_provisioned(identity):
            return False
        key = self.keystore.key_of(identity)
        return verify_mac(key, challenge.encode("utf-8"), response)


__all__ = [
    "ChallengeResponse",
    "KeyStore",
    "canonical_payload",
    "compute_mac",
    "derive_key",
    "shared_mac_memo",
    "verify_mac",
]
