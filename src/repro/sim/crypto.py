"""Lightweight-but-honest cryptographic primitives for the simulator.

The attack descriptions of §IV assume "a valid end-to-end encryption" and
authenticated senders; the interesting attacks are the ones that work
*despite* those controls (replay, flooding by an authenticated sender, key
forgery against the ID check).  The simulator therefore needs real message
authentication semantics -- forgery must actually fail -- without pulling
in a cryptography dependency.  HMAC-SHA256 from the standard library gives
exactly that: honest verification behaviour with toy key management.

Nothing here is security advice; it is a simulation substrate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac

from repro.errors import SimulationError


def compute_mac(key: bytes, payload: bytes) -> str:
    """HMAC-SHA256 tag (hex) over ``payload`` with ``key``."""
    return hmac.new(key, payload, hashlib.sha256).hexdigest()


def verify_mac(key: bytes, payload: bytes, tag: str) -> bool:
    """Constant-time verification of a :func:`compute_mac` tag.

    This is the uncached primitive.  Hot paths that re-verify the same
    broadcast message per receiver go through
    :meth:`repro.sim.network.Message.mac_verified`, which memoises the
    verdict per ``(message instance, key)`` -- safe because messages are
    frozen, and a tampered replica is a fresh instance with cold caches.
    """
    expected = compute_mac(key, payload)
    return hmac.compare_digest(expected, tag)


def canonical_payload(fields: dict[str, object]) -> bytes:
    """Deterministic byte encoding of a message payload for MACing.

    Keys are sorted so logically equal payloads always authenticate
    identically regardless of construction order.
    """
    parts = [f"{key}={fields[key]!r}" for key in sorted(fields)]
    return "|".join(parts).encode("utf-8")


class KeyStore:
    """Shared-key registry for authenticated senders.

    The store models the credential provisioning of the SUT: every
    *authenticated* participant (RSU, smartphone key, on-board ECUs) holds
    a shared key; attackers may or may not possess one -- AD20's flooding
    attacker explicitly does ("Create an authenticated sender as attacker
    beside the original sender").
    """

    def __init__(self) -> None:
        self._keys: dict[str, bytes] = {}

    def provision(self, identity: str) -> bytes:
        """Create (or return) the shared key for ``identity``.

        Keys are derived deterministically from the identity so simulation
        runs are reproducible; this is a simulation, not key management.
        """
        if identity not in self._keys:
            digest = hashlib.sha256(f"key:{identity}".encode("utf-8")).digest()
            self._keys[identity] = digest
        return self._keys[identity]

    def key_of(self, identity: str) -> bytes:
        """The provisioned key of ``identity``.

        Raises:
            SimulationError: when the identity was never provisioned.
        """
        if identity not in self._keys:
            raise SimulationError(f"no key provisioned for {identity!r}")
        return self._keys[identity]

    def is_provisioned(self, identity: str) -> bool:
        """True when ``identity`` holds a shared key."""
        return identity in self._keys

    def identities(self) -> tuple[str, ...]:
        """All provisioned identities, in provisioning order."""
        return tuple(self._keys)


@dataclasses.dataclass
class ChallengeResponse:
    """A deterministic challenge-response session helper.

    UC II notes replay "might be prevented by timestamps resp.
    challenge-responds-patterns within the communication"; this implements
    the pattern: the verifier issues a fresh challenge, the prover answers
    with ``HMAC(key, challenge)``, and each challenge is single-use.
    """

    keystore: KeyStore
    _counter: int = 0
    _outstanding: dict[str, str] = dataclasses.field(default_factory=dict)

    def issue_challenge(self, identity: str) -> str:
        """Issue a fresh single-use challenge for ``identity``."""
        self._counter += 1
        challenge = f"challenge-{identity}-{self._counter}"
        self._outstanding[challenge] = identity
        return challenge

    def respond(self, identity: str, challenge: str) -> str:
        """The prover's response (requires the identity's key)."""
        key = self.keystore.key_of(identity)
        return compute_mac(key, challenge.encode("utf-8"))

    def verify(self, identity: str, challenge: str, response: str) -> bool:
        """Verify a response; consumes the challenge either way.

        A challenge can be verified at most once -- replaying a captured
        (challenge, response) pair fails because the challenge is spent.
        """
        expected_identity = self._outstanding.pop(challenge, None)
        if expected_identity != identity:
            return False
        if not self.keystore.is_provisioned(identity):
            return False
        key = self.keystore.key_of(identity)
        return verify_mac(key, challenge.encode("utf-8"), response)


__all__ = [
    "ChallengeResponse",
    "KeyStore",
    "canonical_payload",
    "compute_mac",
    "verify_mac",
]
