"""V2X communication: road-side unit and on-board unit (Use Case I).

Fig. 2 of the paper: "The road side unit (RSU) informs the vehicle via the
on board unit (OBU) about the upcoming [construction] site.  The OBU
should inform the driver, so that control is transferred back (upfront) to
the driver."

Message kinds carried on the V2X channel map to the three HARA functions
of §IV-A:

* ``road_works_warning`` -- "Hazardous location notifications (Road works
  warning)": triggers the take-over request,
* ``speed_limit`` -- "Signage applications (In-vehicle speed limits)":
  adjusts the automated target speed,
* ``hazard_warning`` -- "Warning of other traffic participants about
  hazardous vehicle state": shown to the driver (SG05 guards against a
  warning flood).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.crypto import KeyStore
from repro.sim.ecu import Ecu
from repro.sim.events import EventBus
from repro.sim.network import Medium, Message
from repro.sim.vehicle import Vehicle

KIND_ROAD_WORKS = "road_works_warning"
KIND_SPEED_LIMIT = "speed_limit"
KIND_HAZARD_WARNING = "hazard_warning"
#: A road-works warning relayed vehicle-to-vehicle (hop-limited).
KIND_V2V_RELAY = "v2v_road_works_relay"


class RoadsideUnit:
    """An RSU broadcasting authenticated infrastructure messages.

    Attributes:
        name: Sender identity (provisioned in the keystore).
        location: Logical location stamped on every message; plausibility
            checks compare it against the receiver's expectations.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Medium,
        keystore: KeyStore,
        location: str,
    ) -> None:
        self.name = name
        self.location = location
        self._clock = clock
        self._channel = channel
        self._keystore = keystore
        self._counter = 0
        keystore.provision(name)

    def _send(self, kind: str, payload: dict) -> Message:
        self._counter += 1
        # Timestamp at construction and create_signed (not construct +
        # signed copy) -- one Message build per periodic broadcast.
        message = Message.create_signed(
            self._keystore,
            kind=kind,
            sender=self.name,
            payload=payload,
            counter=self._counter,
            timestamp=self._clock.now,
            location=self.location,
        )
        return self._channel.send(message)

    def send_road_works_warning(
        self, zone_start_m: float, speed_limit_mps: float
    ) -> Message:
        """Broadcast one road-works warning."""
        return self._send(
            KIND_ROAD_WORKS,
            {"zone_start_m": zone_start_m, "speed_limit_mps": speed_limit_mps},
        )

    def send_speed_limit(self, speed_limit_mps: float) -> Message:
        """Broadcast an in-vehicle signage speed limit."""
        return self._send(
            KIND_SPEED_LIMIT, {"speed_limit_mps": speed_limit_mps}
        )

    def send_hazard_warning(self, text: str) -> Message:
        """Broadcast a hazardous-vehicle-state warning."""
        return self._send(KIND_HAZARD_WARNING, {"text": text})

    def broadcast_periodically(
        self,
        period_ms: float,
        zone_start_m: float,
        speed_limit_mps: float,
        until: float | None = None,
    ) -> None:
        """Repeat the road-works warning every ``period_ms``."""
        if period_ms <= 0:
            raise SimulationError("broadcast period must be positive")
        self._clock.schedule_periodic(
            period_ms,
            lambda: self.send_road_works_warning(
                zone_start_m, speed_limit_mps
            ),
            until=until,
        )


class V2VRelay:
    """Vehicle-to-vehicle hazard forwarding (the V2V leg of V2X).

    A relay rides on a vehicle: it listens on the shared radio channel
    and re-broadcasts road-works warnings so convoy members *outside*
    the RSU's coverage still learn about the hazard ahead.  A warning is
    only forwarded when its HMAC verifies against the claimed sender's
    provisioned key -- re-signing an unverified message would launder a
    spoof past the receivers' own authentication.  Forwarded messages
    are signed with the relay's own provisioned identity (a vehicle
    cannot speak for the RSU), carry the originating ``(sender,
    counter)`` pair for de-duplication, and a ``hops`` counter bounds
    flooding: each warning is relayed at most once per relay and never
    beyond ``max_hops``.

    Attributes:
        name: Sender identity of the relay (provisioned in the keystore).
        forwarded: Number of warnings this relay re-broadcast.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        channel: Medium,
        keystore: KeyStore,
        bus: EventBus,
        max_hops: int = 2,
        forward_delay_ms: float = 5.0,
    ) -> None:
        if max_hops < 1:
            raise SimulationError("relay max_hops must be >= 1")
        if forward_delay_ms < 0:
            raise SimulationError("relay forward delay must be >= 0")
        self.name = name
        self.max_hops = max_hops
        self.forward_delay_ms = forward_delay_ms
        self.forwarded = 0
        self._clock = clock
        self._channel = channel
        self._keystore = keystore
        self._bus = bus
        self._counter = 0
        self._seen_origins: set[str] = set()
        keystore.provision(name)

    def _authentic(self, message: Message) -> bool:
        """True when the message's tag verifies for its claimed sender."""
        if not message.auth_tag or not self._keystore.is_provisioned(
            message.sender
        ):
            return False
        # Instance-memoised: the relay checks the same broadcast every
        # OBU's sender-auth control already verified.
        return message.mac_verified(self._keystore.key_of(message.sender))

    def receive(self, message: Message) -> None:
        """Forward fresh, *authenticated* road-works warnings, hop-limited."""
        if message.sender == self.name:
            return
        if message.kind == KIND_ROAD_WORKS:
            origin = f"{message.sender}:{message.counter}"
            hops = 0
        elif message.kind == KIND_V2V_RELAY:
            origin = str(message.payload.get("origin", ""))
            hops = int(message.payload.get("hops", self.max_hops))
        else:
            return
        if not origin or origin in self._seen_origins or hops >= self.max_hops:
            return
        if not self._authentic(message):
            return
        self._seen_origins.add(origin)
        payload = {
            "zone_start_m": message.payload.get("zone_start_m"),
            "speed_limit_mps": message.payload.get("speed_limit_mps"),
            "origin": origin,
            "hops": hops + 1,
        }
        self._clock.schedule(
            self.forward_delay_ms, lambda: self._forward(payload)
        )

    def _forward(self, payload: dict) -> None:
        self._counter += 1
        self.forwarded += 1
        message = Message.create_signed(
            self._keystore,
            kind=KIND_V2V_RELAY,
            sender=self.name,
            payload=payload,
            counter=self._counter,
            timestamp=self._clock.now,
        )
        self._channel.send(message)
        self._bus.publish(
            self._clock.now,
            "v2v.relayed",
            self.name,
            origin=payload["origin"],
            hops=payload["hops"],
        )


class OnBoardUnit(Ecu):
    """The OBU: receives V2X messages and drives the vehicle's reactions.

    Accepted road-works warnings request the driver take-over; accepted
    speed limits retarget the automation; accepted hazard warnings are
    surfaced to the driver (and counted, for SG05's "too many unintended
    warnings" concern).
    """

    __slots__ = ("_vehicle", "warnings_shown")

    def __init__(
        self,
        name: str,
        clock: SimClock,
        bus: EventBus,
        vehicle: Vehicle,
        service_time_ms: float = 0.5,
        queue_capacity: int | None = 64,
        shutdown_after_overloads: int | None = 500,
    ) -> None:
        super().__init__(
            name,
            clock,
            bus,
            service_time_ms=service_time_ms,
            queue_capacity=queue_capacity,
            shutdown_after_overloads=shutdown_after_overloads,
        )
        self._vehicle = vehicle
        self.warnings_shown = 0

    def handle(self, message: Message) -> None:
        if message.kind == KIND_ROAD_WORKS:
            self._bus.publish(
                self._clock.now,
                "obu.warning_accepted",
                self.name,
                zone_start_m=message.payload.get("zone_start_m"),
                sender=message.sender,
            )
            self._vehicle.request_handover(reason="road works ahead")
        elif message.kind == KIND_V2V_RELAY:
            self._bus.publish(
                self._clock.now,
                "obu.relay_accepted",
                self.name,
                zone_start_m=message.payload.get("zone_start_m"),
                origin=message.payload.get("origin"),
                hops=message.payload.get("hops"),
                sender=message.sender,
            )
            self._vehicle.request_handover(
                reason="road works ahead (relayed)"
            )
        elif message.kind == KIND_SPEED_LIMIT:
            limit = message.payload.get("speed_limit_mps")
            if isinstance(limit, (int, float)) and not isinstance(limit, bool):
                self._bus.publish(
                    self._clock.now,
                    "obu.speed_limit_accepted",
                    self.name,
                    speed_limit_mps=limit,
                )
                self._vehicle.set_target_speed(float(limit))
        elif message.kind == KIND_HAZARD_WARNING:
            self.warnings_shown += 1
            self._bus.publish(
                self._clock.now,
                "obu.hazard_warning_shown",
                self.name,
                text=message.payload.get("text", ""),
                total_shown=self.warnings_shown,
            )


__all__ = [
    "KIND_HAZARD_WARNING",
    "KIND_ROAD_WORKS",
    "KIND_SPEED_LIMIT",
    "KIND_V2V_RELAY",
    "OnBoardUnit",
    "RoadsideUnit",
    "V2VRelay",
]
