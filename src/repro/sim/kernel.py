"""The unified discrete-event kernel every scenario builds on.

The seed scenarios (`ConstructionSiteScenario`, `KeylessEntryScenario`)
each wired up their own :class:`~repro.sim.clock.SimClock`,
:class:`~repro.sim.events.EventBus`, :class:`~repro.sim.crypto.KeyStore`
and channels by hand.  :class:`SimKernel` bundles that substrate once:
one clock, one bus, one keystore, an optional road world, and a named
registry of communication media (V2X radio, BLE link, CAN bus -- anything
satisfying :class:`~repro.sim.network.Medium`).

:class:`KernelScenario` is the base class for SUT assemblies: it owns the
kernel, validates the deployed-control set, and provides the single
``run()`` implementation that advances the kernel and collects a
:class:`ScenarioResult`.  Subclasses only declare *what* to assemble
(components, controls, safety-goal checks) -- the event-loop mechanics
live here, which is what lets the campaign runner treat every scenario
uniformly.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import SimulationError
from repro.sim.can import CanBus
from repro.sim.clock import SimClock
from repro.sim.crypto import KeyStore
from repro.sim.events import TRACE_FULL, EventBus
from repro.sim.monitor import SafetyMonitor, Violation
from repro.sim.network import Channel, Medium, PropagationModel
from repro.sim.topology import Topology
from repro.sim.world import World


@dataclasses.dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run.

    Attributes:
        violations: Safety-goal violations recorded by the monitor.
        detections: Per-ECU detection-log sizes (control name -> count is
            available via ``detection_records``).
        detection_records: The full intrusion logs per ECU.  Rows are
            tuples in :class:`~repro.sim.controls.base.DetectionRecord`
            field order -- either the NamedTuple itself or the
            pipeline's plain raw rows (value-equal; index access works
            for both).
        detection_control_counts: Per-ECU ``{control: denial count}``
            maps, when the scenario maintains them incrementally
            (``None`` otherwise).  Verdict derivation prefers these over
            walking ``detection_records``: a flood variant logs tens of
            thousands of rows.
        stats: Component statistics (channels, ECUs, locks).
    """

    violations: tuple[Violation, ...]
    detection_records: dict[str, tuple]
    stats: dict[str, Any]
    detection_control_counts: dict[str, dict[str, int]] | None = None

    def violated(self, goal_id: str) -> bool:
        """True when the named safety goal was violated."""
        return any(violation.goal_id == goal_id for violation in self.violations)

    @property
    def any_violation(self) -> bool:
        """True when any safety goal was violated."""
        return bool(self.violations)

    def violated_goals(self) -> tuple[str, ...]:
        """Identifiers of all violated goals, sorted and de-duplicated."""
        return tuple(sorted({v.goal_id for v in self.violations}))

    def detections_of(self, ecu: str, control: str | None = None) -> int:
        """Detection count of one ECU (optionally one control)."""
        counts = (
            self.detection_control_counts.get(ecu)
            if self.detection_control_counts is not None
            else None
        )
        if counts is not None:
            if control is None:
                return sum(counts.values())
            return counts.get(control, 0)
        records = self.detection_records.get(ecu, ())
        if control is None:
            return len(records)
        # Index 1 is the control name; rows may be plain tuples.
        return sum(1 for record in records if record[1] == control)

    def detection_counts(self) -> dict[str, int]:
        """Total detection-log size per ECU (plain data, picklable)."""
        return {ecu: len(records) for ecu, records in self.detection_records.items()}


class SimKernel:
    """One discrete-event substrate: clock, bus, keystore, world, media.

    Attributes:
        clock: The shared discrete-event scheduler.
        bus: The shared topic/trace event bus.
        keystore: The shared key material for message authentication.
        world: The 1-D road world, or ``None`` for scenarios without
            geometry (e.g. the keyless opener).
        media: All registered communication media by name.

    Args:
        trace_mode: The event bus's retention mode -- ``"full"``
            (default, complete trace) or ``"counts"`` (lean: per-prefix
            counters only, plus prefixes registered via
            ``bus.retain()``).  Campaign workers that only read verdicts
            run lean; interactive/report use keeps the full trace.
    """

    def __init__(
        self,
        road_length_m: float | None = None,
        trace_mode: str = TRACE_FULL,
    ) -> None:
        self.clock = SimClock()
        self.bus = EventBus(mode=trace_mode)
        self.keystore = KeyStore()
        self.world: World | None = (
            World(road_length_m) if road_length_m is not None else None
        )
        self.topology: Topology | None = None
        self.media: dict[str, Medium] = {}

    # -- topology ------------------------------------------------------------

    def create_topology(self, tick_ms: float = 100.0) -> Topology:
        """Create (once) the spatial actor topology over this world.

        Raises:
            SimulationError: without a world (no geometry to place
                actors on) or when a topology already exists.
        """
        if self.world is None:
            raise SimulationError(
                "kernel has no world; pass road_length_m to place actors"
            )
        if self.topology is not None:
            raise SimulationError("kernel topology already created")
        self.topology = Topology(self.world, clock=self.clock, tick_ms=tick_ms)
        return self.topology

    # -- media --------------------------------------------------------------

    def add_medium(self, medium: Medium) -> Medium:
        """Register an externally constructed medium under its name."""
        if medium.name in self.media:
            raise SimulationError(f"medium {medium.name!r} already registered")
        self.media[medium.name] = medium
        return medium

    def channel(
        self,
        name: str,
        latency_ms: float = 1.0,
        bandwidth_per_ms: float | None = None,
        propagation: PropagationModel | None = None,
    ) -> Channel:
        """Create and register a broadcast :class:`Channel` (V2X, BLE).

        ``propagation`` gates delivery (default: global broadcast); pass
        a :class:`~repro.sim.topology.RangePropagation` over
        :attr:`topology` for range-limited radio.
        """
        return self.add_medium(
            Channel(
                name,
                self.clock,
                self.bus,
                latency_ms=latency_ms,
                bandwidth_per_ms=bandwidth_per_ms,
                propagation=propagation,
            )
        )

    def can_bus(
        self,
        name: str,
        frame_time_ms: float = 0.5,
        queue_capacity: int = 256,
    ) -> CanBus:
        """Create and register a :class:`CanBus` segment."""
        return self.add_medium(
            CanBus(
                name,
                self.clock,
                self.bus,
                frame_time_ms=frame_time_ms,
                queue_capacity=queue_capacity,
            )
        )

    def medium(self, name: str) -> Medium:
        """Look up a registered medium by name."""
        if name not in self.media:
            raise SimulationError(f"unknown medium {name!r}")
        return self.media[name]

    def medium_stats(self) -> dict[str, dict[str, float]]:
        """Traffic statistics of every registered medium."""
        return {name: medium.stats for name, medium in self.media.items()}

    # -- monitoring ----------------------------------------------------------

    def monitor(self, check_period_ms: float = 50.0) -> SafetyMonitor:
        """Create a safety monitor on this kernel's clock and bus."""
        return SafetyMonitor(self.clock, self.bus, check_period_ms=check_period_ms)

    # -- execution -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self.clock.now

    def run_until(self, time_ms: float) -> int:
        """Advance the kernel to ``time_ms``; returns executed event count."""
        return self.clock.run_until(time_ms)

    def run(self) -> int:
        """Drain the event queue completely."""
        return self.clock.run()


class KernelScenario:
    """Base class for SUT assemblies driven by the :class:`SimKernel`.

    Subclasses set :attr:`ALL_CONTROLS` (the control names their
    ``controls`` parameter accepts), :attr:`CONTROL_SCOPE` (used in the
    rejection message), :attr:`DEFAULT_DURATION_MS` and
    :attr:`RETAINED_TOPICS` (the event-topic prefixes their safety-goal
    checks read back from the trace -- retained even under the lean
    ``"counts"`` trace mode so verdicts are mode-independent), assemble
    their components in ``__init__``, and implement the two collection
    hooks.

    Attributes:
        kernel: The owning :class:`SimKernel`.
        controls: The deployed security-control names.
        clock / bus / keystore / world: Aliases into the kernel (the
            attribute names every existing test and binding relies on).
    """

    #: Control names the scenario's ``controls`` parameter accepts.
    ALL_CONTROLS: frozenset[str] = frozenset()
    #: Scope label used in the unknown-control error ("UC1", "UC2").
    CONTROL_SCOPE: str = "scenario"
    #: Default ``run()`` horizon.
    DEFAULT_DURATION_MS: float = 10000.0
    #: Topic prefixes the scenario's verdict path reads from the trace;
    #: registered with ``bus.retain()`` at construction time (before any
    #: publish) so the lean trace mode records the identical sequence.
    RETAINED_TOPICS: tuple[str, ...] = ()

    def __init__(
        self, kernel: SimKernel, controls: frozenset[str] | set[str]
    ) -> None:
        unknown = set(controls) - self.ALL_CONTROLS
        if unknown:
            raise SimulationError(
                f"unknown {self.CONTROL_SCOPE} controls: {sorted(unknown)}"
            )
        self.kernel = kernel
        self.controls = frozenset(controls)
        self.clock = kernel.clock
        self.bus = kernel.bus
        self.keystore = kernel.keystore
        self.world = kernel.world
        self.monitor: SafetyMonitor | None = None
        for topic in self.RETAINED_TOPICS:
            self.bus.retain(topic)

    # -- collection hooks ----------------------------------------------------

    def detection_records(self) -> dict[str, tuple]:
        """The intrusion logs per protected ECU (subclass hook)."""
        return {}

    def detection_control_counts(self) -> dict[str, dict[str, int]] | None:
        """Per-ECU per-control denial counts (subclass hook).

        Scenarios whose pipelines maintain incremental counts return
        them here so verdict derivation skips walking the full logs;
        the default ``None`` keeps the walk-the-records fallback.
        """
        return None

    def collect_stats(self) -> dict[str, Any]:
        """Component statistics for the result (subclass hook)."""
        return self.kernel.medium_stats()

    # -- execution -----------------------------------------------------------

    def run(self, duration_ms: float | None = None) -> ScenarioResult:
        """Run the scenario and collect the result."""
        if self.monitor is None:
            raise SimulationError(
                f"{type(self).__name__} never created its safety monitor"
            )
        self.kernel.run_until(
            self.DEFAULT_DURATION_MS if duration_ms is None else duration_ms
        )
        return ScenarioResult(
            violations=self.monitor.violations,
            detection_records=self.detection_records(),
            stats=self.collect_stats(),
            detection_control_counts=self.detection_control_counts(),
        )


__all__ = [
    "KernelScenario",
    "ScenarioResult",
    "SimKernel",
]
