"""The spatial traffic world: actors, mobility and range-gated radio.

:mod:`repro.sim.world` gives scenarios a 1-D road with named zones; this
module promotes it into a full *topology* layer -- the substrate Use
Case I's radio-coverage story actually needs:

* :class:`Actor` -- anything occupying a road position: a tracked
  vehicle, a stationary RSU, a placed attacker.  Every actor optionally
  carries a ``transmit_range_m`` used by range-gated propagation.
* pluggable :class:`MobilityModel` implementations --
  :class:`StationaryMobility` (infrastructure),
  :class:`ConstantSpeedMobility` and :class:`FollowLeaderMobility`
  (convoy followers) -- stepped deterministically by the topology's
  periodic tick in actor-insertion order.
* :class:`SpatialIndex` -- an immutable sorted-position snapshot
  answering range queries in ``O(log n + k)``, with results ordered
  deterministically by ``(distance, name)``.
* :class:`RangePropagation` -- the range-aware
  :class:`~repro.sim.network.PropagationModel`: a message reaches
  exactly the receivers whose actors sit within the *sender's* transmit
  range at delivery time.  The boundary is inclusive (``distance <=
  range``) and delivery order is the channel's deterministic attach
  order, so range-edge outcomes never depend on iteration accidents --
  the clock's scheduling sequence is the only tie-breaker in play.

Placement is validated: negative positions are rejected with
:class:`~repro.errors.SimulationError` (the silent ``clamp``-to-zero of
the seed hid mis-specified scenarios), and mobility saturation at the
road ends is surfaced through :class:`~repro.sim.world.ClampedPosition`'s
``saturated`` flag plus the topology's ``saturated_actors`` record.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.network import Message, Receiver
from repro.sim.world import World

__all__ = [
    "Actor",
    "ConstantSpeedMobility",
    "FollowLeaderMobility",
    "MobilityModel",
    "RangePropagation",
    "SpatialIndex",
    "StationaryMobility",
    "Topology",
]


@runtime_checkable
class MobilityModel(Protocol):
    """How an actor's position evolves over one tick."""

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        """The actor's next (unclamped) position after ``dt_s`` seconds."""


class StationaryMobility:
    """Infrastructure mobility: the actor never moves (RSUs, attackers)."""

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        return actor.position_m


class ConstantSpeedMobility:
    """Longitudinal motion at a fixed speed (m/s; negative drives back)."""

    def __init__(self, speed_mps: float) -> None:
        self.speed_mps = speed_mps

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        return actor.position_m + self.speed_mps * dt_s


class FollowLeaderMobility:
    """Close on a leading actor, holding ``gap_m`` behind it.

    The follower drives toward ``leader.position - gap_m``, capped at
    ``max_speed_mps`` and never reversing (a convoy follower brakes, it
    does not back up).
    """

    def __init__(
        self, leader: str, gap_m: float = 50.0, max_speed_mps: float = 35.0
    ) -> None:
        if gap_m < 0:
            raise SimulationError("follow gap must be >= 0")
        if max_speed_mps <= 0:
            raise SimulationError("follower max speed must be positive")
        self.leader = leader
        self.gap_m = gap_m
        self.max_speed_mps = max_speed_mps

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        target = topology.position_of(self.leader) - self.gap_m
        headroom = target - actor.position_m
        if headroom <= 0:
            return actor.position_m
        return actor.position_m + min(headroom, self.max_speed_mps * dt_s)


class Actor:
    """One positioned participant of the traffic world.

    Attributes:
        name: Unique actor name within the topology.
        transmit_range_m: Radio range of this actor's transmissions;
            ``None`` means unlimited (legacy global broadcast).
        mobility: The model stepping this actor, or ``None`` when the
            position is driven externally through ``tracker`` (e.g. a
            :class:`~repro.sim.vehicle.Vehicle` owns its kinematics).
        tracker: Callable returning the externally owned position.
    """

    def __init__(
        self,
        name: str,
        position_m: float = 0.0,
        transmit_range_m: float | None = None,
        mobility: MobilityModel | None = None,
        tracker: Callable[[], float] | None = None,
    ) -> None:
        if not name:
            raise SimulationError("actor needs a name")
        if position_m < 0:
            raise SimulationError(
                f"actor {name!r}: negative placement ({position_m} m) "
                "rejected; actors start on the road"
            )
        if transmit_range_m is not None and transmit_range_m < 0:
            raise SimulationError(
                f"actor {name!r}: transmit range must be >= 0"
            )
        if mobility is not None and tracker is not None:
            raise SimulationError(
                f"actor {name!r}: pass either mobility or tracker, not both"
            )
        self.name = name
        self.transmit_range_m = transmit_range_m
        self.mobility = mobility
        self.tracker = tracker
        self._position_m = position_m

    @property
    def position_m(self) -> float:
        """Current road position (reads the tracker when present)."""
        if self.tracker is not None:
            return self.tracker()
        return self._position_m

    @position_m.setter
    def position_m(self, value: float) -> None:
        if self.tracker is not None:
            raise SimulationError(
                f"actor {self.name!r} is tracked; move the tracked "
                "component instead"
            )
        self._position_m = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Actor({self.name!r}, position_m={self.position_m:.1f}, "
            f"transmit_range_m={self.transmit_range_m})"
        )


class SpatialIndex:
    """Immutable sorted snapshot of actor positions for range queries."""

    def __init__(self, positions: Iterable[tuple[float, str]]) -> None:
        self._entries = sorted(positions)
        self._positions = [position for position, _name in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def within(self, center_m: float, radius_m: float) -> tuple[str, ...]:
        """Actor names within ``radius_m`` of ``center_m`` (inclusive).

        Results are ordered by ``(distance, name)`` so range queries are
        deterministic even for coincident actors.
        """
        if radius_m < 0:
            raise SimulationError("query radius must be >= 0")
        lo = bisect.bisect_left(self._positions, center_m - radius_m)
        hi = bisect.bisect_right(self._positions, center_m + radius_m)
        hits = self._entries[lo:hi]
        return tuple(
            name
            for _distance, name in sorted(
                (abs(position - center_m), name) for position, name in hits
            )
        )

    def nearest(self, center_m: float, count: int = 1) -> tuple[str, ...]:
        """The ``count`` nearest actor names, by ``(distance, name)``."""
        ranked = sorted(
            (abs(position - center_m), name)
            for position, name in self._entries
        )
        return tuple(name for _distance, name in ranked[:count])


class Topology:
    """The actor registry of one simulated traffic world.

    A topology owns placement validation, deterministic mobility
    stepping (insertion order, one shared tick) and name resolution for
    range-gated propagation: components attached to a channel (an OBU
    named ``"OBU-2"``) are bound to their carrying actor (``"ego-2"``)
    with :meth:`bind`, so the propagation model can locate both senders
    and receivers.
    """

    def __init__(
        self,
        world: World,
        clock: SimClock | None = None,
        tick_ms: float = 100.0,
    ) -> None:
        if tick_ms <= 0:
            raise SimulationError("topology tick must be positive")
        self.world = world
        self.tick_ms = tick_ms
        self._clock = clock
        self._actors: dict[str, Actor] = {}
        self._aliases: dict[str, str] = {}
        self._saturated: set[str] = set()
        self._ticking = False

    # -- registration -------------------------------------------------------

    def add(self, actor: Actor) -> Actor:
        """Register an actor; duplicate names fail loudly."""
        if self._resolve(actor.name) is not None:
            raise SimulationError(f"actor {actor.name!r} already registered")
        try:
            self.world.place(actor.position_m)
        except SimulationError as exc:
            raise SimulationError(f"actor {actor.name!r}: {exc}") from None
        self._actors[actor.name] = actor
        if actor.mobility is not None:
            self._ensure_ticking()
        return actor

    def add_stationary(
        self,
        name: str,
        position_m: float,
        transmit_range_m: float | None = None,
    ) -> Actor:
        """Place fixed infrastructure (an RSU, a positioned attacker).

        Stationary actors carry no mobility model at all, so placing
        them never starts the topology tick -- a world of pure
        infrastructure leaves the event queue drainable.
        """
        return self.add(
            Actor(
                name,
                position_m=position_m,
                transmit_range_m=transmit_range_m,
            )
        )

    def add_mobile(
        self,
        name: str,
        position_m: float,
        mobility: MobilityModel,
        transmit_range_m: float | None = None,
    ) -> Actor:
        """Place a topology-stepped mobile actor."""
        return self.add(
            Actor(
                name,
                position_m=position_m,
                transmit_range_m=transmit_range_m,
                mobility=mobility,
            )
        )

    def track(
        self, component, transmit_range_m: float | None = None
    ) -> Actor:
        """Track a component owning its own kinematics (a Vehicle).

        The component provides ``name`` and ``position_m``; the actor's
        position always reads through to it.
        """
        return self.add(
            Actor(
                component.name,
                position_m=component.position_m,
                transmit_range_m=transmit_range_m,
                tracker=lambda: component.position_m,
            )
        )

    def bind(self, alias: str, actor_name: str) -> None:
        """Bind a channel-endpoint name to its carrying actor.

        E.g. ``bind("OBU-2", "ego-2")``: messages to/from ``OBU-2``
        resolve to ``ego-2``'s position and transmit range.
        """
        if self._resolve(actor_name) is None:
            raise SimulationError(
                f"cannot bind {alias!r}: unknown actor {actor_name!r}"
            )
        if self._resolve(alias) is not None:
            raise SimulationError(f"name {alias!r} already registered")
        self._aliases[alias] = actor_name

    # -- lookup -------------------------------------------------------------

    def _resolve(self, name: str) -> Actor | None:
        if name in self._actors:
            return self._actors[name]
        if name in self._aliases:
            return self._actors[self._aliases[name]]
        return None

    def actor(self, name: str) -> Actor:
        """Look up an actor by name or bound alias."""
        actor = self._resolve(name)
        if actor is None:
            raise SimulationError(f"unknown actor {name!r}")
        return actor

    def knows(self, name: str) -> bool:
        """True when ``name`` is a registered actor or bound alias."""
        return self._resolve(name) is not None

    @property
    def actors(self) -> tuple[Actor, ...]:
        """All actors, in registration order."""
        return tuple(self._actors.values())

    @property
    def saturated_actors(self) -> tuple[str, ...]:
        """Names of actors whose mobility ever saturated at a road end."""
        return tuple(sorted(self._saturated))

    def position_of(self, name: str) -> float:
        """Current position of an actor (or bound alias)."""
        return self.actor(name).position_m

    def distance_m(self, a: str, b: str) -> float:
        """Absolute distance between two actors."""
        return abs(self.position_of(a) - self.position_of(b))

    def in_range(self, sender: str, receiver: str) -> bool:
        """True when ``receiver`` sits within ``sender``'s transmit range.

        The boundary is inclusive: at ``distance == range`` the receiver
        still hears the sender.  A ``None`` range means unlimited.
        """
        range_m = self.actor(sender).transmit_range_m
        if range_m is None:
            return True
        return self.distance_m(sender, receiver) <= range_m

    def neighbors(
        self, name: str, range_m: float | None = None
    ) -> tuple[str, ...]:
        """Other actors within ``range_m`` (default: the actor's own
        transmit range), ordered by ``(distance, name)``."""
        actor = self.actor(name)
        radius = range_m if range_m is not None else actor.transmit_range_m
        if radius is None:
            names = self.index().within(actor.position_m, float("inf"))
        else:
            names = self.index().within(actor.position_m, radius)
        return tuple(n for n in names if n != actor.name)

    def index(self) -> SpatialIndex:
        """A :class:`SpatialIndex` snapshot of the current positions."""
        return SpatialIndex(
            (actor.position_m, actor.name) for actor in self._actors.values()
        )

    # -- mobility -----------------------------------------------------------

    def _ensure_ticking(self) -> None:
        if self._ticking:
            return
        if self._clock is None:
            raise SimulationError(
                "topology has mobile actors but no clock to step them"
            )
        self._clock.schedule_periodic(
            self.tick_ms, self.step, start=self.tick_ms
        )
        self._ticking = True

    def step(self, dt_s: float | None = None) -> None:
        """Advance every mobile actor one tick, in insertion order."""
        dt = self.tick_ms / 1000.0 if dt_s is None else dt_s
        for actor in self._actors.values():
            if actor.mobility is None:
                continue
            proposed = actor.mobility.next_position(actor, self, dt)
            position, saturated = self.world.clamp_value(proposed)
            if saturated:
                self._saturated.add(actor.name)
            actor.position_m = position


class RangePropagation:
    """Range-gated delivery: a message reaches in-range receivers only.

    Membership is evaluated at **delivery** time (after channel latency
    and congestion), against the *sender's* transmit range -- matching
    the physical story where the RSU's transmitter, not the OBU's
    antenna, bounds the coverage zone.  Consistent with
    :meth:`Topology.in_range`, an actor whose ``transmit_range_m`` is
    ``None`` transmits without limit; senders unknown to the topology
    have no position to gate from and broadcast globally, and receivers
    unknown to the topology (passive observers without a road position)
    hear everything unless explicitly placed.

    Note the model's shared-band semantics: range gating filters who
    *decodes* a transmission, never who *transmits* -- every send still
    occupies the channel's bandwidth budget (airtime), so an
    out-of-decode-range transmitter can congest the band for everyone,
    as co-channel interference does.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def receivers(
        self, message: Message, receivers: list[Receiver]
    ) -> list[Receiver]:
        """The attached receivers the message actually reaches.

        Runs once per delivered message, so each name is resolved to its
        actor exactly once (not once per knows/position lookup).
        """
        resolve = self.topology._resolve
        sender = resolve(message.sender)
        if sender is None:
            # No position to gate from: the sender transmits globally.
            return list(receivers)
        range_m = sender.transmit_range_m
        if range_m is None:
            return list(receivers)
        sender_pos = sender.position_m
        selected = []
        for receiver in receivers:
            actor = resolve(receiver.name)
            if actor is None:
                selected.append(receiver)  # unplaced observers hear all
            elif abs(actor.position_m - sender_pos) <= range_m:
                selected.append(receiver)
        return selected
