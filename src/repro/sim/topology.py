"""The spatial traffic world: actors, mobility and range-gated radio.

:mod:`repro.sim.world` gives scenarios a 1-D road with named zones; this
module promotes it into a full *topology* layer -- the substrate Use
Case I's radio-coverage story actually needs:

* :class:`Actor` -- anything occupying a road position: a tracked
  vehicle, a stationary RSU, a placed attacker.  Every actor optionally
  carries a ``transmit_range_m`` used by range-gated propagation.
* pluggable :class:`MobilityModel` implementations --
  :class:`StationaryMobility` (infrastructure),
  :class:`ConstantSpeedMobility` and :class:`FollowLeaderMobility`
  (convoy followers) -- stepped deterministically by the topology's
  periodic tick in actor-insertion order.
* :class:`SpatialIndex` -- an immutable sorted-position snapshot
  answering range queries in ``O(log n + k)``, with results ordered
  deterministically by ``(distance, name)``.  With :mod:`numpy`
  installed (the ``repro[perf]`` extra) the index keeps its positions
  as a float64 structure-of-arrays and answers ``within()`` /
  ``nearest()`` with vectorised ``searchsorted`` + ``lexsort``; the
  pure-Python path merges the two distance-sorted halves of the hit
  slice lazily (no re-sort of the slice), so both paths return exactly
  the same ``(distance, name)`` ordering.  Set ``REPRO_NO_NUMPY=1`` to
  force the fallback without uninstalling numpy.
* :class:`RangePropagation` -- the range-aware
  :class:`~repro.sim.network.PropagationModel`: a message reaches
  exactly the receivers whose actors sit within the *sender's* transmit
  range at delivery time.  The boundary is inclusive (``distance <=
  range``) and delivery order is the channel's deterministic attach
  order, so range-edge outcomes never depend on iteration accidents --
  the clock's scheduling sequence is the only tie-breaker in play.

Placement is validated: negative positions are rejected with
:class:`~repro.errors.SimulationError` (the silent ``clamp``-to-zero of
the seed hid mis-specified scenarios), and mobility saturation at the
road ends is surfaced through :class:`~repro.sim.world.ClampedPosition`'s
``saturated`` flag plus the topology's ``saturated_actors`` record.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import os
from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.network import Message, Receiver
from repro.sim.world import World

try:  # numpy is the optional ``repro[perf]`` extra, never a hard dep
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Environment variable forcing the pure-Python spatial path even when
#: numpy is importable (the CI fallback leg, A/B benchmarking).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Below this many vectorisable actors the numpy round-trip costs more
#: than the Python loop it replaces; the tick falls back transparently.
_MIN_VECTOR_RUN = 4


def numpy_enabled() -> bool:
    """True when the vectorised spatial kernel is active.

    Requires numpy to be importable *and* :data:`NO_NUMPY_ENV` to be
    unset -- the environment switch lets CI and benchmarks exercise the
    pure-Python fallback without uninstalling the ``[perf]`` extra.
    """
    return _np is not None and not os.environ.get(NO_NUMPY_ENV)


__all__ = [
    "Actor",
    "ConstantSpeedMobility",
    "FollowLeaderMobility",
    "MobilityModel",
    "NO_NUMPY_ENV",
    "RangePropagation",
    "SpatialIndex",
    "StationaryMobility",
    "Topology",
    "numpy_enabled",
]


@runtime_checkable
class MobilityModel(Protocol):
    """How an actor's position evolves over one tick."""

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        """The actor's next (unclamped) position after ``dt_s`` seconds."""


class StationaryMobility:
    """Infrastructure mobility: the actor never moves (RSUs, attackers)."""

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        return actor.position_m


class ConstantSpeedMobility:
    """Longitudinal motion at a fixed speed (m/s; negative drives back)."""

    def __init__(self, speed_mps: float) -> None:
        self.speed_mps = speed_mps

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        return actor.position_m + self.speed_mps * dt_s


class FollowLeaderMobility:
    """Close on a leading actor, holding ``gap_m`` behind it.

    The follower drives toward ``leader.position - gap_m``, capped at
    ``max_speed_mps`` and never reversing (a convoy follower brakes, it
    does not back up).
    """

    def __init__(
        self, leader: str, gap_m: float = 50.0, max_speed_mps: float = 35.0
    ) -> None:
        if gap_m < 0:
            raise SimulationError("follow gap must be >= 0")
        if max_speed_mps <= 0:
            raise SimulationError("follower max speed must be positive")
        self.leader = leader
        self.gap_m = gap_m
        self.max_speed_mps = max_speed_mps

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        target = topology.position_of(self.leader) - self.gap_m
        headroom = target - actor.position_m
        if headroom <= 0:
            return actor.position_m
        return actor.position_m + min(headroom, self.max_speed_mps * dt_s)


class Actor:
    """One positioned participant of the traffic world.

    Attributes:
        name: Unique actor name within the topology.
        transmit_range_m: Radio range of this actor's transmissions;
            ``None`` means unlimited (legacy global broadcast).
        mobility: The model stepping this actor, or ``None`` when the
            position is driven externally through ``tracker`` (e.g. a
            :class:`~repro.sim.vehicle.Vehicle` owns its kinematics).
        tracker: Callable returning the externally owned position.
    """

    def __init__(
        self,
        name: str,
        position_m: float = 0.0,
        transmit_range_m: float | None = None,
        mobility: MobilityModel | None = None,
        tracker: Callable[[], float] | None = None,
    ) -> None:
        if not name:
            raise SimulationError("actor needs a name")
        if position_m < 0:
            raise SimulationError(
                f"actor {name!r}: negative placement ({position_m} m) "
                "rejected; actors start on the road"
            )
        if transmit_range_m is not None and transmit_range_m < 0:
            raise SimulationError(
                f"actor {name!r}: transmit range must be >= 0"
            )
        if mobility is not None and tracker is not None:
            raise SimulationError(
                f"actor {name!r}: pass either mobility or tracker, not both"
            )
        self.name = name
        self.transmit_range_m = transmit_range_m
        self.mobility = mobility
        self.tracker = tracker
        self._position_m = position_m

    @property
    def position_m(self) -> float:
        """Current road position (reads the tracker when present)."""
        if self.tracker is not None:
            return self.tracker()
        return self._position_m

    @position_m.setter
    def position_m(self, value: float) -> None:
        if self.tracker is not None:
            raise SimulationError(
                f"actor {self.name!r} is tracked; move the tracked "
                "component instead"
            )
        self._position_m = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Actor({self.name!r}, position_m={self.position_m:.1f}, "
            f"transmit_range_m={self.transmit_range_m})"
        )


class SpatialIndex:
    """Immutable sorted snapshot of actor positions for range queries.

    Two equivalent engines answer the queries:

    * **numpy structure-of-arrays** (default when the ``[perf]`` extra
      is installed): positions live in one sorted float64 array, names
      in a parallel array; ``within()`` is ``searchsorted`` over the
      position array plus one ``lexsort`` of the hit slice, and
      ``nearest()`` partitions distances before ordering only the
      candidate set.
    * **pure Python** (fallback, or ``REPRO_NO_NUMPY=1``): the
      position-sorted entries left and right of the query centre are
      two already-distance-sorted runs, so both queries *merge* them
      lazily (``heapq.merge`` semantics) instead of re-sorting the hit
      slice; ``nearest()`` draws only ``count`` items from the merge.

    Both paths return identically ``(distance, name)``-ordered names --
    asserted exactly by the property tests -- so range queries are
    deterministic even for coincident actors.
    """

    def __init__(
        self,
        positions: Iterable[tuple[float, str]],
        use_numpy: bool | None = None,
    ) -> None:
        self._entries = sorted(positions)
        self._positions = [position for position, _name in self._entries]
        self.use_numpy = (
            numpy_enabled() if use_numpy is None else (use_numpy and _np is not None)
        )
        if self.use_numpy:
            # Structure of arrays: float64 positions + parallel names,
            # both already in (position, name) order from the sort above.
            self._pos_array = _np.array(self._positions, dtype=_np.float64)
            self._name_array = _np.array(
                [name for _position, name in self._entries]
            )

    def __len__(self) -> int:
        return len(self._entries)

    # -- pure-Python engine: lazy merge of the two distance runs ------------

    def _ranked(self, center_m: float, lo: int, hi: int):
        """Yield ``(distance, name)`` over entries[lo:hi] in sorted order.

        Entries left of the centre have strictly non-increasing distance
        as position grows, entries right of it non-decreasing -- two
        sorted runs merged lazily in ``O(k)`` with no slice re-sort.
        Coincident positions inside the left run are emitted per
        equal-position group in name order, keeping the merge input
        properly ``(distance, name)``-sorted.
        """
        entries = self._entries
        split = bisect.bisect_left(self._positions, center_m, lo, hi)

        def left_run():
            i = split - 1
            while i >= lo:
                j = i
                position = entries[j][0]
                while j > lo and entries[j - 1][0] == position:
                    j -= 1
                for index in range(j, i + 1):
                    pos, name = entries[index]
                    yield (center_m - pos, name)
                i = j - 1

        def right_run():
            for pos, name in itertools.islice(entries, split, hi):
                yield (pos - center_m, name)

        return heapq.merge(left_run(), right_run())

    def _bounds(self, center_m: float, radius_m: float) -> tuple[int, int]:
        lo = bisect.bisect_left(self._positions, center_m - radius_m)
        hi = bisect.bisect_right(self._positions, center_m + radius_m)
        return lo, hi

    def within(self, center_m: float, radius_m: float) -> tuple[str, ...]:
        """Actor names within ``radius_m`` of ``center_m`` (inclusive).

        Results are ordered by ``(distance, name)`` so range queries are
        deterministic even for coincident actors.
        """
        if radius_m < 0:
            raise SimulationError("query radius must be >= 0")
        lo, hi = self._bounds(center_m, radius_m)
        if self.use_numpy:
            distances = _np.abs(self._pos_array[lo:hi] - center_m)
            order = _np.lexsort((self._name_array[lo:hi], distances))
            return tuple(self._name_array[lo:hi][order].tolist())
        return tuple(name for _distance, name in self._ranked(center_m, lo, hi))

    def nearest(self, center_m: float, count: int = 1) -> tuple[str, ...]:
        """The ``count`` nearest actor names, by ``(distance, name)``."""
        size = len(self._entries)
        if count <= 0:
            return ()
        if self.use_numpy:
            distances = _np.abs(self._pos_array - center_m)
            if count < size:
                # Partial ordering: partition by distance, then fully
                # order only the candidate set (all entries at most as
                # far as the count-th distance, so name ties at the
                # boundary resolve exactly as a full sort would).
                kth = _np.partition(distances, count - 1)[count - 1]
                candidates = _np.flatnonzero(distances <= kth)
                order = _np.lexsort(
                    (self._name_array[candidates], distances[candidates])
                )
                chosen = candidates[order[:count]]
            else:
                chosen = _np.lexsort((self._name_array, distances))[:count]
            return tuple(self._name_array[chosen].tolist())
        return tuple(
            name
            for _distance, name in itertools.islice(
                self._ranked(center_m, 0, size), count
            )
        )


class Topology:
    """The actor registry of one simulated traffic world.

    A topology owns placement validation, deterministic mobility
    stepping (insertion order, one shared tick) and name resolution for
    range-gated propagation: components attached to a channel (an OBU
    named ``"OBU-2"``) are bound to their carrying actor (``"ego-2"``)
    with :meth:`bind`, so the propagation model can locate both senders
    and receivers.
    """

    def __init__(
        self,
        world: World,
        clock: SimClock | None = None,
        tick_ms: float = 100.0,
    ) -> None:
        if tick_ms <= 0:
            raise SimulationError("topology tick must be positive")
        self.world = world
        self.tick_ms = tick_ms
        self._clock = clock
        self._actors: dict[str, Actor] = {}
        self._aliases: dict[str, str] = {}
        self._saturated: set[str] = set()
        self._ticking = False
        self._tick_plan: list | None = None

    # -- registration -------------------------------------------------------

    def add(self, actor: Actor) -> Actor:
        """Register an actor; duplicate names fail loudly."""
        if self._resolve(actor.name) is not None:
            raise SimulationError(f"actor {actor.name!r} already registered")
        try:
            self.world.place(actor.position_m)
        except SimulationError as exc:
            raise SimulationError(f"actor {actor.name!r}: {exc}") from None
        self._actors[actor.name] = actor
        self._tick_plan = None  # registration changes the step plan
        if actor.mobility is not None:
            self._ensure_ticking()
        return actor

    def add_stationary(
        self,
        name: str,
        position_m: float,
        transmit_range_m: float | None = None,
    ) -> Actor:
        """Place fixed infrastructure (an RSU, a positioned attacker).

        Stationary actors carry no mobility model at all, so placing
        them never starts the topology tick -- a world of pure
        infrastructure leaves the event queue drainable.
        """
        return self.add(
            Actor(
                name,
                position_m=position_m,
                transmit_range_m=transmit_range_m,
            )
        )

    def add_mobile(
        self,
        name: str,
        position_m: float,
        mobility: MobilityModel,
        transmit_range_m: float | None = None,
    ) -> Actor:
        """Place a topology-stepped mobile actor."""
        return self.add(
            Actor(
                name,
                position_m=position_m,
                transmit_range_m=transmit_range_m,
                mobility=mobility,
            )
        )

    def track(
        self, component, transmit_range_m: float | None = None
    ) -> Actor:
        """Track a component owning its own kinematics (a Vehicle).

        The component provides ``name`` and ``position_m``; the actor's
        position always reads through to it.
        """
        return self.add(
            Actor(
                component.name,
                position_m=component.position_m,
                transmit_range_m=transmit_range_m,
                tracker=lambda: component.position_m,
            )
        )

    def bind(self, alias: str, actor_name: str) -> None:
        """Bind a channel-endpoint name to its carrying actor.

        E.g. ``bind("OBU-2", "ego-2")``: messages to/from ``OBU-2``
        resolve to ``ego-2``'s position and transmit range.
        """
        if self._resolve(actor_name) is None:
            raise SimulationError(
                f"cannot bind {alias!r}: unknown actor {actor_name!r}"
            )
        if self._resolve(alias) is not None:
            raise SimulationError(f"name {alias!r} already registered")
        self._aliases[alias] = actor_name

    # -- lookup -------------------------------------------------------------

    def _resolve(self, name: str) -> Actor | None:
        if name in self._actors:
            return self._actors[name]
        if name in self._aliases:
            return self._actors[self._aliases[name]]
        return None

    def actor(self, name: str) -> Actor:
        """Look up an actor by name or bound alias."""
        actor = self._resolve(name)
        if actor is None:
            raise SimulationError(f"unknown actor {name!r}")
        return actor

    def knows(self, name: str) -> bool:
        """True when ``name`` is a registered actor or bound alias."""
        return self._resolve(name) is not None

    @property
    def actors(self) -> tuple[Actor, ...]:
        """All actors, in registration order."""
        return tuple(self._actors.values())

    @property
    def saturated_actors(self) -> tuple[str, ...]:
        """Names of actors whose mobility ever saturated at a road end."""
        return tuple(sorted(self._saturated))

    def position_of(self, name: str) -> float:
        """Current position of an actor (or bound alias)."""
        return self.actor(name).position_m

    def distance_m(self, a: str, b: str) -> float:
        """Absolute distance between two actors."""
        return abs(self.position_of(a) - self.position_of(b))

    def in_range(self, sender: str, receiver: str) -> bool:
        """True when ``receiver`` sits within ``sender``'s transmit range.

        The boundary is inclusive: at ``distance == range`` the receiver
        still hears the sender.  A ``None`` range means unlimited.
        """
        range_m = self.actor(sender).transmit_range_m
        if range_m is None:
            return True
        return self.distance_m(sender, receiver) <= range_m

    def neighbors(
        self, name: str, range_m: float | None = None
    ) -> tuple[str, ...]:
        """Other actors within ``range_m`` (default: the actor's own
        transmit range), ordered by ``(distance, name)``."""
        actor = self.actor(name)
        radius = range_m if range_m is not None else actor.transmit_range_m
        if radius is None:
            names = self.index().within(actor.position_m, float("inf"))
        else:
            names = self.index().within(actor.position_m, radius)
        return tuple(n for n in names if n != actor.name)

    def index(self) -> SpatialIndex:
        """A :class:`SpatialIndex` snapshot of the current positions."""
        return SpatialIndex(
            (actor.position_m, actor.name) for actor in self._actors.values()
        )

    # -- mobility -----------------------------------------------------------

    def _ensure_ticking(self) -> None:
        if self._ticking:
            return
        if self._clock is None:
            raise SimulationError(
                "topology has mobile actors but no clock to step them"
            )
        self._clock.schedule_periodic(
            self.tick_ms, self.step, start=self.tick_ms
        )
        self._ticking = True

    def _build_tick_plan(self) -> list:
        """Partition mobile actors into sequential-vs-vectorisable segments.

        The plan preserves the step's exact insertion-order semantics: a
        *run* of consecutive constant-speed actors reads nothing but its
        own positions, so it advances as one array op; any other mobility
        model (a convoy follower reading its leader mid-tick) stays a
        sequential segment at its original position in the order.  The
        plan is structural only -- speeds and positions are re-read every
        tick, so mutating a model's ``speed_mps`` mid-run behaves exactly
        like the scalar path.
        """
        plan: list = []
        run: list[Actor] = []
        for actor in self._actors.values():
            if actor.mobility is None:
                continue
            if type(actor.mobility) is ConstantSpeedMobility:
                run.append(actor)
                continue
            if run:
                plan.append(("vector", tuple(run)))
                run = []
            plan.append(("scalar", actor))
        if run:
            plan.append(("vector", tuple(run)))
        return plan

    def _step_vector_run(self, run: tuple[Actor, ...], dt: float) -> None:
        """Advance one constant-speed run as a single array op."""
        count = len(run)
        positions = _np.fromiter(
            (actor._position_m for actor in run),
            dtype=_np.float64,
            count=count,
        )
        speeds = _np.fromiter(
            (actor.mobility.speed_mps for actor in run),
            dtype=_np.float64,
            count=count,
        )
        proposed = positions + speeds * dt
        clamped, saturated = self.world.clamp_array(proposed)
        if saturated.any():
            for index in _np.flatnonzero(saturated).tolist():
                self._saturated.add(run[index].name)
        for actor, position in zip(run, clamped.tolist()):
            actor._position_m = position

    def _step_scalar(self, actor: Actor, dt: float) -> None:
        proposed = actor.mobility.next_position(actor, self, dt)
        position, saturated = self.world.clamp_value(proposed)
        if saturated:
            self._saturated.add(actor.name)
        actor.position_m = position

    def step(self, dt_s: float | None = None) -> None:
        """Advance every mobile actor one tick, in insertion order.

        With numpy active, maximal runs of constant-speed actors advance
        as single vectorised array ops (add, clamp, saturation mask) --
        bit-identical to the scalar fallback, which the property tests
        assert across random fleets.
        """
        dt = self.tick_ms / 1000.0 if dt_s is None else dt_s
        if not numpy_enabled():
            for actor in self._actors.values():
                if actor.mobility is None:
                    continue
                self._step_scalar(actor, dt)
            return
        if self._tick_plan is None:
            self._tick_plan = self._build_tick_plan()
        for kind, payload in self._tick_plan:
            if kind == "vector" and len(payload) >= _MIN_VECTOR_RUN:
                self._step_vector_run(payload, dt)
            elif kind == "vector":
                for actor in payload:
                    self._step_scalar(actor, dt)
            else:
                self._step_scalar(payload, dt)


class RangePropagation:
    """Range-gated delivery: a message reaches in-range receivers only.

    Membership is evaluated at **delivery** time (after channel latency
    and congestion), against the *sender's* transmit range -- matching
    the physical story where the RSU's transmitter, not the OBU's
    antenna, bounds the coverage zone.  Consistent with
    :meth:`Topology.in_range`, an actor whose ``transmit_range_m`` is
    ``None`` transmits without limit; senders unknown to the topology
    have no position to gate from and broadcast globally, and receivers
    unknown to the topology (passive observers without a road position)
    hear everything unless explicitly placed.

    Note the model's shared-band semantics: range gating filters who
    *decodes* a transmission, never who *transmits* -- every send still
    occupies the channel's bandwidth budget (airtime), so an
    out-of-decode-range transmitter can congest the band for everyone,
    as co-channel interference does.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def receivers(
        self, message: Message, receivers: list[Receiver]
    ) -> list[Receiver]:
        """The attached receivers the message actually reaches.

        Runs once per delivered message, so each name is resolved to its
        actor exactly once (not once per knows/position lookup).
        """
        resolve = self.topology._resolve
        sender = resolve(message.sender)
        if sender is None:
            # No position to gate from: the sender transmits globally.
            return list(receivers)
        range_m = sender.transmit_range_m
        if range_m is None:
            return list(receivers)
        sender_pos = sender.position_m
        selected = []
        for receiver in receivers:
            actor = resolve(receiver.name)
            if actor is None:
                selected.append(receiver)  # unplaced observers hear all
            elif abs(actor.position_m - sender_pos) <= range_m:
                selected.append(receiver)
        return selected
