"""The spatial traffic world: actors, mobility and range-gated radio.

:mod:`repro.sim.world` gives scenarios a 1-D road with named zones; this
module promotes it into a full *topology* layer -- the substrate Use
Case I's radio-coverage story actually needs:

* :class:`Actor` -- anything occupying a road position: a tracked
  vehicle, a stationary RSU, a placed attacker.  Every actor optionally
  carries a ``transmit_range_m`` used by range-gated propagation.
* pluggable :class:`MobilityModel` implementations --
  :class:`StationaryMobility` (infrastructure),
  :class:`ConstantSpeedMobility` and :class:`FollowLeaderMobility`
  (convoy followers) -- stepped deterministically by the topology's
  periodic tick in actor-insertion order.
* :class:`SpatialIndex` -- an immutable sorted-position snapshot
  answering range queries in ``O(log n + k)``, with results ordered
  deterministically by ``(distance, name)``.
* :class:`RangePropagation` -- the range-aware
  :class:`~repro.sim.network.PropagationModel`: a message reaches
  exactly the receivers whose actors sit within the *sender's* transmit
  range at delivery time.  The boundary is inclusive (``distance <=
  range``) and delivery order is the channel's deterministic attach
  order, so range-edge outcomes never depend on iteration accidents --
  the clock's scheduling sequence is the only tie-breaker in play.

Structure-of-arrays core
------------------------

With :mod:`numpy` installed (the ``repro[perf]`` extra) the topology
keeps its spatial state as parallel float64 arrays -- positions,
velocities and transmit ranges, one slot per actor in registration
order, clamped against the road bounds via
:meth:`~repro.sim.world.World.clamp_array`.  All three mobility models
compile into an immutable :class:`CompiledTickPlan` of per-tick array
stages:

* constant speed -- one gather of the current speeds, a masked velocity
  add over the constant-speed slots, one clamp;
* follow-leader -- leader-index gathers organised into dependency
  *waves* (a follower whose leader is itself a follower earlier in
  registration order steps one wave later, reproducing the per-chain
  lag of the scalar loop exactly);
* stationary -- a zero mask (no-op unless an actor was force-placed
  off-road, in which case it clamps exactly like the scalar step).

``Topology.step`` is then a handful of array ops regardless of fleet
size.  Plans are structural (slots and wave shape only): model
parameters (speeds, gaps, caps) are re-read every tick, so mutating a
model mid-run behaves exactly like the scalar path, and one compiled
plan can be shared by every variant of a scenario family via
:func:`shared_tick_plans`.  The pure-Python engine remains as the
``REPRO_NO_NUMPY=1`` fallback with step-for-step parity, asserted by
the property tests.

Version counters drive cache invalidation: ``position_version`` bumps
whenever any position may have changed (a tick, a setter write, a
tracked vehicle reporting motion), ``registration_version`` whenever
the actor set or alias table changes.  :class:`RangePropagation` keys
its per-sender delivery sets on them, so a flood of messages inside one
clock timestamp resolves its receiver set once and replays it from
cache -- falling back to per-delivery resolution the moment a position
changes mid-timestamp (or when a tracked component cannot report
motion at all).

Placement is validated: negative positions are rejected with
:class:`~repro.errors.SimulationError` (the silent ``clamp``-to-zero of
the seed hid mis-specified scenarios), and mobility saturation at the
road ends is surfaced through :class:`~repro.sim.world.ClampedPosition`'s
``saturated`` flag plus the topology's ``saturated_actors`` record.
"""

from __future__ import annotations

import bisect
import contextlib
import heapq
import itertools
import os
import threading
from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.network import Message, Receiver
from repro.sim.world import World

try:  # numpy is the optional ``repro[perf]`` extra, never a hard dep
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Environment variable forcing the pure-Python spatial path even when
#: numpy is importable (the CI fallback leg, A/B benchmarking).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Below this many mobility-stepped actors the numpy round-trip costs
#: more than the scalar loop it replaces; the tick falls back
#: transparently (the compiled plan records the choice).
_MIN_VECTOR_ACTORS = 4

#: Below this many attached receivers the vectorised range query costs
#: more than the scalar membership loop; the channel view picks per
#: attach list.
_MIN_VECTOR_RECEIVERS = 8


def numpy_enabled() -> bool:
    """True when the vectorised spatial kernel is active.

    Requires numpy to be importable *and* :data:`NO_NUMPY_ENV` to be
    unset -- the environment switch lets CI and benchmarks exercise the
    pure-Python fallback without uninstalling the ``[perf]`` extra.
    """
    return _np is not None and not os.environ.get(NO_NUMPY_ENV)


__all__ = [
    "Actor",
    "CompiledTickPlan",
    "ConstantSpeedMobility",
    "FollowLeaderMobility",
    "MobilityModel",
    "NO_NUMPY_ENV",
    "RangePropagation",
    "SpatialIndex",
    "StationaryMobility",
    "Topology",
    "numpy_enabled",
    "shared_tick_plans",
]


@runtime_checkable
class MobilityModel(Protocol):
    """How an actor's position evolves over one tick."""

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        """The actor's next (unclamped) position after ``dt_s`` seconds."""


class StationaryMobility:
    """Infrastructure mobility: the actor never moves (RSUs, attackers)."""

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        return actor.position_m


class ConstantSpeedMobility:
    """Longitudinal motion at a fixed speed (m/s; negative drives back)."""

    def __init__(self, speed_mps: float) -> None:
        self.speed_mps = speed_mps

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        return actor.position_m + self.speed_mps * dt_s


class FollowLeaderMobility:
    """Close on a leading actor, holding ``gap_m`` behind it.

    The follower drives toward ``leader.position - gap_m``, capped at
    ``max_speed_mps`` and never reversing (a convoy follower brakes, it
    does not back up).
    """

    def __init__(
        self, leader: str, gap_m: float = 50.0, max_speed_mps: float = 35.0
    ) -> None:
        if gap_m < 0:
            raise SimulationError("follow gap must be >= 0")
        if max_speed_mps <= 0:
            raise SimulationError("follower max speed must be positive")
        self.leader = leader
        self.gap_m = gap_m
        self.max_speed_mps = max_speed_mps

    def next_position(
        self, actor: "Actor", topology: "Topology", dt_s: float
    ) -> float:
        target = topology.position_of(self.leader) - self.gap_m
        headroom = target - actor.position_m
        if headroom <= 0:
            return actor.position_m
        return actor.position_m + min(headroom, self.max_speed_mps * dt_s)


class Actor:
    """One positioned participant of the traffic world.

    Attributes:
        name: Unique actor name within the topology.
        transmit_range_m: Radio range of this actor's transmissions;
            ``None`` means unlimited (legacy global broadcast).
        mobility: The model stepping this actor, or ``None`` when the
            position is driven externally through ``tracker`` (e.g. a
            :class:`~repro.sim.vehicle.Vehicle` owns its kinematics).
        tracker: Callable returning the externally owned position.
    """

    def __init__(
        self,
        name: str,
        position_m: float = 0.0,
        transmit_range_m: float | None = None,
        mobility: MobilityModel | None = None,
        tracker: Callable[[], float] | None = None,
    ) -> None:
        if not name:
            raise SimulationError("actor needs a name")
        if position_m < 0:
            raise SimulationError(
                f"actor {name!r}: negative placement ({position_m} m) "
                "rejected; actors start on the road"
            )
        if transmit_range_m is not None and transmit_range_m < 0:
            raise SimulationError(
                f"actor {name!r}: transmit range must be >= 0"
            )
        if mobility is not None and tracker is not None:
            raise SimulationError(
                f"actor {name!r}: pass either mobility or tracker, not both"
            )
        self.name = name
        self.transmit_range_m = transmit_range_m
        self.mobility = mobility
        self.tracker = tracker
        self._position_m = position_m
        # Back-reference + slot index, filled in by Topology.add(): the
        # topology's structure-of-arrays mirror and version counters
        # must observe setter writes.
        self._owner: "Topology | None" = None
        self._slot = -1

    @property
    def position_m(self) -> float:
        """Current road position (reads the tracker when present)."""
        if self.tracker is not None:
            return self.tracker()
        return self._position_m

    @position_m.setter
    def position_m(self, value: float) -> None:
        if self.tracker is not None:
            raise SimulationError(
                f"actor {self.name!r} is tracked; move the tracked "
                "component instead"
            )
        self._position_m = value
        if self._owner is not None:
            self._owner._record_motion(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Actor({self.name!r}, position_m={self.position_m:.1f}, "
            f"transmit_range_m={self.transmit_range_m})"
        )


class SpatialIndex:
    """Immutable sorted snapshot of actor positions for range queries.

    Two equivalent engines answer the queries:

    * **numpy structure-of-arrays** (default when the ``[perf]`` extra
      is installed): positions live in one sorted float64 array, names
      in a parallel array; ``within()`` is ``searchsorted`` over the
      position array plus one ``lexsort`` of the hit slice, and
      ``nearest()`` partitions distances before ordering only the
      candidate set.
    * **pure Python** (fallback, or ``REPRO_NO_NUMPY=1``): the
      position-sorted entries left and right of the query centre are
      two already-distance-sorted runs, so both queries *merge* them
      lazily (``heapq.merge`` semantics) instead of re-sorting the hit
      slice; ``nearest()`` draws only ``count`` items from the merge.

    Both paths return identically ``(distance, name)``-ordered names --
    asserted exactly by the property tests -- so range queries are
    deterministic even for coincident actors.
    """

    def __init__(
        self,
        positions: Iterable[tuple[float, str]],
        use_numpy: bool | None = None,
    ) -> None:
        self._entries = sorted(positions)
        self._positions = [position for position, _name in self._entries]
        self.use_numpy = (
            numpy_enabled() if use_numpy is None else (use_numpy and _np is not None)
        )
        if self.use_numpy:
            # Structure of arrays: float64 positions + parallel names,
            # both already in (position, name) order from the sort above.
            self._pos_array = _np.array(self._positions, dtype=_np.float64)
            self._name_array = _np.array(
                [name for _position, name in self._entries]
            )

    def __len__(self) -> int:
        return len(self._entries)

    # -- pure-Python engine: lazy merge of the two distance runs ------------

    def _ranked(self, center_m: float, lo: int, hi: int):
        """Yield ``(distance, name)`` over entries[lo:hi] in sorted order.

        Entries left of the centre have strictly non-increasing distance
        as position grows, entries right of it non-decreasing -- two
        sorted runs merged lazily in ``O(k)`` with no slice re-sort.
        Coincident positions inside the left run are emitted per
        equal-position group in name order, keeping the merge input
        properly ``(distance, name)``-sorted.
        """
        entries = self._entries
        split = bisect.bisect_left(self._positions, center_m, lo, hi)

        def left_run():
            i = split - 1
            while i >= lo:
                j = i
                position = entries[j][0]
                while j > lo and entries[j - 1][0] == position:
                    j -= 1
                for index in range(j, i + 1):
                    pos, name = entries[index]
                    yield (center_m - pos, name)
                i = j - 1

        def right_run():
            for pos, name in itertools.islice(entries, split, hi):
                yield (pos - center_m, name)

        return heapq.merge(left_run(), right_run())

    def _bounds(self, center_m: float, radius_m: float) -> tuple[int, int]:
        lo = bisect.bisect_left(self._positions, center_m - radius_m)
        hi = bisect.bisect_right(self._positions, center_m + radius_m)
        return lo, hi

    def within(self, center_m: float, radius_m: float) -> tuple[str, ...]:
        """Actor names within ``radius_m`` of ``center_m`` (inclusive).

        Results are ordered by ``(distance, name)`` so range queries are
        deterministic even for coincident actors.
        """
        if radius_m < 0:
            raise SimulationError("query radius must be >= 0")
        lo, hi = self._bounds(center_m, radius_m)
        if self.use_numpy:
            distances = _np.abs(self._pos_array[lo:hi] - center_m)
            order = _np.lexsort((self._name_array[lo:hi], distances))
            return tuple(self._name_array[lo:hi][order].tolist())
        return tuple(name for _distance, name in self._ranked(center_m, lo, hi))

    def nearest(self, center_m: float, count: int = 1) -> tuple[str, ...]:
        """The ``count`` nearest actor names, by ``(distance, name)``."""
        size = len(self._entries)
        if count <= 0:
            return ()
        if self.use_numpy:
            distances = _np.abs(self._pos_array - center_m)
            if count < size:
                # Partial ordering: partition by distance, then fully
                # order only the candidate set (all entries at most as
                # far as the count-th distance, so name ties at the
                # boundary resolve exactly as a full sort would).
                kth = _np.partition(distances, count - 1)[count - 1]
                candidates = _np.flatnonzero(distances <= kth)
                order = _np.lexsort(
                    (self._name_array[candidates], distances[candidates])
                )
                chosen = candidates[order[:count]]
            else:
                chosen = _np.lexsort((self._name_array, distances))[:count]
            return tuple(self._name_array[chosen].tolist())
        return tuple(
            name
            for _distance, name in itertools.islice(
                self._ranked(center_m, 0, size), count
            )
        )


# -- compiled tick plans ------------------------------------------------------

#: Thread-local stack of shared plan caches (see shared_tick_plans()).
_PLAN_STATE = threading.local()


@contextlib.contextmanager
def shared_tick_plans():
    """Share compiled tick plans across the topologies of this thread.

    A batch of variants from one scenario family builds structurally
    identical topologies; inside this scope each distinct plan
    *signature* is compiled once and the immutable
    :class:`CompiledTickPlan` is reused by every subsequent topology
    with the same structure.  Plans hold slot indices and wave shape
    only -- never actor or model references -- so sharing them across
    variants is semantically transparent.  Mirrors
    :func:`repro.sim.crypto.shared_mac_memo`: scoped (not a module
    global) so unbatched runs keep their exact cost profile and
    serial-vs-batched benchmarks stay honest; nesting reuses the outer
    cache.
    """
    previous = getattr(_PLAN_STATE, "plans", None)
    plans: dict = {} if previous is None else previous
    _PLAN_STATE.plans = plans
    try:
        yield plans
    finally:
        _PLAN_STATE.plans = previous


class _Wave:
    """One follow-leader dependency wave of a compiled plan.

    All followers in a wave step together: their leaders' this-tick
    values are already final (earlier stage or earlier wave) or are, by
    registration order, the *previous*-tick values -- ``old_mask``
    records which, reproducing the scalar loop's insertion-order
    semantics exactly.
    """

    __slots__ = (
        "follower_slots",
        "follower_idx",
        "leader_idx",
        "old_mask",
        "needs_old",
    )

    def __init__(
        self, followers: list[int], leaders: list[int], use_old: list[bool]
    ) -> None:
        self.follower_slots = tuple(followers)
        self.follower_idx = _np.array(followers, dtype=_np.intp)
        self.leader_idx = _np.array(leaders, dtype=_np.intp)
        self.old_mask = _np.array(use_old, dtype=bool)
        self.needs_old = any(use_old)


class CompiledTickPlan:
    """An immutable, structurally keyed mobility step program.

    Holds only *structure* -- slot indices, wave partition, the
    vectorise/scalar choice -- so a plan compiled for one topology
    applies to every topology with the same :attr:`signature` (same
    actor count, same mobility kinds in the same slots, same leader
    wiring).  Model parameters are re-read from the live topology every
    tick, preserving the scalar path's mid-run mutability semantics.
    """

    __slots__ = (
        "signature",
        "vectorised",
        "const_slots",
        "const_idx",
        "stationary_slots",
        "stationary_idx",
        "waves",
        "needs_old",
        "mobile_slots",
        "mobile_idx",
    )

    def __init__(self, signature: tuple, topology: "Topology") -> None:
        self.signature = signature
        const: list[int] = []
        stationary: list[int] = []
        # (slot, leader slot, gather-from-old, wave depth) per follower
        followers: list[tuple[int, int, bool, int]] = []
        mobile: list[int] = []
        vectorisable = numpy_enabled()
        follow_depth: dict[int, int] = {}
        actors = topology._slot_actors
        for slot, actor in enumerate(actors):
            model = actor.mobility
            if model is None:
                continue
            mobile.append(slot)
            kind = type(model)
            if kind is ConstantSpeedMobility:
                const.append(slot)
            elif kind is StationaryMobility:
                stationary.append(slot)
            elif kind is FollowLeaderMobility:
                leader = topology._resolve(model.leader)
                if leader is None:
                    # The scalar step raises mid-tick for an unknown
                    # leader; only the scalar loop reproduces that.
                    vectorisable = False
                    continue
                lslot = leader._slot
                # The scalar loop steps in registration order: a leader
                # registered *after* its follower has not moved yet when
                # the follower steps, so the follower reads the
                # previous-tick value.
                use_old = lslot > slot
                depth = 0
                if not use_old and lslot in follow_depth:
                    depth = follow_depth[lslot] + 1
                follow_depth[slot] = depth
                followers.append((slot, lslot, use_old, depth))
            else:
                # Custom models may read arbitrary topology state; only
                # the scalar loop honours their ordering contract.
                vectorisable = False
        if len(mobile) < _MIN_VECTOR_ACTORS:
            vectorisable = False
        self.vectorised = vectorisable
        if not vectorisable:
            self.const_slots = tuple(const)
            self.const_idx = None
            self.stationary_slots = tuple(stationary)
            self.stationary_idx = None
            self.waves = ()
            self.needs_old = False
            self.mobile_slots = tuple(mobile)
            self.mobile_idx = None
            return
        self.const_slots = tuple(const)
        self.const_idx = _np.array(const, dtype=_np.intp)
        self.stationary_slots = tuple(stationary)
        self.stationary_idx = _np.array(stationary, dtype=_np.intp)
        max_depth = max((f[3] for f in followers), default=-1)
        waves = []
        for depth in range(max_depth + 1):
            in_wave = [f for f in followers if f[3] == depth]
            waves.append(
                _Wave(
                    [f[0] for f in in_wave],
                    [f[1] for f in in_wave],
                    [f[2] for f in in_wave],
                )
            )
        self.waves = tuple(waves)
        self.needs_old = any(wave.needs_old for wave in waves)
        self.mobile_slots = tuple(mobile)
        self.mobile_idx = _np.array(mobile, dtype=_np.intp)


def _plan_signature(topology: "Topology") -> tuple:
    """The structural key of a topology's mobility step.

    Two topologies with equal signatures (actor count, mobility kind
    per slot, leader wiring) compile to interchangeable plans; model
    parameters are deliberately excluded -- plans re-read them per tick.
    """
    parts: list = [(len(topology._slot_actors), numpy_enabled())]
    for slot, actor in enumerate(topology._slot_actors):
        model = actor.mobility
        if model is None:
            continue
        kind = type(model)
        if kind is ConstantSpeedMobility:
            parts.append((slot, "c"))
        elif kind is StationaryMobility:
            parts.append((slot, "s"))
        elif kind is FollowLeaderMobility:
            leader = topology._resolve(model.leader)
            parts.append(
                (slot, "f", leader._slot if leader is not None else None)
            )
        else:
            parts.append((slot, "x"))
    return tuple(parts)


class Topology:
    """The actor registry of one simulated traffic world.

    A topology owns placement validation, deterministic mobility
    stepping (insertion order, one shared tick) and name resolution for
    range-gated propagation: components attached to a channel (an OBU
    named ``"OBU-2"``) are bound to their carrying actor (``"ego-2"``)
    with :meth:`bind`, so the propagation model can locate both senders
    and receivers.

    Attributes:
        position_version: Bumped whenever any actor position may have
            changed (tick, setter write, tracked-component motion).
            Consumers key position-derived caches on it.
        registration_version: Bumped whenever the actor set or the
            alias table changes (which also invalidates the tick plan).
    """

    def __init__(
        self,
        world: World,
        clock: SimClock | None = None,
        tick_ms: float = 100.0,
    ) -> None:
        if tick_ms <= 0:
            raise SimulationError("topology tick must be positive")
        self.world = world
        self.tick_ms = tick_ms
        self.position_version = 0
        self.registration_version = 0
        self._clock = clock
        self._actors: dict[str, Actor] = {}
        self._slot_actors: list[Actor] = []
        self._aliases: dict[str, str] = {}
        self._saturated: set[str] = set()
        self._ticking = False
        self._tick_plan: CompiledTickPlan | None = None
        # Structure-of-arrays mirror (numpy only): positions/velocities/
        # ranges per slot, plus the versions they were synced at.
        self._positions = None
        self._velocities = None
        self._ranges = None
        self._arrays_reg = -1
        self._arrays_pos = -1
        self._tracked_entries: list[tuple[int, Actor]] = []
        # True when a tracked component cannot report motion: position
        # caches can never trust ``position_version`` then.
        self._volatile = False
        self._index_cache: tuple[int, SpatialIndex] | None = None

    # -- registration -------------------------------------------------------

    def add(self, actor: Actor) -> Actor:
        """Register an actor; duplicate names fail loudly."""
        if self._resolve(actor.name) is not None:
            raise SimulationError(f"actor {actor.name!r} already registered")
        try:
            self.world.place(actor.position_m)
        except SimulationError as exc:
            raise SimulationError(f"actor {actor.name!r}: {exc}") from None
        actor._owner = self
        actor._slot = len(self._slot_actors)
        self._actors[actor.name] = actor
        self._slot_actors.append(actor)
        if actor.tracker is not None:
            self._tracked_entries.append((actor._slot, actor))
        self._tick_plan = None  # registration changes the step plan
        self.registration_version += 1
        self.position_version += 1
        if actor.mobility is not None:
            self._ensure_ticking()
        return actor

    def add_stationary(
        self,
        name: str,
        position_m: float,
        transmit_range_m: float | None = None,
    ) -> Actor:
        """Place fixed infrastructure (an RSU, a positioned attacker).

        Stationary actors carry no mobility model at all, so placing
        them never starts the topology tick -- a world of pure
        infrastructure leaves the event queue drainable.
        """
        return self.add(
            Actor(
                name,
                position_m=position_m,
                transmit_range_m=transmit_range_m,
            )
        )

    def add_mobile(
        self,
        name: str,
        position_m: float,
        mobility: MobilityModel,
        transmit_range_m: float | None = None,
    ) -> Actor:
        """Place a topology-stepped mobile actor."""
        return self.add(
            Actor(
                name,
                position_m=position_m,
                transmit_range_m=transmit_range_m,
                mobility=mobility,
            )
        )

    def track(
        self, component, transmit_range_m: float | None = None
    ) -> Actor:
        """Track a component owning its own kinematics (a Vehicle).

        The component provides ``name`` and ``position_m``; the actor's
        position always reads through to it.  Components exposing
        ``add_motion_listener`` (e.g. :class:`~repro.sim.vehicle.Vehicle`)
        notify the topology on movement, which keeps position-keyed
        caches (batched propagation, index snapshots) valid between
        motions; components without it mark the topology *volatile* and
        every spatial query resolves per call, exactly as before.
        """
        actor = self.add(
            Actor(
                component.name,
                position_m=component.position_m,
                transmit_range_m=transmit_range_m,
                tracker=lambda: component.position_m,
            )
        )
        subscribe = getattr(component, "add_motion_listener", None)
        if subscribe is not None:
            subscribe(self._on_tracked_motion)
        else:
            self._volatile = True
        return actor

    def bind(self, alias: str, actor_name: str) -> None:
        """Bind a channel-endpoint name to its carrying actor.

        E.g. ``bind("OBU-2", "ego-2")``: messages to/from ``OBU-2``
        resolve to ``ego-2``'s position and transmit range.
        """
        if self._resolve(actor_name) is None:
            raise SimulationError(
                f"cannot bind {alias!r}: unknown actor {actor_name!r}"
            )
        if self._resolve(alias) is not None:
            raise SimulationError(f"name {alias!r} already registered")
        self._aliases[alias] = actor_name
        self.registration_version += 1
        self._tick_plan = None  # a follower's leader may resolve now

    # -- version bookkeeping ------------------------------------------------

    def _record_motion(self, actor: Actor) -> None:
        """An actor's position was written through its setter."""
        self.position_version += 1
        positions = self._positions
        if positions is not None and self._arrays_reg == self.registration_version:
            positions[actor._slot] = actor._position_m

    def _on_tracked_motion(self) -> None:
        """A tracked component reported that it moved."""
        self.position_version += 1

    def _sync_arrays(self):
        """The SoA positions array, synced to the current versions.

        Rebuilds on registration change; otherwise refreshes only the
        tracked slots (mobility/stationary slots are written through on
        every motion).  Volatile topologies refresh tracked slots on
        every call -- their motion is invisible to the version counter.
        """
        if self._arrays_reg != self.registration_version:
            actors = self._slot_actors
            self._positions = _np.array(
                [actor.position_m for actor in actors], dtype=_np.float64
            )
            self._velocities = _np.zeros(len(actors), dtype=_np.float64)
            self._ranges = _np.array(
                [
                    _np.inf
                    if actor.transmit_range_m is None
                    else actor.transmit_range_m
                    for actor in actors
                ],
                dtype=_np.float64,
            )
            self._arrays_reg = self.registration_version
            self._arrays_pos = self.position_version
        elif self._volatile or self._arrays_pos != self.position_version:
            positions = self._positions
            for slot, actor in self._tracked_entries:
                positions[slot] = actor.tracker()
            self._arrays_pos = self.position_version
        return self._positions

    # -- lookup -------------------------------------------------------------

    def _resolve(self, name: str) -> Actor | None:
        if name in self._actors:
            return self._actors[name]
        if name in self._aliases:
            return self._actors[self._aliases[name]]
        return None

    def actor(self, name: str) -> Actor:
        """Look up an actor by name or bound alias."""
        actor = self._resolve(name)
        if actor is None:
            raise SimulationError(f"unknown actor {name!r}")
        return actor

    def knows(self, name: str) -> bool:
        """True when ``name`` is a registered actor or bound alias."""
        return self._resolve(name) is not None

    @property
    def actors(self) -> tuple[Actor, ...]:
        """All actors, in registration order."""
        return tuple(self._slot_actors)

    @property
    def saturated_actors(self) -> tuple[str, ...]:
        """Names of actors whose mobility ever saturated at a road end."""
        return tuple(sorted(self._saturated))

    def position_of(self, name: str) -> float:
        """Current position of an actor (or bound alias)."""
        return self.actor(name).position_m

    def distance_m(self, a: str, b: str) -> float:
        """Absolute distance between two actors."""
        return abs(self.position_of(a) - self.position_of(b))

    def in_range(self, sender: str, receiver: str) -> bool:
        """True when ``receiver`` sits within ``sender``'s transmit range.

        The boundary is inclusive: at ``distance == range`` the receiver
        still hears the sender.  A ``None`` range means unlimited.
        """
        range_m = self.actor(sender).transmit_range_m
        if range_m is None:
            return True
        return self.distance_m(sender, receiver) <= range_m

    def neighbors(
        self, name: str, range_m: float | None = None
    ) -> tuple[str, ...]:
        """Other actors within ``range_m`` (default: the actor's own
        transmit range), ordered by ``(distance, name)``."""
        actor = self.actor(name)
        radius = range_m if range_m is not None else actor.transmit_range_m
        if radius is None:
            names = self.index().within(actor.position_m, float("inf"))
        else:
            names = self.index().within(actor.position_m, radius)
        return tuple(n for n in names if n != actor.name)

    def index(self) -> SpatialIndex:
        """A :class:`SpatialIndex` snapshot of the current positions.

        Snapshots are cached per ``position_version`` (positions cannot
        have changed while the version stands still), except on volatile
        topologies, which rebuild per call.
        """
        cached = self._index_cache
        if (
            cached is not None
            and not self._volatile
            and cached[0] == self.position_version
        ):
            return cached[1]
        index = SpatialIndex(
            (actor.position_m, actor.name) for actor in self._slot_actors
        )
        self._index_cache = (self.position_version, index)
        return index

    # -- mobility -----------------------------------------------------------

    def _ensure_ticking(self) -> None:
        if self._ticking:
            return
        if self._clock is None:
            raise SimulationError(
                "topology has mobile actors but no clock to step them"
            )
        self._clock.schedule_periodic(
            self.tick_ms, self.step, start=self.tick_ms
        )
        self._ticking = True

    def _compiled_plan(self) -> CompiledTickPlan:
        """The (possibly shared) tick plan for the current structure."""
        plan = self._tick_plan
        if plan is not None:
            return plan
        signature = _plan_signature(self)
        shared = getattr(_PLAN_STATE, "plans", None)
        if shared is not None:
            plan = shared.get(signature)
        if plan is None:
            plan = CompiledTickPlan(signature, self)
            if shared is not None:
                shared[signature] = plan
        self._tick_plan = plan
        return plan

    def _step_scalar(self, actor: Actor, dt: float) -> None:
        proposed = actor.mobility.next_position(actor, self, dt)
        position, saturated = self.world.clamp_value(proposed)
        if saturated:
            self._saturated.add(actor.name)
        actor.position_m = position

    def _mark_saturated(self, mask, slots: tuple[int, ...]) -> None:
        if mask.any():
            actors = self._slot_actors
            for index in _np.flatnonzero(mask).tolist():
                self._saturated.add(actors[slots[index]].name)

    def _step_vector(self, plan: CompiledTickPlan, dt: float) -> None:
        """One tick of the compiled array program.

        Stage order (constants, stationary, waves) differs from the
        scalar loop's registration order, but each follower's leader
        gather source (``old`` vs current) is chosen at compile time to
        reproduce exactly what the scalar loop would have read -- the
        property tests pin the equivalence over random fleets.
        """
        positions = self._sync_arrays()
        velocities = self._velocities
        world = self.world
        actors = self._slot_actors
        old = positions.copy() if plan.needs_old else None
        if plan.const_slots:
            count = len(plan.const_slots)
            speeds = _np.fromiter(
                (actors[slot].mobility.speed_mps for slot in plan.const_slots),
                dtype=_np.float64,
                count=count,
            )
            velocities[plan.const_idx] = speeds
            proposed = positions[plan.const_idx] + speeds * dt
            clamped, saturated = world.clamp_array(proposed)
            positions[plan.const_idx] = clamped
            self._mark_saturated(saturated, plan.const_slots)
        if plan.stationary_slots:
            # Zero mask: stationary actors move only if force-placed
            # off-road, where the scalar step clamps them back on.
            current = positions[plan.stationary_idx]
            off_road = (current < 0.0) | (current > world.road_length_m)
            if off_road.any():
                clamped, saturated = world.clamp_array(current)
                positions[plan.stationary_idx] = clamped
                self._mark_saturated(saturated, plan.stationary_slots)
        for wave in plan.waves:
            count = len(wave.follower_slots)
            gaps = _np.fromiter(
                (actors[slot].mobility.gap_m for slot in wave.follower_slots),
                dtype=_np.float64,
                count=count,
            )
            caps = _np.fromiter(
                (
                    actors[slot].mobility.max_speed_mps
                    for slot in wave.follower_slots
                ),
                dtype=_np.float64,
                count=count,
            )
            if wave.needs_old:
                leader_vals = _np.where(
                    wave.old_mask,
                    old[wave.leader_idx],
                    positions[wave.leader_idx],
                )
            else:
                leader_vals = positions[wave.leader_idx]
            current = positions[wave.follower_idx]
            # Exact scalar op order: target = leader - gap;
            # headroom = target - pos; pos + min(headroom, cap * dt).
            headroom = (leader_vals - gaps) - current
            advanced = current + _np.minimum(headroom, caps * dt)
            proposed = _np.where(headroom <= 0.0, current, advanced)
            clamped, saturated = world.clamp_array(proposed)
            positions[wave.follower_idx] = clamped
            velocities[wave.follower_idx] = (clamped - current) / dt
            self._mark_saturated(saturated, wave.follower_slots)
        # Write the moved slots back to the actors as plain floats: the
        # arrays stay authoritative for batch queries, the actors for
        # every scalar consumer.
        moved = positions[plan.mobile_idx].tolist()
        for slot, value in zip(plan.mobile_slots, moved):
            actors[slot]._position_m = value
        self.position_version += 1
        self._arrays_pos = self.position_version

    def step(self, dt_s: float | None = None) -> None:
        """Advance every mobile actor one tick, in insertion order.

        With numpy active, the compiled plan advances all three mobility
        models as a handful of array ops (masked velocity add, wave
        gathers, zero mask + clamp) -- value-identical to the scalar
        fallback, which the property tests assert across random fleets.
        """
        dt = self.tick_ms / 1000.0 if dt_s is None else dt_s
        if numpy_enabled():
            plan = self._compiled_plan()
            if plan.vectorised:
                self._step_vector(plan, dt)
                return
        for actor in self._slot_actors:
            if actor.mobility is None:
                continue
            self._step_scalar(actor, dt)
        self.position_version += 1


class _ChannelView:
    """One channel attach list, resolved against a topology once.

    Caches the per-receiver actor resolution (names never re-resolve
    per delivery) and the per-sender reached lists, keyed on the
    topology's version counters: while no position changes, a sender's
    delivery set -- e.g. every packet of a flood burst inside one clock
    timestamp -- is a dict hit.  Invalidated by re-resolution when the
    attach list grows or the actor/alias tables change.
    """

    __slots__ = (
        "topology",
        "receivers",
        "length",
        "reg_version",
        "entries",
        "slot_idx",
        "unplaced_mask",
        "any_unplaced",
        "_memo",
    )

    def __init__(self, topology: Topology, receivers: list[Receiver]) -> None:
        self.topology = topology
        self.receivers = receivers
        self.length = len(receivers)
        self.reg_version = topology.registration_version
        self.entries = [
            topology._resolve(receiver.name) for receiver in receivers
        ]
        self.slot_idx = None
        self.unplaced_mask = None
        self.any_unplaced = any(actor is None for actor in self.entries)
        if numpy_enabled() and self.length >= _MIN_VECTOR_RECEIVERS:
            self.slot_idx = _np.array(
                [
                    0 if actor is None else actor._slot
                    for actor in self.entries
                ],
                dtype=_np.intp,
            )
            if self.any_unplaced:
                self.unplaced_mask = _np.array(
                    [actor is None for actor in self.entries], dtype=bool
                )
        self._memo: dict[str, tuple] = {}

    def current(self) -> bool:
        """True while this resolution still matches the live state."""
        return (
            self.length == len(self.receivers)
            and self.reg_version == self.topology.registration_version
        )

    def reached(self, sender: Actor, range_m: float) -> list[Receiver]:
        """The receivers ``sender`` reaches, memoised per position era."""
        topology = self.topology
        volatile = topology._volatile
        if not volatile:
            memo = self._memo.get(sender.name)
            if (
                memo is not None
                and memo[0] == topology.position_version
                and memo[1] == range_m
            ):
                return memo[2]
        sender_pos = sender.position_m
        receivers = self.receivers
        if self.slot_idx is not None:
            positions = topology._sync_arrays()
            mask = (
                _np.abs(positions[self.slot_idx] - sender_pos) <= range_m
            )
            if self.any_unplaced:
                mask |= self.unplaced_mask
            if mask.all():
                selected = list(receivers)
            else:
                selected = [
                    receivers[i] for i in _np.flatnonzero(mask).tolist()
                ]
        else:
            selected = []
            for receiver, actor in zip(receivers, self.entries):
                if actor is None:
                    selected.append(receiver)  # unplaced observers hear all
                elif abs(actor.position_m - sender_pos) <= range_m:
                    selected.append(receiver)
        if not volatile:
            self._memo[sender.name] = (
                topology.position_version,
                range_m,
                selected,
            )
        return selected


class RangePropagation:
    """Range-gated delivery: a message reaches in-range receivers only.

    Membership is evaluated at **delivery** time (after channel latency
    and congestion), against the *sender's* transmit range -- matching
    the physical story where the RSU's transmitter, not the OBU's
    antenna, bounds the coverage zone.  Consistent with
    :meth:`Topology.in_range`, an actor whose ``transmit_range_m`` is
    ``None`` transmits without limit; senders unknown to the topology
    have no position to gate from and broadcast globally, and receivers
    unknown to the topology (passive observers without a road position)
    hear everything unless explicitly placed.

    Delivery sets resolve in batch: the attach list is resolved to
    actors once (per registration era), and each sender's reached list
    is computed through one vectorised range query against the
    topology's position array (scalar loop below
    ``_MIN_VECTOR_RECEIVERS``), then memoised on
    ``Topology.position_version`` -- senders firing repeatedly within
    one clock timestamp replay the cached set.  The moment any position
    changes (or on topologies whose tracked components cannot report
    motion), resolution falls back to per-delivery recomputation, so
    membership always reflects positions at delivery time.

    Note the model's shared-band semantics: range gating filters who
    *decodes* a transmission, never who *transmits* -- every send still
    occupies the channel's bandwidth budget (airtime), so an
    out-of-decode-range transmitter can congest the band for everyone,
    as co-channel interference does.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._views: dict[int, _ChannelView] = {}

    def receivers(
        self, message: Message, receivers: list[Receiver]
    ) -> list[Receiver]:
        """The attached receivers the message actually reaches.

        May return a list shared with previous deliveries of the same
        era; callers own the channel contract of treating the result as
        read-only.
        """
        topology = self.topology
        sender = topology._resolve(message.sender)
        if sender is None:
            # No position to gate from: the sender transmits globally.
            return list(receivers)
        range_m = sender.transmit_range_m
        if range_m is None:
            return list(receivers)
        key = id(receivers)
        view = self._views.get(key)
        if view is None or view.receivers is not receivers or not view.current():
            view = _ChannelView(topology, receivers)
            self._views[key] = view
        return view.reached(sender, range_m)
