"""Electronic control units: admission control, finite processing, routing.

An :class:`Ecu` is the protection point of the simulated SUT.  Incoming
messages pass the ECU's :class:`~repro.sim.controls.base.ControlPipeline`
(the deployed security controls), then queue for *finite* processing
capacity -- which is what makes flooding a real attack: an overloaded ECU
serves legitimate messages late or drops them once its queue is full
(AD20: "Attacker tries to overload the ECU by packet flooding", expected
effect "Shutdown of service").

The :class:`Gateway` subclass routes admitted messages between networks
(e.g. Bluetooth requests forwarded onto the CAN bus), reproducing the
UC II architecture where "flooding of the CAN bus, by forwarded Bluetooth
request" reduces availability.
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.controls.base import ControlPipeline
from repro.sim.events import EventBus
from repro.sim.network import Message


class Ecu:
    """A control unit with admission control and finite processing rate.

    Attributes:
        name: ECU name ("OBU", "ECU_GW").
        pipeline: The security-control stack guarding this ECU.
        service_time_ms: Processing time per admitted message.
        queue_capacity: Max messages awaiting processing; ``None`` means
            unbounded.  Arrivals beyond capacity are dropped and published
            as ``ecu.<name>.overload`` events.
        shutdown_after_overloads: After this many dropped-on-overload
            arrivals, the ECU gives up and shuts down -- AD20's success
            criterion, "Shutdown of service".  ``None`` disables the
            failure mode (the ECU degrades but never dies).

    ``__slots__``-based: ``receive`` runs once per receiver per
    delivery, the hottest fan-out in the simulator.  Subclasses without
    their own ``__slots__`` still work (they carry a ``__dict__``).
    """

    __slots__ = (
        "name",
        "service_time_ms",
        "queue_capacity",
        "shutdown_after_overloads",
        "pipeline",
        "_clock",
        "_bus",
        "_busy_until",
        "_queued",
        "_processed",
        "_rejected",
        "_overloaded",
        "_shut_down",
        "_topic_processed",
        "_topic_overload",
        "_topic_shutdown",
        "_processed_probe",
        "_admit",
    )

    def __init__(
        self,
        name: str,
        clock: SimClock,
        bus: EventBus,
        service_time_ms: float = 0.5,
        queue_capacity: int | None = None,
        shutdown_after_overloads: int | None = None,
    ) -> None:
        if service_time_ms <= 0:
            raise SimulationError("service time must be positive")
        if queue_capacity is not None and queue_capacity < 1:
            raise SimulationError("queue capacity must be >= 1")
        if shutdown_after_overloads is not None and shutdown_after_overloads < 1:
            raise SimulationError("shutdown threshold must be >= 1")
        self.name = name
        self.service_time_ms = service_time_ms
        self.queue_capacity = queue_capacity
        self.shutdown_after_overloads = shutdown_after_overloads
        self.pipeline = ControlPipeline(name, clock, bus)
        self._clock = clock
        self._bus = bus
        self._busy_until = 0.0
        self._queued = 0
        self._processed = 0
        self._rejected = 0
        self._overloaded = 0
        self._shut_down = False
        # Topic strings built once; per-message f-strings rehash per publish.
        self._topic_processed = f"ecu.{name}.processed"
        self._topic_overload = f"ecu.{name}.overload"
        self._topic_shutdown = f"ecu.{name}.shutdown"
        # One processed event per admitted message: the probe keeps the
        # unobserved case (counts mode, no subscriber) at counter cost.
        self._processed_probe = bus.probe(self._topic_processed)
        # Bound once: receive() runs once per receiver per delivery.
        self._admit = self.pipeline.admit

    # -- Receiver protocol -------------------------------------------------

    def receive(self, message: Message) -> None:
        """Admission control, then enqueue for processing."""
        if self._shut_down:
            return
        if not self._admit(message).allowed:
            self._rejected += 1
            return
        if (
            self.queue_capacity is not None
            and self._queued >= self.queue_capacity
        ):
            self._overloaded += 1
            self._bus.publish(
                self._clock.now,
                self._topic_overload,
                self.name,
                kind=message.kind,
                sender=message.sender,
                queued=self._queued,
            )
            if (
                self.shutdown_after_overloads is not None
                and self._overloaded >= self.shutdown_after_overloads
            ):
                self._shut_down = True
                self._bus.publish(
                    self._clock.now,
                    self._topic_shutdown,
                    self.name,
                    overloads=self._overloaded,
                )
            return
        start = max(self._clock.now, self._busy_until)
        finish = start + self.service_time_ms
        self._busy_until = finish
        self._queued += 1
        self._clock.post(finish, functools.partial(self._process, message))

    def _process(self, message: Message) -> None:
        self._queued -= 1
        self._processed += 1
        if self._processed_probe.active:
            self._bus.publish(
                self._clock.now,
                self._topic_processed,
                self.name,
                kind=message.kind,
                sender=message.sender,
            )
        else:
            # Inlined EventBus.tally: one increment per processed message.
            topic_counts = self._processed_probe.counts
            topic = self._topic_processed
            try:
                topic_counts[topic] += 1
            except KeyError:
                topic_counts[topic] = 1
        self.handle(message)

    # -- subclass API --------------------------------------------------------

    def handle(self, message: Message) -> None:
        """Application behaviour; subclasses override."""

    # -- metrics --------------------------------------------------------------

    @property
    def backlog_ms(self) -> float:
        """How far behind real time the ECU's processing currently is."""
        return max(0.0, self._busy_until - self._clock.now)

    @property
    def is_shut_down(self) -> bool:
        """True once sustained overload killed the service (AD20 success)."""
        return self._shut_down

    @property
    def stats(self) -> dict[str, float]:
        """Processing statistics."""
        return {
            "processed": self._processed,
            "rejected": self._rejected,
            "overloaded": self._overloaded,
            "queued": self._queued,
            "backlog_ms": self.backlog_ms,
            "shut_down": self._shut_down,
        }


#: A route transform: takes the admitted message, returns the message to
#: forward (e.g. wrap a BLE command into a CAN frame).
RouteTransform = Callable[[Message], Message]


class Gateway(Ecu):
    """An ECU that routes admitted messages onto other networks.

    Routes are registered per message kind; each admitted message of a
    routed kind is transformed and sent on the target network after
    processing.  Unrouted kinds are simply processed (and countable).
    """

    __slots__ = ("_routes", "_forwarded")

    def __init__(
        self,
        name: str,
        clock: SimClock,
        bus: EventBus,
        service_time_ms: float = 0.5,
        queue_capacity: int | None = None,
        shutdown_after_overloads: int | None = None,
    ) -> None:
        super().__init__(
            name,
            clock,
            bus,
            service_time_ms=service_time_ms,
            queue_capacity=queue_capacity,
            shutdown_after_overloads=shutdown_after_overloads,
        )
        self._routes: dict[str, tuple[object, RouteTransform]] = {}
        self._forwarded = 0

    def add_route(
        self,
        kind: str,
        target,
        transform: RouteTransform | None = None,
    ) -> None:
        """Route messages of ``kind`` to ``target`` (any object with send()).

        ``transform`` defaults to identity.
        """
        if kind in self._routes:
            raise SimulationError(
                f"gateway {self.name}: route for {kind!r} already exists"
            )
        self._routes[kind] = (target, transform or (lambda message: message))

    def handle(self, message: Message) -> None:
        route = self._routes.get(message.kind)
        if route is None:
            return
        target, transform = route
        forwarded = transform(message)
        self._forwarded += 1
        self._bus.publish(
            self._clock.now,
            f"ecu.{self.name}.forwarded",
            self.name,
            kind=message.kind,
            forwarded_kind=forwarded.kind,
        )
        target.send(forwarded)

    @property
    def forwarded(self) -> int:
        """Number of messages routed onward."""
        return self._forwarded


__all__ = [
    "Ecu",
    "Gateway",
]
