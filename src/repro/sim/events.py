"""Topic-based event bus and simulation trace recording.

Components publish domain events ("handover.requested", "door.opened",
"control.detection") on a shared bus; the safety monitor, test oracles and
reports subscribe or read the recorded trace afterwards.  The full ordered
trace doubles as the simulation's test report substrate ("how the test
report is gathered", §III-C).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

Subscriber = Callable[["SimEvent"], None]


@dataclasses.dataclass(frozen=True)
class SimEvent:
    """One recorded domain event.

    Attributes:
        time: Simulation time (ms) at which the event was published.
        topic: Dotted topic, e.g. ``"v2x.warning_received"``.
        source: Publishing component name.
        data: Topic-specific payload (small, JSON-compatible values).
    """

    time: float
    topic: str
    source: str
    data: dict[str, Any] = dataclasses.field(default_factory=dict)


class EventBus:
    """Publish/subscribe bus with a complete ordered trace.

    Subscriptions match exact topics or prefixes: subscribing to
    ``"v2x"`` receives ``"v2x.warning_received"`` and every other
    ``v2x.*`` topic; subscribing to ``""`` receives everything.
    """

    def __init__(self) -> None:
        self._subscribers: list[tuple[str, Subscriber]] = []
        self._trace: list[SimEvent] = []

    def subscribe(self, topic_prefix: str, subscriber: Subscriber) -> None:
        """Register ``subscriber`` for all topics under ``topic_prefix``."""
        self._subscribers.append((topic_prefix, subscriber))

    def publish(
        self,
        time: float,
        topic: str,
        source: str,
        **data: Any,
    ) -> SimEvent:
        """Record and dispatch an event; returns the recorded event."""
        event = SimEvent(time=time, topic=topic, source=source, data=data)
        self._trace.append(event)
        for prefix, subscriber in self._subscribers:
            if _matches(prefix, topic):
                subscriber(event)
        return event

    @property
    def trace(self) -> tuple[SimEvent, ...]:
        """The complete event trace in publication order."""
        return tuple(self._trace)

    def events(self, topic_prefix: str) -> tuple[SimEvent, ...]:
        """Recorded events under a topic prefix."""
        return tuple(
            event
            for event in self._trace
            if _matches(topic_prefix, event.topic)
        )

    def count(self, topic_prefix: str) -> int:
        """Number of recorded events under a topic prefix."""
        return len(self.events(topic_prefix))

    def last(self, topic_prefix: str) -> SimEvent | None:
        """Most recent event under a topic prefix, or None."""
        for event in reversed(self._trace):
            if _matches(topic_prefix, event.topic):
                return event
        return None

    def clear(self) -> None:
        """Drop the recorded trace (subscriptions stay)."""
        self._trace.clear()


def _matches(prefix: str, topic: str) -> bool:
    """Prefix match on dotted topics ('' matches everything)."""
    if not prefix:
        return True
    return topic == prefix or topic.startswith(prefix + ".")


__all__ = [
    "EventBus",
    "SimEvent",
]
