"""Topic-based event bus and simulation trace recording.

Components publish domain events ("handover.requested", "door.opened",
"control.detection") on a shared bus; the safety monitor, test oracles and
reports subscribe or read the recorded trace afterwards.  The full ordered
trace doubles as the simulation's test report substrate ("how the test
report is gathered", §III-C).

The bus is on the hot path of every campaign variant, so its internals
are index-based rather than scan-based:

* **Dispatch** walks a topic-segment index (prefix -> subscribers)
  instead of string-matching every subscriber on every publish.  When a
  topic matches several subscription prefixes, the matched subscribers
  are merged back into subscription order, so dispatch order is
  bit-identical to the historical "scan the subscription list" loop.
* **Counting** maintains a running counter per published *topic*
  (one increment per publish); :meth:`EventBus.count` answers from
  those counters -- O(distinct topics) per query instead of a scan of
  the whole trace (bench oracles call it in loops, and the trace can
  be arbitrarily longer than the topic set).
* **Trace reads** (:attr:`EventBus.trace`, :meth:`EventBus.events`)
  return cached immutable tuples, invalidated on publish/clear, instead
  of materialising a fresh copy of the whole trace on every access.

Trace modes
-----------

A bus records in one of two modes:

* ``"full"`` (the default) -- every event is retained, exactly the
  historical behaviour.
* ``"counts"`` -- the kernel-level lean mode for campaign workers that
  only read verdicts: per-prefix counters (and subscriber dispatch) work
  as usual, but events are only retained when they fall under a prefix
  registered via :meth:`EventBus.retain`.  Scenario assemblies register
  the prefixes their safety-goal checks read *at construction time*, so
  verdict-relevant reads see the identical event sequence in both modes.
  Reading :meth:`events`/:meth:`last`/:attr:`trace` outside the retained
  set raises :class:`~repro.errors.SimulationError` -- an oracle can
  never silently observe an empty trace where the full mode had events.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.errors import SimulationError

Subscriber = Callable[["SimEvent"], None]

#: Recognised trace modes.
TRACE_FULL = "full"
TRACE_COUNTS = "counts"
TRACE_MODES = (TRACE_FULL, TRACE_COUNTS)


@dataclasses.dataclass(frozen=True)
class SimEvent:
    """One recorded domain event.

    Attributes:
        time: Simulation time (ms) at which the event was published.
        topic: Dotted topic, e.g. ``"v2x.warning_received"``.
        source: Publishing component name.
        data: Topic-specific payload (small, JSON-compatible values).
    """

    time: float
    topic: str
    source: str
    data: dict[str, Any] = dataclasses.field(default_factory=dict)


def _segment_prefixes(topic: str) -> tuple[str, ...]:
    """Every prefix of ``topic`` on a segment boundary, '' included.

    ``"a.b.c"`` -> ``("", "a", "a.b", "a.b.c")``.  These are exactly the
    subscription/count prefixes the topic matches under :func:`_matches`.
    """
    prefixes = [""]
    end = topic.find(".")
    while end != -1:
        prefixes.append(topic[:end])
        end = topic.find(".", end + 1)
    if topic:
        prefixes.append(topic)
    return tuple(prefixes)


class EventBus:
    """Publish/subscribe bus with a complete ordered trace.

    Subscriptions match exact topics or prefixes: subscribing to
    ``"v2x"`` receives ``"v2x.warning_received"`` and every other
    ``v2x.*`` topic; subscribing to ``""`` receives everything.

    Args:
        mode: Trace retention mode, ``"full"`` or ``"counts"`` (see the
            module docstring).  Dispatch and counting are identical in
            both modes; only event *retention* differs.
    """

    def __init__(self, mode: str = TRACE_FULL) -> None:
        if mode not in TRACE_MODES:
            raise SimulationError(
                f"unknown trace mode {mode!r} (choose one of {TRACE_MODES})"
            )
        self._mode = mode
        # prefix -> [(subscription order, subscriber), ...]
        self._subscribers: dict[str, list[tuple[int, Subscriber]]] = {}
        self._subscription_count = 0
        # Bumped with every subscribe()/retain(): TopicProbe caches its
        # "does anyone want this topic" answer against it.
        self.plan_epoch = 0
        self._trace: list[SimEvent] = []
        self._topic_counts: dict[str, int] = {}
        self._retained: frozenset[str] = frozenset()
        # topic -> its segment prefixes (topics repeat; split once).
        self._prefixes_of: dict[str, tuple[str, ...]] = {}
        # topic -> (ordered subscribers, retained?) -- the publish fast
        # path; invalidated wholesale on subscribe()/retain().
        self._plans: dict[str, tuple[tuple[Subscriber, ...], bool]] = {}
        # Issued probes, refreshed eagerly whenever the plan epoch moves
        # (rare) so their ``active`` flag is a plain attribute read on
        # the per-message hot paths (frequent).
        self._probes: dict[str, "TopicProbe"] = {}
        # Cached immutable views, invalidated on publish/clear.
        self._events_cache: dict[str, tuple[SimEvent, ...]] = {}
        self._trace_cache: tuple[SimEvent, ...] | None = None

    @property
    def mode(self) -> str:
        """The bus's trace retention mode (``"full"`` or ``"counts"``)."""
        return self._mode

    def subscribe(self, topic_prefix: str, subscriber: Subscriber) -> None:
        """Register ``subscriber`` for all topics under ``topic_prefix``."""
        self._subscribers.setdefault(topic_prefix, []).append(
            (self._subscription_count, subscriber)
        )
        self._subscription_count += 1
        self._plans.clear()
        self.plan_epoch += 1
        self._refresh_probes()

    def retain(self, topic_prefix: str) -> None:
        """Keep events under ``topic_prefix`` in the trace in every mode.

        In ``"counts"`` mode only retained prefixes are recorded; in
        ``"full"`` mode this is a no-op (everything is retained anyway).
        Like subscriptions, retention registrations survive
        :meth:`clear`.  Register *before* the run starts: events
        published before the registration are not retroactively kept.
        """
        if topic_prefix not in self._retained:
            self._retained = self._retained | {topic_prefix}
            self._plans.clear()
            self.plan_epoch += 1
            self._refresh_probes()

    def publish(
        self,
        time: float,
        topic: str,
        source: str,
        **data: Any,
    ) -> SimEvent | None:
        """Record and dispatch an event.

        Returns the recorded :class:`SimEvent` -- or ``None`` in
        ``"counts"`` mode when the event was neither retained nor
        dispatched to any subscriber (nothing needed the object, so it is
        never allocated; the per-prefix counters still tick).
        """
        counts = self._topic_counts
        try:
            counts[topic] += 1
        except KeyError:
            counts[topic] = 1
        plan = self._plans.get(topic)
        if plan is None:
            plan = self._build_plan(topic)
        subscribers, retained = plan
        if not retained and not subscribers:
            return None

        event = SimEvent(time=time, topic=topic, source=source, data=data)
        if retained:
            self._trace.append(event)
            if self._events_cache:
                self._events_cache.clear()
            self._trace_cache = None
        for subscriber in subscribers:
            subscriber(event)
        return event

    def tally(self, time: float, topic: str, source: str) -> None:
        """Count a publication that nothing would observe.

        Equivalent to :meth:`publish` for a topic :meth:`wants` answered
        ``False`` for: the per-topic counter ticks, no event is
        allocated.  Hot publishers pair it with a :class:`TopicProbe`
        so the per-message cost is one dict increment instead of a
        kwargs build plus plan lookup.  (``time``/``source`` are
        accepted so call sites stay shaped like ``publish``.)
        """
        counts = self._topic_counts
        try:
            counts[topic] += 1
        except KeyError:
            counts[topic] = 1

    def wants(self, topic: str) -> bool:
        """True when publishing ``topic`` would retain or dispatch.

        The answer is only stable while :attr:`plan_epoch` stands still;
        :class:`TopicProbe` keeps a live copy for hot paths.
        """
        plan = self._plans.get(topic)
        if plan is None:
            plan = self._build_plan(topic)
        subscribers, retained = plan
        return retained or bool(subscribers)

    def probe(self, topic: str) -> "TopicProbe":
        """A cached :meth:`wants` probe for one hot-path topic."""
        cached = self._probes.get(topic)
        if cached is None:
            cached = self._probes[topic] = TopicProbe(self, topic)
        return cached

    def _refresh_probes(self) -> None:
        """Re-answer every issued probe after a plan-epoch move."""
        for probe in self._probes.values():
            probe.active = self.wants(probe.topic)

    def _build_plan(
        self, topic: str
    ) -> tuple[tuple[Subscriber, ...], bool]:
        """Resolve (and cache) a topic's dispatch list + retention bit.

        The subscriber index is walked once per distinct topic; matched
        subscribers are merged back into subscription order, so dispatch
        is bit-identical to the historical "scan the subscription list"
        loop.
        """
        prefixes = self._prefixes_of.get(topic)
        if prefixes is None:
            prefixes = _segment_prefixes(topic)
            self._prefixes_of[topic] = prefixes
        matched = [
            pair
            for prefix in prefixes
            if prefix in self._subscribers
            for pair in self._subscribers[prefix]
        ]
        matched.sort()
        retained = self._mode == TRACE_FULL or not self._retained.isdisjoint(
            prefixes
        )
        plan = (tuple(subscriber for _order, subscriber in matched), retained)
        self._plans[topic] = plan
        return plan

    # -- trace reads ----------------------------------------------------------

    def _require_retained(self, topic_prefix: str) -> None:
        """In counts mode, reject reads outside the retained set."""
        if self._mode == TRACE_FULL:
            return
        for retained in self._retained:
            if not retained or topic_prefix == retained or (
                topic_prefix.startswith(retained + ".")
            ):
                return
        raise SimulationError(
            f"trace mode 'counts' did not retain events under "
            f"{topic_prefix!r}; register bus.retain({topic_prefix!r}) "
            "before the run (or use trace mode 'full')"
        )

    @property
    def trace(self) -> tuple[SimEvent, ...]:
        """The complete event trace in publication order (cached view).

        Raises:
            SimulationError: in ``"counts"`` mode, where the complete
                trace is -- by design -- not retained.
        """
        if self._mode != TRACE_FULL:
            raise SimulationError(
                "trace mode 'counts' does not retain the complete trace; "
                "use trace mode 'full' (or read retained prefixes via "
                "events())"
            )
        if self._trace_cache is None:
            self._trace_cache = tuple(self._trace)
        return self._trace_cache

    def events(self, topic_prefix: str) -> tuple[SimEvent, ...]:
        """Recorded events under a topic prefix (cached immutable view).

        Raises:
            SimulationError: in ``"counts"`` mode for a prefix outside
                the retained set (the events were not recorded and an
                empty answer would be a lie).
        """
        cached = self._events_cache.get(topic_prefix)
        if cached is not None:
            return cached
        self._require_retained(topic_prefix)
        result = tuple(
            event
            for event in self._trace
            if _matches(topic_prefix, event.topic)
        )
        self._events_cache[topic_prefix] = result
        return result

    def count(self, topic_prefix: str) -> int:
        """Number of events published under a topic prefix.

        Served from the running per-topic counters in every mode -- no
        trace scan, and independent of trace retention.  Publishing
        pays one counter increment; a count query sums the handful of
        distinct topics matching the prefix.
        """
        counts = self._topic_counts
        exact = counts.get(topic_prefix, 0)
        if not topic_prefix:
            return sum(counts.values())
        prefixes_of = self._prefixes_of
        return exact + sum(
            tally
            for topic, tally in counts.items()
            if topic != topic_prefix
            and topic_prefix
            in (prefixes_of.get(topic) or _segment_prefixes(topic))
        )

    def last(self, topic_prefix: str) -> SimEvent | None:
        """Most recent event under a topic prefix, or None.

        Raises:
            SimulationError: in ``"counts"`` mode for a prefix outside
                the retained set.
        """
        self._require_retained(topic_prefix)
        for event in reversed(self._trace):
            if _matches(topic_prefix, event.topic):
                return event
        return None

    def clear(self) -> None:
        """Drop the recorded trace and counters (subscriptions and
        retention registrations stay)."""
        self._trace.clear()
        self._topic_counts.clear()
        self._events_cache.clear()
        self._trace_cache = None


def _matches(prefix: str, topic: str) -> bool:
    """Prefix match on dotted topics ('' matches everything)."""
    if not prefix:
        return True
    return topic == prefix or topic.startswith(prefix + ".")


class TopicProbe:
    """A per-topic "would anyone observe this publish?" cache.

    Hot publishers (per-denial detection logs, per-delivery channel
    events) emit hundreds of thousands of events per campaign variant
    that -- in ``"counts"`` mode with no subscriber -- only ever tick a
    counter.  A probe answers :meth:`EventBus.wants` once per
    subscription epoch, so those call sites degrade to
    :meth:`EventBus.tally` (one dict increment) instead of building
    kwargs for an event nobody would see.  Dispatch semantics are
    untouched: the moment a subscriber or retention prefix appears, the
    bus refreshes every issued probe, so :attr:`active` is always
    current and hot paths can branch on a plain attribute read.
    """

    __slots__ = ("bus", "topic", "active", "counts")

    def __init__(self, bus: EventBus, topic: str) -> None:
        self.bus = bus
        self.topic = topic
        #: Live "would a publish be observed" answer, maintained by the
        #: bus on every subscribe()/retain() (read-only for callers).
        self.active = bus.wants(topic)
        #: The bus's live per-topic counter map: when :attr:`active` is
        #: False the call site increments ``counts[topic]`` directly --
        #: the whole of :meth:`EventBus.tally` without the call.
        self.counts = bus._topic_counts
        bus._probes.setdefault(topic, self)

    def wants(self) -> bool:
        """The probe's current answer (an alias for :attr:`active`)."""
        return self.active


__all__ = [
    "EventBus",
    "SimEvent",
    "TRACE_COUNTS",
    "TRACE_FULL",
    "TRACE_MODES",
    "TopicProbe",
]
