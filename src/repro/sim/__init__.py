"""The automotive simulation substrate.

The paper derives attack descriptions for later execution on real test
stands; this package provides the simulated equivalent so the derived
attacks can actually run: a deterministic discrete-event kernel
(:mod:`~repro.sim.clock`), channels and messages with honest
authentication (:mod:`~repro.sim.network`, :mod:`~repro.sim.crypto`),
ECUs with admission control and finite capacity (:mod:`~repro.sim.ecu`),
a CAN bus with arbitration and limited bandwidth (:mod:`~repro.sim.can`),
V2X and BLE endpoints (:mod:`~repro.sim.v2x`, :mod:`~repro.sim.ble`),
deployable security controls (:mod:`~repro.sim.controls`), attack
injectors (:mod:`~repro.sim.attacks`), a safety monitor with FTTI
deadlines (:mod:`~repro.sim.monitor`), and the two use-case scenario
assemblies (:mod:`~repro.sim.scenarios`).
"""

from repro.sim.ble import (
    AccessEcu,
    DoorLock,
    DoorLockEcu,
    DoorState,
    Smartphone,
)
from repro.sim.can import CanBus, make_frame
from repro.sim.clock import EventHandle, SimClock
from repro.sim.crypto import ChallengeResponse, KeyStore
from repro.sim.ecu import Ecu, Gateway
from repro.sim.events import EventBus, SimEvent
from repro.sim.kernel import KernelScenario, SimKernel
from repro.sim.monitor import SafetyMonitor, Violation
from repro.sim.network import Channel, Medium, Message
from repro.sim.scenarios import (
    CONTROL_AUTH,
    CONTROL_COUNTER,
    CONTROL_FLOOD,
    CONTROL_LOCATION,
    CONTROL_RANGE,
    CONTROL_REPLAY,
    CONTROL_WHITELIST,
    UC1_ALL_CONTROLS,
    UC2_ALL_CONTROLS,
    ConstructionSiteScenario,
    KeylessEntryScenario,
    ScenarioResult,
)
from repro.sim.v2x import OnBoardUnit, RoadsideUnit
from repro.sim.vehicle import Driver, DrivingMode, Vehicle
from repro.sim.world import World, Zone

__all__ = [
    "AccessEcu",
    "CONTROL_AUTH",
    "CONTROL_COUNTER",
    "CONTROL_FLOOD",
    "CONTROL_LOCATION",
    "CONTROL_RANGE",
    "CONTROL_REPLAY",
    "CONTROL_WHITELIST",
    "CanBus",
    "Channel",
    "ChallengeResponse",
    "ConstructionSiteScenario",
    "DoorLock",
    "DoorLockEcu",
    "DoorState",
    "Driver",
    "DrivingMode",
    "Ecu",
    "EventBus",
    "EventHandle",
    "Gateway",
    "KernelScenario",
    "KeyStore",
    "KeylessEntryScenario",
    "Medium",
    "Message",
    "OnBoardUnit",
    "RoadsideUnit",
    "SafetyMonitor",
    "ScenarioResult",
    "SimClock",
    "SimEvent",
    "SimKernel",
    "Smartphone",
    "UC1_ALL_CONTROLS",
    "UC2_ALL_CONTROLS",
    "Vehicle",
    "Violation",
    "World",
    "Zone",
    "make_frame",
]
