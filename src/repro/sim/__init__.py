"""The automotive simulation substrate.

The paper derives attack descriptions for later execution on real test
stands; this package provides the simulated equivalent so the derived
attacks can actually run: a deterministic discrete-event kernel
(:mod:`~repro.sim.clock`), channels and messages with honest
authentication (:mod:`~repro.sim.network`, :mod:`~repro.sim.crypto`),
a spatial traffic topology with mobile actors and range-gated radio
(:mod:`~repro.sim.topology`, :mod:`~repro.sim.world`), ECUs with
admission control and finite capacity (:mod:`~repro.sim.ecu`),
a CAN bus with arbitration and limited bandwidth (:mod:`~repro.sim.can`),
V2X (RSU<->OBU and V2V relaying) and BLE endpoints
(:mod:`~repro.sim.v2x`, :mod:`~repro.sim.ble`), deployable security
controls (:mod:`~repro.sim.controls`), attack injectors
(:mod:`~repro.sim.attacks`), a safety monitor with FTTI deadlines
(:mod:`~repro.sim.monitor`), and the use-case scenario assemblies --
single-vehicle and fleet (:mod:`~repro.sim.scenarios`).

The package re-exports the union of its submodules' ``__all__`` lists;
the export-contract tests hold this surface complete.
"""

from repro.sim.attacks import (
    AttackInjector,
    EavesdropAttack,
    FloodingAttack,
    JammingAttack,
    KeyForgeryAttack,
    ReplayAttack,
    SpoofingAttack,
    TamperingAttack,
)
from repro.sim.ble import (
    AccessEcu,
    CAN_ID_DIAG,
    CAN_ID_DOOR_COMMAND,
    DoorLock,
    DoorLockEcu,
    DoorState,
    KIND_CLOSE,
    KIND_DIAG,
    KIND_OPEN,
    Smartphone,
)
from repro.sim.can import CanBus, make_frame
from repro.sim.clock import EventHandle, SimClock
from repro.sim.controls import (
    ControlPipeline,
    Decision,
    DetectionRecord,
    FloodingDetector,
    IdWhitelist,
    LocationConsistencyCheck,
    MessageCounterCheck,
    PseudonymProvider,
    ReplayGuard,
    SecurityControl,
    SenderAuthentication,
    ValueRangeCheck,
    linkability,
)
from repro.sim.crypto import (
    ChallengeResponse,
    KeyStore,
    canonical_payload,
    compute_mac,
    derive_key,
    shared_mac_memo,
    verify_mac,
)
from repro.sim.ecu import Ecu, Gateway
from repro.sim.events import (
    TRACE_COUNTS,
    TRACE_FULL,
    TRACE_MODES,
    EventBus,
    SimEvent,
    TopicProbe,
)
from repro.sim.kernel import KernelScenario, ScenarioResult, SimKernel
from repro.sim.monitor import InvariantCheck, SafetyMonitor, Violation
from repro.sim.network import (
    Channel,
    InfiniteRange,
    Medium,
    Message,
    PropagationModel,
    Receiver,
    shared_message_memo,
)
from repro.sim.scenarios import (
    CONTROL_AUTH,
    CONTROL_COUNTER,
    CONTROL_FLOOD,
    CONTROL_LOCATION,
    CONTROL_RANGE,
    CONTROL_REPLAY,
    CONTROL_WHITELIST,
    ConstructionSiteScenario,
    FleetConstructionSiteScenario,
    KeylessEntryScenario,
    UC1_ALL_CONTROLS,
    UC2_ALL_CONTROLS,
)
from repro.sim.topology import (
    NO_NUMPY_ENV,
    Actor,
    CompiledTickPlan,
    ConstantSpeedMobility,
    FollowLeaderMobility,
    MobilityModel,
    RangePropagation,
    SpatialIndex,
    StationaryMobility,
    Topology,
    numpy_enabled,
    shared_tick_plans,
)
from repro.sim.v2x import (
    KIND_HAZARD_WARNING,
    KIND_ROAD_WORKS,
    KIND_SPEED_LIMIT,
    KIND_V2V_RELAY,
    OnBoardUnit,
    RoadsideUnit,
    V2VRelay,
)
from repro.sim.vehicle import Driver, DrivingMode, Vehicle
from repro.sim.world import ClampedPosition, World, Zone

__all__ = [
    "AccessEcu",
    "Actor",
    "AttackInjector",
    "CAN_ID_DIAG",
    "CAN_ID_DOOR_COMMAND",
    "CONTROL_AUTH",
    "CONTROL_COUNTER",
    "CONTROL_FLOOD",
    "CONTROL_LOCATION",
    "CONTROL_RANGE",
    "CONTROL_REPLAY",
    "CONTROL_WHITELIST",
    "CanBus",
    "ChallengeResponse",
    "Channel",
    "ClampedPosition",
    "CompiledTickPlan",
    "ConstantSpeedMobility",
    "ConstructionSiteScenario",
    "ControlPipeline",
    "Decision",
    "DetectionRecord",
    "DoorLock",
    "DoorLockEcu",
    "DoorState",
    "Driver",
    "DrivingMode",
    "EavesdropAttack",
    "Ecu",
    "EventBus",
    "EventHandle",
    "FleetConstructionSiteScenario",
    "FloodingAttack",
    "FloodingDetector",
    "FollowLeaderMobility",
    "Gateway",
    "IdWhitelist",
    "InfiniteRange",
    "InvariantCheck",
    "JammingAttack",
    "KIND_CLOSE",
    "KIND_DIAG",
    "KIND_HAZARD_WARNING",
    "KIND_OPEN",
    "KIND_ROAD_WORKS",
    "KIND_SPEED_LIMIT",
    "KIND_V2V_RELAY",
    "KernelScenario",
    "KeyForgeryAttack",
    "KeyStore",
    "KeylessEntryScenario",
    "LocationConsistencyCheck",
    "Medium",
    "Message",
    "MessageCounterCheck",
    "MobilityModel",
    "NO_NUMPY_ENV",
    "OnBoardUnit",
    "PropagationModel",
    "PseudonymProvider",
    "RangePropagation",
    "Receiver",
    "ReplayAttack",
    "ReplayGuard",
    "RoadsideUnit",
    "SafetyMonitor",
    "ScenarioResult",
    "SecurityControl",
    "SenderAuthentication",
    "SimClock",
    "SimEvent",
    "TRACE_COUNTS",
    "TRACE_FULL",
    "TRACE_MODES",
    "SimKernel",
    "Smartphone",
    "SpatialIndex",
    "SpoofingAttack",
    "StationaryMobility",
    "TamperingAttack",
    "TopicProbe",
    "Topology",
    "UC1_ALL_CONTROLS",
    "UC2_ALL_CONTROLS",
    "V2VRelay",
    "ValueRangeCheck",
    "Vehicle",
    "Violation",
    "World",
    "Zone",
    "canonical_payload",
    "compute_mac",
    "derive_key",
    "linkability",
    "make_frame",
    "numpy_enabled",
    "shared_mac_memo",
    "shared_message_memo",
    "shared_tick_plans",
    "verify_mac",
]
