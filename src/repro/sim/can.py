"""CAN bus simulation: priority arbitration and finite bandwidth.

The paper's conclusion stresses that automotive testing must respect "the
characteristics of busses as limited bandwidth".  The CAN model captures
the two properties the use-case attacks depend on:

* **finite bandwidth** -- frames serialise over the bus one at a time at
  a fixed frame rate; excess traffic queues,
* **priority arbitration** -- when several frames are pending, the lowest
  CAN identifier wins arbitration; a flood of high-priority (low-id)
  frames therefore starves lower-priority traffic entirely, which is how
  "flooding of the CAN bus ... reduc[es] availability of the function"
  (UC II, SG03).

Frames are ordinary :class:`~repro.sim.network.Message` objects with an
integer ``can_id`` in the payload, so controls and attack injectors work
unchanged on the bus.
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventBus
from repro.sim.network import Message, Receiver


class CanBus:
    """A single CAN segment.

    Attributes:
        name: Bus name ("body-can").
        frame_time_ms: Serialisation time of one frame (1/bandwidth).
        queue_capacity: Pending-frame limit of the controllers' combined
            transmit buffers; arrivals beyond it are lost (bus-off-like
            degradation under flood).
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        bus: EventBus,
        frame_time_ms: float = 0.5,
        queue_capacity: int = 256,
    ) -> None:
        if frame_time_ms <= 0:
            raise SimulationError("frame time must be positive")
        if queue_capacity < 1:
            raise SimulationError("queue capacity must be >= 1")
        self.name = name
        self.frame_time_ms = frame_time_ms
        self.queue_capacity = queue_capacity
        self._clock = clock
        self._bus = bus
        self._receivers: list[Receiver] = []
        self._taps: list = []
        self._pending: list[tuple[int, int, Message]] = []
        self._tiebreak = itertools.count()
        self._transmitting = False
        self._sent = 0
        self._delivered = 0
        self._lost = 0

    def attach(self, receiver: Receiver) -> None:
        """Attach a receiver; CAN is a broadcast bus."""
        self._receivers.append(receiver)

    def tap(self, listener) -> None:
        """Attach a passive tap; sees every frame at send time.

        A physical attacker clipped onto the bus observes arbitration
        losers and overflow-lost frames too, so taps fire before the
        queue-capacity check -- the same semantics as
        :meth:`repro.sim.network.Channel.tap`.
        """
        self._taps.append(listener)

    def send(self, frame: Message) -> None:
        """Queue a frame for arbitration.

        Raises:
            SimulationError: when the frame carries no integer ``can_id``.
        """
        can_id = frame.payload.get("can_id")
        if not isinstance(can_id, int) or isinstance(can_id, bool):
            raise SimulationError(
                f"CAN frame needs an integer payload['can_id'], got {can_id!r}"
            )
        if frame.timestamp < 0:
            frame = frame.with_timestamp(self._clock.now)
        self._sent += 1
        for listener in self._taps:
            listener(frame)
        if len(self._pending) >= self.queue_capacity:
            self._lost += 1
            self._bus.publish(
                self._clock.now,
                f"can.{self.name}.lost",
                self.name,
                can_id=can_id,
                sender=frame.sender,
            )
            return
        heapq.heappush(self._pending, (can_id, next(self._tiebreak), frame))
        if not self._transmitting:
            self._transmitting = True
            self._clock.schedule(self.frame_time_ms, self._complete_frame)

    def _complete_frame(self) -> None:
        """Arbitration winner finishes serialising; deliver and continue."""
        if not self._pending:
            self._transmitting = False
            return
        __, __, frame = heapq.heappop(self._pending)
        self._delivered += 1
        self._bus.publish(
            self._clock.now,
            f"can.{self.name}.frame",
            self.name,
            can_id=frame.payload["can_id"],
            kind=frame.kind,
            sender=frame.sender,
            latency_ms=self._clock.now - frame.timestamp,
        )
        for receiver in list(self._receivers):
            receiver.receive(frame)
        if self._pending:
            self._clock.schedule(self.frame_time_ms, self._complete_frame)
        else:
            self._transmitting = False

    @property
    def pending(self) -> int:
        """Frames currently waiting for arbitration."""
        return len(self._pending)

    @property
    def stats(self) -> dict[str, float]:
        """Traffic statistics (sent/delivered/lost/pending)."""
        return {
            "sent": self._sent,
            "delivered": self._delivered,
            "lost": self._lost,
            "pending": len(self._pending),
        }

    def delivery_latencies(self) -> tuple[float, ...]:
        """Per-frame bus latencies from the event trace (ms)."""
        return tuple(
            event.data["latency_ms"]
            for event in self._bus.events(f"can.{self.name}.frame")
        )


def make_frame(
    sender: str,
    can_id: int,
    kind: str = "can_frame",
    **payload,
) -> Message:
    """Convenience constructor for CAN frames.

    >>> frame = make_frame("door-ecu", 0x200, command="open")
    >>> frame.payload["can_id"]
    512
    """
    return Message(
        kind=kind,
        sender=sender,
        payload={"can_id": can_id, **payload},
    )


__all__ = [
    "CanBus",
    "make_frame",
]
