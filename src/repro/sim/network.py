"""Generic message and channel abstractions of the simulated vehicle.

Every communication path in the substrate -- V2X radio (RSU<->OBU), the
Bluetooth low-energy link of the keyless opener, and the CAN bus -- is a
:class:`Channel` carrying :class:`Message` objects.  Channels deliver with
latency through the shared :class:`~repro.sim.clock.SimClock`, support
taps (eavesdropping attackers see copies), jamming windows (messages are
dropped), and a finite bandwidth (excess traffic queues up, which is how
flooding degrades availability).

Messages carry the authentication surface the security controls inspect:
a claimed ``sender``, a monotonically increasing ``counter``, a send
``timestamp``, and an optional HMAC ``auth_tag`` over all of it.  Attacks
manipulate exactly these fields (spoof the sender, replay an old tag,
tamper the payload) and the controls' verdicts follow honestly from HMAC
verification and freshness checks.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import itertools
import threading
from collections import deque
from typing import (
    Any,
    Callable,
    ClassVar,
    Iterable,
    Protocol,
    runtime_checkable,
)

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.crypto import KeyStore, compute_mac, verify_mac
from repro.sim.events import EventBus

# Batch-scoped signed-message memo (see shared_message_memo).  Thread-
# local for the same reason as crypto._MEMO_STATE: thread-backend
# workers must never share mutable state.
_MESSAGE_MEMO_STATE = threading.local()
_MESSAGE_MEMO_LIMIT = 65536


@contextlib.contextmanager
def shared_message_memo():
    """Activate cross-variant reuse of honestly signed messages.

    Variants of one scenario family replay identical deterministic
    traffic: the same senders sign the same (kind, counter, timestamp,
    payload) tuples with the same derived keys -- a flooding attacker's
    whole schedule is repeated verbatim by its exposed/protected twin.
    Inside this scope :meth:`Message.create_signed` returns the *same
    frozen instance* for a repeated signature request, skipping payload
    canonicalisation, the HMAC, and dataclass construction.

    Sharing an instance is safe for the same reason broadcasts are: a
    ``Message`` is frozen, its payload is immutable by contract, and its
    per-instance caches memoise pure functions of those fields.  Scoped
    to :func:`repro.engine.batch.execute_batch` so unbatched runs keep
    their exact cost profile.  Nesting reuses the outer memo.
    """
    previous = getattr(_MESSAGE_MEMO_STATE, "memo", None)
    memo = {} if previous is None else previous
    _MESSAGE_MEMO_STATE.memo = memo
    try:
        yield memo
    finally:
        _MESSAGE_MEMO_STATE.memo = previous


def _signing_payload(
    kind: str,
    sender: str,
    counter: int,
    timestamp: float,
    payload: dict[str, Any],
) -> bytes:
    """The canonical signing bytes of a message, built directly.

    Byte-identical to ``canonical_payload({...})`` over the field dict
    the tag has always covered: the fixed field names sort as ``counter
    < kind < payload.* < sender < timestamp``, and prefixing payload
    keys with ``payload.`` preserves their relative ``sorted`` order, so
    the parts can be emitted in one pass without building and re-sorting
    the intermediate dict (signing sits on the per-send hot path).
    """
    parts = [f"counter={counter!r}", f"kind={kind!r}"]
    for key in sorted(payload):
        parts.append(f"payload.{key}={payload[key]!r}")
    parts.append(f"sender={sender!r}")
    parts.append(f"timestamp={timestamp!r}")
    return "|".join(parts).encode("utf-8")


@dataclasses.dataclass(frozen=True)
class Message:
    """One message on a channel.

    Attributes:
        kind: Message type, e.g. ``"road_works_warning"``,
            ``"open_command"``, ``"can_frame"``.
        sender: Claimed sender identity (spoofable).
        payload: Message body (JSON-compatible values).
        counter: Per-sender message counter (monotonic for honest senders).
        timestamp: Send time in ms (stamped by the channel when unset).
        auth_tag: HMAC over (kind, sender, counter, timestamp, payload);
            empty for unauthenticated messages.
        location: Logical origin location (used by plausibility checks on
            replayed warnings "from other locations").
        unique_id: Globally unique message id, assigned at construction.
    """

    kind: str
    sender: str
    payload: dict[str, Any]
    counter: int = 0
    timestamp: float = -1.0
    auth_tag: str = ""
    location: str = ""
    unique_id: int = dataclasses.field(
        default_factory=itertools.count(1).__next__
    )

    # Per-instance caches (class-attribute fallbacks; instances override
    # via object.__setattr__).  Safe because a Message is frozen and its
    # payload is treated as immutable everywhere (attacks copy before
    # mutating): the signing bytes and any MAC verdict over them can
    # never change for a given instance.  ``dataclasses.replace`` builds
    # a *new* instance from fields only, so tampered/re-signed copies --
    # which share ``unique_id`` and possibly ``auth_tag`` with their
    # original -- start with cold caches and re-verify honestly.  (That
    # is also why the memo is per-instance rather than keyed on
    # ``(key, unique_id, tag)`` globally: a tampered replica would hit a
    # stale global entry.)
    _signing_cache: ClassVar[bytes | None] = None
    _mac_cache: ClassVar[dict | None] = None

    def signing_bytes(self) -> bytes:
        """The byte string the auth tag covers (computed once per
        instance -- broadcasts hand the same frozen message to every
        receiver's authentication check)."""
        cached = self._signing_cache
        if cached is None:
            cached = _signing_payload(
                self.kind, self.sender, self.counter, self.timestamp,
                self.payload,
            )
            object.__setattr__(self, "_signing_cache", cached)
        return cached

    def mac_verified(self, key: bytes) -> bool:
        """Whether :attr:`auth_tag` verifies under ``key`` (memoised).

        One fleet broadcast reaches N on-board units, each running the
        same HMAC verification over the same bytes; the verdict is
        cached per ``key`` on the message instance so the work happens
        once per broadcast instead of once per receiver.
        """
        cache = self._mac_cache
        if cache is None:
            cache = {}
            object.__setattr__(self, "_mac_cache", cache)
        verdict = cache.get(key)
        if verdict is None:
            verdict = verify_mac(key, self.signing_bytes(), self.auth_tag)
            cache[key] = verdict
        return verdict

    def signed(self, keystore: KeyStore) -> "Message":
        """Return a copy carrying a valid auth tag for ``sender``.

        The sender must be provisioned in ``keystore``; honest components
        sign everything they send, attackers can only sign with identities
        they actually control.

        The copy's caches are pre-seeded: its signing bytes are the ones
        just signed (``auth_tag`` is not part of them), and the fresh tag
        verifies under ``key`` by construction (HMAC is deterministic),
        so receivers of an honestly signed message never redo the
        signer's work.  Any *other* key -- and any tampered replica,
        which is a new instance -- still verifies from scratch.
        """
        key = keystore.key_of(self.sender)
        signing = self.signing_bytes()
        # Direct construction (not dataclasses.replace): replace() walks
        # every field through getattr, and signing sits on the per-send
        # hot path.  unique_id is carried over, exactly as replace does.
        copy = Message(
            kind=self.kind,
            sender=self.sender,
            payload=self.payload,
            counter=self.counter,
            timestamp=self.timestamp,
            auth_tag=compute_mac(key, signing),
            location=self.location,
            unique_id=self.unique_id,
        )
        object.__setattr__(copy, "_signing_cache", signing)
        object.__setattr__(copy, "_mac_cache", {key: True})
        return copy

    @classmethod
    def create_signed(
        cls,
        keystore: KeyStore,
        *,
        kind: str,
        sender: str,
        payload: dict[str, Any],
        counter: int = 0,
        timestamp: float = -1.0,
        location: str = "",
    ) -> "Message":
        """Construct a message already carrying a valid auth tag.

        Equivalent to ``Message(...).signed(keystore)`` but with a single
        construction: the signing bytes are built from the raw fields,
        the tag is computed, and the one instance is created with both
        caches pre-seeded.  Consumes exactly one ``unique_id`` -- the
        same as the two-step spelling, whose ``signed()`` copy carries
        the throwaway original's id.

        Inside a :func:`shared_message_memo` scope, a repeated request
        (same fields, same key) returns the previously built instance.
        """
        key = keystore.key_of(sender)
        memo = getattr(_MESSAGE_MEMO_STATE, "memo", None)
        token = None
        if memo is not None:
            try:
                token = (
                    kind,
                    sender,
                    counter,
                    timestamp,
                    location,
                    key,
                    tuple(sorted(payload.items())),
                )
                cached = memo.get(token)
            except TypeError:  # unhashable payload value: not memoisable
                memo = None
            else:
                if cached is not None:
                    return cached
        signing = _signing_payload(kind, sender, counter, timestamp, payload)
        message = cls(
            kind=kind,
            sender=sender,
            payload=payload,
            counter=counter,
            timestamp=timestamp,
            auth_tag=compute_mac(key, signing),
            location=location,
        )
        object.__setattr__(message, "_signing_cache", signing)
        object.__setattr__(message, "_mac_cache", {key: True})
        if memo is not None and token is not None:
            if len(memo) >= _MESSAGE_MEMO_LIMIT:
                memo.clear()
            memo[token] = message
        return message

    def with_timestamp(self, time: float) -> "Message":
        """Copy with ``timestamp`` set (tag untouched -- stamp first, then sign)."""
        return dataclasses.replace(self, timestamp=time)


class Receiver(Protocol):
    """Anything that can be attached to a channel."""

    name: str

    def receive(self, message: Message) -> None:
        """Handle a delivered message."""


@runtime_checkable
class Medium(Protocol):
    """One communication medium of the simulated vehicle.

    Every concrete transport -- the broadcast :class:`Channel` (V2X radio,
    BLE link) and the :class:`~repro.sim.can.CanBus` -- satisfies this
    protocol, which is what lets the scenario engine's
    :class:`~repro.engine.kernel.SimKernel` manage CAN, BLE and V2X
    uniformly and lets attack injectors and endpoints be written against
    the interface instead of a specific transport.

    Beyond the core surface below, media may offer optional capabilities
    (``tap()`` for eavesdroppers, ``jam()`` for RF denial); callers probe
    for them with ``hasattr``.
    """

    name: str

    def attach(self, receiver: Receiver) -> None:
        """Attach a receiver; it sees every delivered message."""

    def send(self, message: Message) -> Message | None:
        """Submit a message for delivery (after latency/arbitration)."""

    @property
    def stats(self) -> dict[str, float]:
        """Traffic statistics of the medium."""


@runtime_checkable
class PropagationModel(Protocol):
    """Which attached receivers a delivered message actually reaches.

    The model is consulted once per delivery, *after* latency and
    congestion, so range membership reflects positions at delivery time.
    :class:`InfiniteRange` (the default) reproduces the legacy global
    broadcast; :class:`~repro.sim.topology.RangePropagation` gates
    delivery on the sender's transmit range over a
    :class:`~repro.sim.topology.Topology`.
    """

    def receivers(
        self, message: Message, receivers: list[Receiver]
    ) -> list[Receiver]:
        """The subset of ``receivers`` that hears ``message``.

        ``receivers`` is the channel's **live** attach list (no
        defensive copy on the delivery hot path): implementations must
        treat it as read-only and return either the list unchanged
        (global broadcast) or a **new** list with the selected subset --
        never filter it in place.
        """


class InfiniteRange:
    """The legacy propagation: every attached receiver hears every
    message, regardless of geometry.  This is the explicit spelling of
    the global-broadcast behaviour all pre-topology scenarios rely on --
    a channel without a propagation model behaves identically."""

    def receivers(
        self, message: Message, receivers: list[Receiver]
    ) -> list[Receiver]:
        # Returned as-is (no defensive copy): the channel's delivery loop
        # treats the result as read-only, and copying the attach list on
        # every delivery was measurable fleet-campaign overhead.
        return receivers


class Channel:
    """A broadcast medium delivering messages with latency.

    Attributes:
        name: Channel name ("v2x", "ble", "can").
        latency_ms: Propagation + processing delay per message.
        bandwidth_per_ms: Max deliveries per millisecond; ``None`` means
            unlimited.  Excess messages queue behind earlier traffic, so a
            flood inflates delivery times for everyone (availability loss).
            The budget is *airtime on the shared band*: every send
            occupies it, including sends no attached receiver is in
            range to decode -- co-channel interference congests the
            channel regardless of who can hear the payload.
        propagation: The :class:`PropagationModel` gating which
            receivers *decode* each delivery; defaults to
            :class:`InfiniteRange` (global broadcast).  Propagation
            never gates *transmission*: see ``bandwidth_per_ms``.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        bus: EventBus,
        latency_ms: float = 1.0,
        bandwidth_per_ms: float | None = None,
        propagation: PropagationModel | None = None,
    ) -> None:
        if latency_ms < 0:
            raise SimulationError("channel latency must be >= 0")
        if bandwidth_per_ms is not None and bandwidth_per_ms <= 0:
            raise SimulationError("channel bandwidth must be positive")
        self.name = name
        self.latency_ms = latency_ms
        self.bandwidth_per_ms = bandwidth_per_ms
        self.propagation: PropagationModel = (
            propagation if propagation is not None else InfiniteRange()
        )
        self._clock = clock
        self._bus = bus
        self._receivers: list[Receiver] = []
        # Receivers that only care about some kinds (e.g. relays that
        # never act on CAM floods) declare them at attach(); deliveries
        # of other kinds skip them entirely via per-kind fan-out lists.
        self._kind_limits: dict[Receiver, frozenset[str]] = {}
        self._kind_views: dict[str, list[Receiver]] = {}
        self._taps: list[Callable[[Message], None]] = []
        self._jam_until = -1.0
        self._next_free = 0.0
        self._sent = 0
        self._delivered = 0
        self._dropped = 0
        self._out_of_range = 0
        self._delays: deque[float] = deque(maxlen=1000)
        # Topic strings built once; per-message f-strings rehash per publish.
        self._topic_delivered = f"channel.{name}.delivered"
        self._topic_dropped = f"channel.{name}.dropped"
        # One delivered event per message: the probe keeps the
        # unobserved case (counts mode, no subscriber) at counter cost.
        self._delivered_probe = bus.probe(self._topic_delivered)

    # -- wiring -----------------------------------------------------------

    def attach(
        self, receiver: Receiver, kinds: Iterable[str] | None = None
    ) -> None:
        """Attach a receiver; it gets every delivered message.

        ``kinds`` optionally restricts the receiver to the named message
        kinds: deliveries of any other kind never call its ``receive``.
        Use it for endpoints whose ``receive`` is a no-op outside a fixed
        kind set (e.g. V2V relays only forward road-works warnings), so
        a high-rate flood of an uninteresting kind does not pay one call
        per attached-but-indifferent node.  Semantically identical to
        attaching without ``kinds`` as long as the declaration really
        covers every kind the receiver acts on.
        """
        self._receivers.append(receiver)
        if kinds is not None:
            self._kind_limits[receiver] = frozenset(kinds)
        self._kind_views.clear()

    def detach(self, receiver: Receiver) -> None:
        """Remove a receiver from delivery (idempotent).

        Scenarios use this to take dead nodes off the air: an ECU that
        shut down ignores everything it receives anyway, so dropping it
        from the fan-out preserves behaviour while a flood no longer
        pays per-delivery calls into receivers that are gone.
        """
        try:
            self._receivers.remove(receiver)
        except ValueError:
            pass
        else:
            self._kind_limits.pop(receiver, None)
            self._kind_views.clear()

    def tap(self, listener: Callable[[Message], None]) -> None:
        """Attach a passive tap (eavesdropper); sees sends immediately."""
        self._taps.append(listener)

    # -- jamming ----------------------------------------------------------

    def jam(self, duration_ms: float) -> None:
        """Jam the channel: sends during the window are dropped."""
        if duration_ms <= 0:
            raise SimulationError("jam duration must be positive")
        self._jam_until = max(self._jam_until, self._clock.now + duration_ms)

    @property
    def jammed(self) -> bool:
        """True while a jamming window is active."""
        return self._clock.now < self._jam_until

    # -- traffic ----------------------------------------------------------

    def send(self, message: Message) -> Message:
        """Send a message; returns the (timestamped) message actually sent.

        Taps see the message even when the channel is jammed (the RF burst
        happened); receivers only get it if the channel is clear, after
        latency plus any congestion backlog.
        """
        if message.timestamp < 0:
            message = message.with_timestamp(self._clock.now)
        self._sent += 1
        for listener in self._taps:
            listener(message)
        if self._clock.now < self._jam_until:  # inline `jammed` (hot path)
            self._dropped += 1
            self._bus.publish(
                self._clock.now,
                self._topic_dropped,
                self.name,
                kind=message.kind,
                sender=message.sender,
                reason="jammed",
            )
            return message
        delay = self.latency_ms + self._congestion_delay()
        self._delays.append(delay)
        self._clock.post(
            self._clock.now + delay, functools.partial(self._deliver, message)
        )
        return message

    def _congestion_delay(self) -> float:
        """Extra queueing delay from the bandwidth limit."""
        if self.bandwidth_per_ms is None:
            return 0.0
        slot = 1.0 / self.bandwidth_per_ms
        earliest = max(self._clock.now, self._next_free)
        self._next_free = earliest + slot
        return earliest - self._clock.now

    def _deliver(self, message: Message) -> None:
        self._delivered += 1
        if self._delivered_probe.active:
            self._bus.publish(
                self._clock.now,
                self._topic_delivered,
                self.name,
                kind=message.kind,
                sender=message.sender,
            )
        else:
            # Inlined EventBus.tally: one increment per delivery.
            topic_counts = self._delivered_probe.counts
            topic = self._topic_delivered
            try:
                topic_counts[topic] += 1
            except KeyError:
                topic_counts[topic] = 1
        # Range membership is evaluated now, at delivery time; receiver
        # order is the deterministic attach order, so range-edge cases
        # resolve through the clock's scheduling sequence alone.  The
        # attach list is handed to the propagation model directly --
        # models must not mutate it (InfiniteRange returns it unchanged).
        attached = self._receivers
        if self._kind_limits:
            kind = message.kind
            view = self._kind_views.get(kind)
            if view is None:
                # Built once per kind (invalidated by attach/detach):
                # the fan-out for a kind only visits receivers that
                # declared it (or declared nothing).  Stable list
                # identity keeps downstream propagation memos valid.
                limits = self._kind_limits
                view = self._kind_views[kind] = [
                    receiver
                    for receiver in attached
                    if (limit := limits.get(receiver)) is None
                    or kind in limit
                ]
            attached = view
        reached = self.propagation.receivers(message, attached)
        if reached is not attached:
            self._out_of_range += len(attached) - len(reached)
        for receiver in reached:
            receiver.receive(message)

    # -- metrics ----------------------------------------------------------

    @property
    def stats(self) -> dict[str, float]:
        """Traffic statistics: sent/delivered/dropped and mean delay."""
        mean_delay = (
            sum(self._delays) / len(self._delays) if self._delays else 0.0
        )
        return {
            "sent": self._sent,
            "delivered": self._delivered,
            "dropped": self._dropped,
            "out_of_range": self._out_of_range,
            "mean_delay_ms": mean_delay,
        }


__all__ = [
    "Channel",
    "InfiniteRange",
    "Medium",
    "Message",
    "PropagationModel",
    "Receiver",
    "shared_message_memo",
]
