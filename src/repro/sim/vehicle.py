"""Vehicle kinematics, driving-mode state machine and driver model.

Use Case I revolves around the control handover: "The OBU should inform
the driver, so that control is transferred back (upfront) to the driver."
The vehicle therefore models:

* longitudinal kinematics (position, speed, bounded accel/decel),
* a driving-mode state machine: AUTOMATED -> HANDOVER_REQUESTED ->
  MANUAL, plus SAFE_STOP as the ISO 26262 safe state,
* a :class:`Driver` with a reaction time: after a take-over warning the
  driver needs ``reaction_time_ms`` before control is actually transferred
  (the controllability C=3 rating exists because "the driver is not
  supposed to monitor the road while automated driving mode is active").

All state transitions are published on the event bus so the safety
monitor can check goals like SG01 ("avoid ineffective location
notification without returning driving control to human") and their FTTIs.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventBus
from repro.sim.world import World


class DrivingMode(enum.Enum):
    """The vehicle's control mode."""

    AUTOMATED = "automated"
    HANDOVER_REQUESTED = "handover requested"
    MANUAL = "manual"
    SAFE_STOP = "safe stop"


class Vehicle:
    """A longitudinally simulated vehicle.

    Attributes:
        name: Vehicle identity ("ego").
        position_m: Current position along the road.
        speed_mps: Current speed (m/s).
        mode: Current :class:`DrivingMode`.
        tick_ms: Kinematics update period.
    """

    MAX_DECEL_MPS2 = 4.0
    MAX_ACCEL_MPS2 = 2.0

    def __init__(
        self,
        name: str,
        clock: SimClock,
        bus: EventBus,
        world: World,
        position_m: float = 0.0,
        speed_mps: float = 25.0,
        tick_ms: float = 100.0,
    ) -> None:
        if speed_mps < 0:
            raise SimulationError("initial speed must be >= 0")
        self.name = name
        # Motion listeners let a tracking Topology key position caches
        # on actual movement; the property setter notifies them.
        self._motion_listeners: list[Callable[[], None]] = []
        # Placement is validated, not silently clamped: a scenario that
        # puts a vehicle off-road is mis-specified, not "at the end".
        self._position_m = world.place(position_m)
        self.position_saturated = False
        self.speed_mps = speed_mps
        self.mode = DrivingMode.AUTOMATED
        self.tick_ms = tick_ms
        self.target_speed_mps = speed_mps
        self._clock = clock
        self._bus = bus
        self._world = world
        self._handover_requested_at: float | None = None
        self._manual_since: float | None = None
        clock.schedule_periodic(tick_ms, self._tick, start=tick_ms)

    # -- control ----------------------------------------------------------

    def request_handover(self, reason: str = "") -> None:
        """Issue a take-over warning to the driver.

        Idempotent while already requested; ignored once in MANUAL or
        SAFE_STOP (control is already with a safe authority).
        """
        if self.mode is not DrivingMode.AUTOMATED:
            return
        self.mode = DrivingMode.HANDOVER_REQUESTED
        self._handover_requested_at = self._clock.now
        self._bus.publish(
            self._clock.now,
            "vehicle.handover_requested",
            self.name,
            reason=reason,
            position_m=self.position_m,
        )

    def driver_takes_over(self) -> None:
        """The driver assumes manual control (called by :class:`Driver`)."""
        if self.mode in (DrivingMode.MANUAL, DrivingMode.SAFE_STOP):
            return
        self.mode = DrivingMode.MANUAL
        self._manual_since = self._clock.now
        self._bus.publish(
            self._clock.now,
            "vehicle.manual_control",
            self.name,
            position_m=self.position_m,
            latency_ms=(
                self._clock.now - self._handover_requested_at
                if self._handover_requested_at is not None
                else None
            ),
        )

    def safe_stop(self, reason: str = "") -> None:
        """Enter the safe state: decelerate to standstill."""
        if self.mode is DrivingMode.SAFE_STOP:
            return
        self.mode = DrivingMode.SAFE_STOP
        self.target_speed_mps = 0.0
        self._bus.publish(
            self._clock.now,
            "vehicle.safe_stop",
            self.name,
            reason=reason,
            position_m=self.position_m,
        )

    def set_target_speed(self, speed_mps: float) -> None:
        """Command a new target speed (speed limit, driver braking)."""
        if speed_mps < 0:
            raise SimulationError("target speed must be >= 0")
        self.target_speed_mps = speed_mps
        self._bus.publish(
            self._clock.now,
            "vehicle.target_speed",
            self.name,
            target_mps=speed_mps,
        )

    # -- state ------------------------------------------------------------

    @property
    def position_m(self) -> float:
        """Current position along the road."""
        return self._position_m

    @position_m.setter
    def position_m(self, value: float) -> None:
        changed = value != self._position_m
        self._position_m = value
        if changed:
            for listener in self._motion_listeners:
                listener()

    def add_motion_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` whenever this vehicle's position changes.

        The hook is how a :class:`~repro.sim.topology.Topology` tracking
        this vehicle keeps its position-keyed caches (batched
        propagation, spatial snapshots) coherent without polling: no
        notification between two reads guarantees the position is
        unchanged.
        """
        self._motion_listeners.append(listener)

    @property
    def handover_requested_at(self) -> float | None:
        """Time of the (first) take-over warning, if any."""
        return self._handover_requested_at

    @property
    def manual_since(self) -> float | None:
        """Time manual control was assumed, if it was."""
        return self._manual_since

    @property
    def is_stopped(self) -> bool:
        """True at (numerical) standstill."""
        return self.speed_mps < 0.01

    def in_zone(self, zone_name: str) -> bool:
        """True when currently inside the named world zone."""
        return self._world.in_zone(self.position_m, zone_name)

    # -- kinematics ---------------------------------------------------------

    def _tick(self) -> None:
        dt = self.tick_ms / 1000.0
        previous_position = self.position_m
        delta = self.target_speed_mps - self.speed_mps
        if delta < 0:
            self.speed_mps = max(
                self.target_speed_mps,
                self.speed_mps - self.MAX_DECEL_MPS2 * dt,
            )
        elif delta > 0:
            self.speed_mps = min(
                self.target_speed_mps,
                self.speed_mps + self.MAX_ACCEL_MPS2 * dt,
            )
        position, saturated = self._world.clamp_value(
            previous_position + self.speed_mps * dt
        )
        if saturated:
            self.position_saturated = True
        self.position_m = position
        # Zone-entry detection without per-tick set materialisation:
        # compare containment at the previous and new position directly.
        entered = [
            zone.name
            for zone in self._world.zones
            if zone.contains(position) and not zone.contains(previous_position)
        ]
        for zone_name in sorted(entered):
            self._bus.publish(
                self._clock.now,
                "vehicle.entered_zone",
                self.name,
                zone=zone_name,
                mode=self.mode.value,
                speed_mps=self.speed_mps,
            )


class Driver:
    """The human driver: reacts to take-over warnings after a delay.

    Attributes:
        reaction_time_ms: Time between warning and actually taking over.
        comfort_speed_mps: Speed the driver settles to after take-over
            (slowing for the hazard ahead).
    """

    def __init__(
        self,
        vehicle: Vehicle,
        clock: SimClock,
        bus: EventBus,
        reaction_time_ms: float = 2000.0,
        comfort_speed_mps: float = 8.0,
    ) -> None:
        if reaction_time_ms < 0:
            raise SimulationError("reaction time must be >= 0")
        self.reaction_time_ms = reaction_time_ms
        self.comfort_speed_mps = comfort_speed_mps
        self._vehicle = vehicle
        self._clock = clock
        self._reacting = False
        bus.subscribe("vehicle.handover_requested", self._on_warning)

    def _on_warning(self, event) -> None:
        if event.source != self._vehicle.name or self._reacting:
            return
        self._reacting = True
        self._clock.schedule(self.reaction_time_ms, self._take_over)

    def _take_over(self) -> None:
        self._vehicle.driver_takes_over()
        self._vehicle.set_target_speed(self.comfort_speed_mps)
        self._reacting = False


__all__ = [
    "Driver",
    "DrivingMode",
    "Vehicle",
]
