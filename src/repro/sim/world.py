"""The road world: a 1-D roadway with named zones.

Use Case I (Fig. 2) only needs longitudinal geometry: an autonomous
vehicle approaches a construction site along a road, with a road-side
unit located ahead of the site.  The world is therefore a 1-D position
axis (metres) with named :class:`Zone` intervals (construction site,
RSU radio coverage, intersection box, ...).  Keeping the geometry minimal
keeps every scenario deterministic and the safety predicates crisp
("vehicle inside the construction zone while in automated mode").
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError

try:  # numpy is the optional ``repro[perf]`` extra, never a hard dep
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


class ClampedPosition(float):
    """A road position produced by :meth:`World.clamp`.

    Behaves exactly like the underlying ``float`` (so every existing
    arithmetic call site is untouched) but additionally carries
    ``saturated``: whether clamping actually moved the position onto the
    road.  Scenarios assert actors stayed on-road by checking the flag
    instead of comparing floats against the road ends.
    """

    saturated: bool

    def __new__(cls, value: float, saturated: bool) -> "ClampedPosition":
        self = super().__new__(cls, value)
        self.saturated = saturated
        return self

    def __getnewargs__(self) -> tuple[float, bool]:
        # float.__getnewargs__ supplies only the value; without the flag
        # pickle/deepcopy would crash crossing a worker-process boundary.
        return (float(self), self.saturated)


@dataclasses.dataclass(frozen=True)
class Zone:
    """A named interval of the road, ``[start, end)`` in metres."""

    name: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError(
                f"zone {self.name!r}: end ({self.end}) must exceed start "
                f"({self.start})"
            )

    def contains(self, position: float) -> bool:
        """True when ``position`` lies inside the zone."""
        return self.start <= position < self.end

    @property
    def length(self) -> float:
        """Zone length in metres."""
        return self.end - self.start


class World:
    """The 1-D road with its zones.

    Attributes:
        road_length_m: Total road length; positions beyond it saturate.
    """

    def __init__(self, road_length_m: float = 3000.0) -> None:
        if road_length_m <= 0:
            raise SimulationError("road length must be positive")
        self.road_length_m = road_length_m
        self._zones: dict[str, Zone] = {}
        self._zones_view: tuple[Zone, ...] = ()

    def add_zone(self, name: str, start: float, end: float) -> Zone:
        """Define a named zone.

        Raises:
            SimulationError: on duplicate names or out-of-road intervals.
        """
        if name in self._zones:
            raise SimulationError(f"zone {name!r} already defined")
        if start < 0 or end > self.road_length_m:
            raise SimulationError(
                f"zone {name!r} [{start}, {end}) outside road "
                f"[0, {self.road_length_m})"
            )
        zone = Zone(name=name, start=start, end=end)
        self._zones[name] = zone
        self._zones_view = tuple(self._zones.values())
        return zone

    def zone(self, name: str) -> Zone:
        """Look up a zone by name."""
        if name not in self._zones:
            raise SimulationError(f"unknown zone {name!r}")
        return self._zones[name]

    @property
    def zones(self) -> tuple[Zone, ...]:
        """All zones in definition order (cached; rebuilt on add_zone)."""
        return self._zones_view

    def zones_at(self, position: float) -> tuple[Zone, ...]:
        """The zones containing ``position``."""
        return tuple(
            zone for zone in self._zones_view if zone.contains(position)
        )

    def in_zone(self, position: float, name: str) -> bool:
        """True when ``position`` lies inside the named zone."""
        return self.zone(name).contains(position)

    def distance_to(self, position: float, name: str) -> float:
        """Metres from ``position`` to the start of the named zone.

        Negative once the position is past the zone start.
        """
        return self.zone(name).start - position

    def clamp_array(self, positions):
        """Vectorised :meth:`clamp_value` over a numpy position array.

        Returns ``(clamped, saturated)`` arrays; used by the topology's
        structure-of-arrays mobility tick.  Requires numpy (the caller
        gates on :func:`repro.sim.topology.numpy_enabled`).
        """
        clamped = _np.clip(positions, 0.0, self.road_length_m)
        return clamped, clamped != positions

    def clamp_value(self, position: float) -> tuple[float, bool]:
        """:meth:`clamp` as a plain ``(position, saturated)`` pair.

        The allocation-free variant for per-tick kinematics callers;
        :meth:`clamp` stays the public carrier-object API.
        """
        if position < 0.0:
            return 0.0, True
        if position > self.road_length_m:
            return self.road_length_m, True
        return position, False

    def clamp(self, position: float) -> ClampedPosition:
        """Clamp a position onto the road.

        Returns a :class:`ClampedPosition` -- a ``float`` whose
        ``saturated`` flag reports whether the input lay off-road.
        """
        value, saturated = self.clamp_value(position)
        return ClampedPosition(value, saturated=saturated)

    def place(self, position: float) -> float:
        """Validate an *initial* placement; saturation is not allowed.

        Raises:
            SimulationError: when the position is negative or beyond the
                road end -- placements must start on the road, only
                *motion* may saturate at the ends.
        """
        if position < 0:
            raise SimulationError(
                f"negative placement ({position} m) rejected; the road "
                "starts at 0 m"
            )
        if position > self.road_length_m:
            raise SimulationError(
                f"placement {position} m is beyond the road end "
                f"({self.road_length_m} m)"
            )
        return position


__all__ = [
    "ClampedPosition",
    "World",
    "Zone",
]
