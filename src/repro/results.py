"""One typed result model for every subsystem (the ``repro.results`` layer).

Before this module existed the reproduction had four disjoint result
shapes -- :class:`~repro.testing.testcase.TestExecution` verdicts,
campaign :class:`~repro.engine.campaign.VariantOutcome` rows, fuzz
:class:`~repro.tara.fuzzing.FuzzReport` outcomes and TARA-HARA
:class:`~repro.tara.crosscheck.CrossCheckReport` entries -- none of which
composed: every consumer (CLI, benchmarks, campaign analysis) re-invented
its own aggregation and its own print-only output.

This module is the common denominator they all adapt into:

* :class:`RunRecord` -- one uniform, frozen, pure-data record, tagged with
  its source (:data:`SOURCE_PIPELINE`, :data:`SOURCE_CAMPAIGN`,
  :data:`SOURCE_FUZZ`, :data:`SOURCE_CROSSCHECK`);
* :class:`ResultSet` -- an immutable collection of records with a query
  API (:meth:`~ResultSet.filter`, :meth:`~ResultSet.group_by`,
  :meth:`~ResultSet.pivot`, :meth:`~ResultSet.summary`) and exporters
  (JSON, CSV, Markdown) that round-trip losslessly.

The module depends only on the standard library and :mod:`repro.errors`,
so every producer (engine, tara, testing) can import it without cycles.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import threading
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import ValidationError

#: Schema tag embedded in every serialised payload; bump on breaking change.
SCHEMA = "repro.results/v1"

#: A test-case verdict from a Step-4 pipeline execution.
SOURCE_PIPELINE = "pipeline-verdict"
#: One executed variant of a scenario campaign.
SOURCE_CAMPAIGN = "campaign-variant"
#: One fuzz mutant's outcome from a protocol-guided fuzz campaign.
SOURCE_FUZZ = "fuzz-outcome"
#: One damage scenario's classification from the TARA-HARA cross-check.
SOURCE_CROSSCHECK = "crosscheck-entry"

#: All valid record source tags.
SOURCES = (
    SOURCE_PIPELINE,
    SOURCE_CAMPAIGN,
    SOURCE_FUZZ,
    SOURCE_CROSSCHECK,
)

#: Frozen key/value storage (sorted by key) for metrics and attributes.
Items = tuple[tuple[str, Any], ...]


def freeze_items(mapping: Mapping[str, Any] | Items | None) -> Items:
    """Normalise a mapping into sorted ``(key, value)`` tuples."""
    if not mapping:
        return ()
    if isinstance(mapping, tuple):
        mapping = dict(mapping)
    return tuple((key, mapping[key]) for key in sorted(mapping))


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One uniform result record, tagged with its producing subsystem.

    Every field is a primitive (or a tuple of primitives), so records
    hash, compare, pickle across process boundaries and serialise without
    ceremony -- the same plain-data discipline
    :class:`~repro.engine.spec.VariantSpec` established for inputs.

    Attributes:
        source: One of :data:`SOURCES`.
        subject: What was exercised -- an attack id (``AD20``), a variant
            id (``uc1/parity/ad20``), a mutant name
            (``open_command/strip_mac``) or a damage-scenario id.
        verdict: The source-native verdict label (``ATTACK_FAILED``,
            ``rejected``, ``ALIGNED``, ...).
        passed: Normalised outcome: ``True`` when the SUT/process held up
            (attack withstood, mutant rejected), ``False`` when it did
            not, ``None`` where pass/fail does not apply (cross-check).
        use_case: ``"uc1"`` / ``"uc2"`` when attributable, else ``""``.
        family: Source-specific grouping (variant family, fuzz operator,
            cross-check outcome class).
        goals: Safety goals involved (targeted or violated).
        metrics: Numeric measures, frozen as sorted key/value tuples.
        attrs: String-valued context, frozen as sorted key/value tuples.
        notes: Free-form explanation.
    """

    source: str
    subject: str
    verdict: str
    passed: bool | None = None
    use_case: str = ""
    family: str = ""
    goals: tuple[str, ...] = ()
    metrics: Items = ()
    attrs: Items = ()
    notes: str = ""

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ValidationError(
                f"unknown record source {self.source!r} "
                f"(expected one of {', '.join(SOURCES)})"
            )
        if not self.subject:
            raise ValidationError("run record needs a subject")
        if not self.verdict:
            raise ValidationError(
                f"record for {self.subject!r} needs a verdict"
            )

    # -- typed accessors ---------------------------------------------------

    def metrics_dict(self) -> dict[str, float]:
        """The numeric measures as a plain dict."""
        return {key: value for key, value in self.metrics}

    def attrs_dict(self) -> dict[str, str]:
        """The string attributes as a plain dict."""
        return {key: value for key, value in self.attrs}

    def get(self, key: str, default: Any = None) -> Any:
        """Uniform field access: dataclass fields, then metrics, attrs.

        This is what the :class:`ResultSet` query API keys on, so
        ``filter(family=...)`` and ``group_by("operator")`` work the same
        whether the key is a first-class field or a frozen attribute.
        """
        if key in _FIELDS:
            return getattr(self, key)
        for items in (self.metrics, self.attrs):
            for item_key, value in items:
                if item_key == key:
                    return value
        return default

    # -- serialisation -----------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready, schema-tagged)."""
        return {
            "schema": SCHEMA,
            "source": self.source,
            "subject": self.subject,
            "verdict": self.verdict,
            "passed": self.passed,
            "use_case": self.use_case,
            "family": self.family,
            "goals": list(self.goals),
            "metrics": self.metrics_dict(),
            "attrs": self.attrs_dict(),
            "notes": self.notes,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_payload` output."""
        schema = payload.get("schema", SCHEMA)
        if schema != SCHEMA:
            raise ValidationError(
                f"record schema mismatch: got {schema!r}, expected {SCHEMA!r}"
            )
        return cls(
            source=payload["source"],
            subject=payload["subject"],
            verdict=payload["verdict"],
            passed=payload.get("passed"),
            use_case=payload.get("use_case", ""),
            family=payload.get("family", ""),
            goals=tuple(payload.get("goals", ())),
            metrics=freeze_items(payload.get("metrics")),
            attrs=freeze_items(payload.get("attrs")),
            notes=payload.get("notes", ""),
        )


_FIELDS = tuple(field.name for field in dataclasses.fields(RunRecord))

#: Fixed CSV column order (metrics/attrs columns are appended per export).
_CSV_CORE = (
    "source",
    "subject",
    "verdict",
    "passed",
    "use_case",
    "family",
    "goals",
    "notes",
)


@dataclasses.dataclass(frozen=True)
class ResultSet:
    """An immutable, queryable collection of :class:`RunRecord` rows.

    Query methods return new :class:`ResultSet` instances; exporters
    return strings.  Concatenate sets with ``+``.
    """

    records: tuple[RunRecord, ...] = ()

    @classmethod
    def of(cls, *sources: "RunRecord | Iterable[RunRecord]") -> "ResultSet":
        """Build a set from records and/or iterables of records."""
        collected: list[RunRecord] = []
        for source in sources:
            if isinstance(source, RunRecord):
                collected.append(source)
            else:
                collected.extend(source)
        return cls(records=tuple(collected))

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def __add__(self, other: "ResultSet") -> "ResultSet":
        if not isinstance(other, ResultSet):
            return NotImplemented
        return ResultSet(records=self.records + other.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    # -- query API ---------------------------------------------------------

    def filter(
        self,
        predicate: Callable[[RunRecord], bool] | None = None,
        **fields: Any,
    ) -> "ResultSet":
        """Records matching a predicate and/or field equalities.

        ``fields`` keys are resolved through :meth:`RunRecord.get`, so
        both dataclass fields and frozen metric/attr keys work::

            results.filter(source=SOURCE_CAMPAIGN, family="parity")
            results.filter(lambda r: r.passed is False)
        """
        selected = []
        for record in self.records:
            if predicate is not None and not predicate(record):
                continue
            if any(record.get(key) != value for key, value in fields.items()):
                continue
            selected.append(record)
        return ResultSet(records=tuple(selected))

    def group_by(self, key: str) -> dict[Any, "ResultSet"]:
        """Records grouped by a field/metric/attr value (insertion order)."""
        grouped: dict[Any, list[RunRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.get(key), []).append(record)
        return {
            value: ResultSet(records=tuple(records))
            for value, records in grouped.items()
        }

    def pivot(
        self, rows: str, cols: str, value: str | None = None
    ) -> dict[Any, dict[Any, float]]:
        """A two-way table over two keys.

        Without ``value`` the cells are record counts; with ``value``
        (a metric key) the cells are the metric's mean over the cell's
        records (cells without the metric are omitted).
        """
        table: dict[Any, dict[Any, float]] = {}
        sums: dict[tuple[Any, Any], tuple[float, int]] = {}
        for record in self.records:
            row_key, col_key = record.get(rows), record.get(cols)
            if value is None:
                row = table.setdefault(row_key, {})
                row[col_key] = row.get(col_key, 0) + 1
                continue
            metric = record.get(value)
            if not isinstance(metric, (int, float)) or isinstance(metric, bool):
                continue
            total, count = sums.get((row_key, col_key), (0.0, 0))
            sums[(row_key, col_key)] = (total + float(metric), count + 1)
        if value is not None:
            for (row_key, col_key), (total, count) in sums.items():
                table.setdefault(row_key, {})[col_key] = total / count
        return table

    def subjects(self) -> tuple[str, ...]:
        """The distinct subjects, in first-appearance order."""
        return tuple(dict.fromkeys(record.subject for record in self.records))

    def summary(self) -> dict[str, Any]:
        """Plain-data roll-up for reporting and CI gates."""
        by_source: dict[str, int] = {}
        verdicts: dict[str, int] = {}
        passed = failed = not_applicable = 0
        for record in self.records:
            by_source[record.source] = by_source.get(record.source, 0) + 1
            verdicts[record.verdict] = verdicts.get(record.verdict, 0) + 1
            if record.passed is True:
                passed += 1
            elif record.passed is False:
                failed += 1
            else:
                not_applicable += 1
        return {
            "total": len(self.records),
            "sources": by_source,
            "verdicts": verdicts,
            "passed": passed,
            "failed": failed,
            "not_applicable": not_applicable,
        }

    # -- exporters ---------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """Schema-tagged plain-dict form of the whole set."""
        return {
            "schema": SCHEMA,
            "summary": self.summary(),
            "records": [record.to_payload() for record in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The set as a JSON document (schema + summary + records)."""
        return json.dumps(self.to_payload(), indent=indent, sort_keys=False)

    def to_csv(self) -> str:
        """The set as CSV: core columns plus one column per metric/attr.

        Metric columns are prefixed ``metric:``, attribute columns
        ``attr:``, so heterogeneous sources share one header without key
        collisions and :meth:`from_csv` can reverse the encoding.
        """
        metric_keys = sorted(
            {key for record in self.records for key, _ in record.metrics}
        )
        attr_keys = sorted(
            {key for record in self.records for key, _ in record.attrs}
        )
        header = (
            list(_CSV_CORE)
            + [f"metric:{key}" for key in metric_keys]
            + [f"attr:{key}" for key in attr_keys]
        )
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(header)
        for record in self.records:
            metrics = record.metrics_dict()
            attrs = record.attrs_dict()
            row = [
                record.source,
                record.subject,
                record.verdict,
                "" if record.passed is None else str(record.passed).lower(),
                record.use_case,
                record.family,
                ";".join(record.goals),
                record.notes,
            ]
            row += [
                "" if key not in metrics else repr(metrics[key])
                for key in metric_keys
            ]
            row += [attrs.get(key, "") for key in attr_keys]
            writer.writerow(row)
        return buffer.getvalue()

    def to_markdown(self, columns: tuple[str, ...] | None = None) -> str:
        """The set as a GitHub-flavoured Markdown table."""
        columns = columns or ("source", "subject", "verdict", "passed", "goals")
        lines = [
            "| " + " | ".join(columns) + " |",
            "| " + " | ".join("---" for _ in columns) + " |",
        ]
        for record in self.records:
            cells = []
            for column in columns:
                value = record.get(column, "")
                if isinstance(value, tuple):
                    value = ", ".join(str(item) for item in value)
                elif value is None:
                    value = "-"
                cells.append(str(value).replace("|", "\\|"))
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    # -- importers ---------------------------------------------------------

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ResultSet":
        """Rebuild a set from :meth:`to_payload` output."""
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ValidationError(
                f"result-set schema mismatch: got {schema!r}, "
                f"expected {SCHEMA!r}"
            )
        return cls(
            records=tuple(
                RunRecord.from_payload(item)
                for item in payload.get("records", ())
            )
        )

    @classmethod
    def from_json(cls, document: str) -> "ResultSet":
        """Parse a :meth:`to_json` document back into a set."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"not a result-set document: {exc}") from exc
        return cls.from_payload(payload)

    @classmethod
    def from_csv(cls, document: str) -> "ResultSet":
        """Parse a :meth:`to_csv` document back into a set.

        Metric values round-trip through ``repr``/``literal_eval`` so ints
        stay ints and floats stay floats.
        """
        import ast

        reader = csv.reader(io.StringIO(document))
        try:
            header = next(reader)
        except StopIteration:
            return cls()
        missing = [column for column in _CSV_CORE if column not in header]
        if missing:
            raise ValidationError(
                f"CSV document is missing core columns: {missing}"
            )
        index = {column: header.index(column) for column in header}
        records = []
        for row in reader:
            if not row:
                continue
            passed_text = row[index["passed"]]
            metrics: dict[str, float] = {}
            attrs: dict[str, str] = {}
            for column, position in index.items():
                cell = row[position]
                if column.startswith("metric:") and cell != "":
                    metrics[column[len("metric:"):]] = ast.literal_eval(cell)
                elif column.startswith("attr:") and cell != "":
                    attrs[column[len("attr:"):]] = cell
            records.append(
                RunRecord(
                    source=row[index["source"]],
                    subject=row[index["subject"]],
                    verdict=row[index["verdict"]],
                    passed=(
                        None if passed_text == "" else passed_text == "true"
                    ),
                    use_case=row[index["use_case"]],
                    family=row[index["family"]],
                    goals=tuple(
                        goal
                        for goal in row[index["goals"]].split(";")
                        if goal
                    ),
                    metrics=freeze_items(metrics),
                    attrs=freeze_items(attrs),
                    notes=row[index["notes"]],
                )
            )
        return cls(records=tuple(records))


class ResultSink:
    """A mutable, thread-safe accumulator records **stream** into.

    :class:`ResultSet` is immutable by design; long-running producers
    (campaigns fanning out over an execution backend) need somewhere to
    put records *as jobs complete*, so partial results can be inspected
    or exported while the run is still going.  A sink is that somewhere:

    * producers call :meth:`add` per finished record (any thread);
    * consumers call :meth:`snapshot` at any time for an immutable
      :class:`ResultSet` of everything received so far;
    * an optional ``on_record`` callback observes each arrival (the
      :class:`~repro.api.Workspace` uses it to keep its own accumulated
      set current without polling).

    **Spill mode** (``ResultSink(path=...)``): every record is appended
    to ``path`` as one JSON line and flushed immediately, and is **not**
    kept resident -- a daemon streaming a million outcomes holds none of
    them in memory, and a reader can tail the file while the run is
    live.  :meth:`snapshot` re-reads the file (see :func:`read_jsonl`);
    ``__len__`` counts what this sink received.  Close the sink (or use
    it as a context manager) to release the file handle.
    """

    def __init__(
        self,
        on_record: Callable[[RunRecord], None] | None = None,
        *,
        path: "str | Path | None" = None,
    ) -> None:
        self._records: list[RunRecord] = []
        self._on_record = on_record
        self._lock = threading.Lock()
        self._path = Path(path) if path is not None else None
        self._file: Any = None
        self._count = 0

    @property
    def path(self) -> "Path | None":
        """The spill file (``None`` for an in-memory sink)."""
        return self._path

    def add(self, record: RunRecord) -> None:
        """Receive one streamed record."""
        with self._lock:
            if self._path is not None:
                if self._file is None:
                    self._path.parent.mkdir(parents=True, exist_ok=True)
                    self._file = open(  # noqa: SIM115 - held open for appends
                        self._path, "a", encoding="utf-8"
                    )
                self._file.write(
                    json.dumps(record.to_payload(), sort_keys=False) + "\n"
                )
                self._file.flush()
            else:
                self._records.append(record)
            self._count += 1
        if self._on_record is not None:
            self._on_record(record)

    def extend(self, records: Iterable[RunRecord]) -> None:
        """Receive a batch of records (one callback per record)."""
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> ResultSet:
        """Everything received so far, as an immutable set.

        A spill sink re-reads its file, so the snapshot includes records
        appended by *earlier* sinks on the same path too.
        """
        with self._lock:
            if self._path is not None:
                if self._file is not None:
                    self._file.flush()
                return read_jsonl(self._path)
            return ResultSet(records=tuple(self._records))

    def close(self) -> None:
        """Release the spill file handle (idempotent; no-op in-memory)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_jsonl(path: "str | Path") -> ResultSet:
    """Read a JSONL spill file back into a :class:`ResultSet`.

    One :meth:`RunRecord.to_payload` object per line; blank lines are
    skipped, a truncated final line (producer killed mid-append) is
    tolerated, but a structurally invalid record raises.

    Raises:
        ValidationError: for unreadable files or schema-mismatched rows.
    """
    path = Path(path)
    if not path.exists():
        return ResultSet(records=())
    records = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                continue  # torn final append from a killed producer
            raise ValidationError(
                f"{path}:{lineno}: undecodable JSONL record: {exc}"
            ) from exc
        records.append(RunRecord.from_payload(payload))
    return ResultSet(records=tuple(records))


__all__ = [
    "SCHEMA",
    "SOURCES",
    "SOURCE_CAMPAIGN",
    "SOURCE_CROSSCHECK",
    "SOURCE_FUZZ",
    "SOURCE_PIPELINE",
    "Items",
    "ResultSet",
    "ResultSink",
    "RunRecord",
    "freeze_items",
    "read_jsonl",
]
