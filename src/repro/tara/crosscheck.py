"""TARA-HARA cross-check (paper §II-B).

"Cybersecurity experts collect ... the damage scenarios ... that are
assumed to be safety related.  With safety experts and their consolidated
HARA, they systematically crosscheck hazard events from the HARA against
damage scenarios from the TARA."  Two outcomes exist per damage scenario:

1. **ALIGNED** -- the damage scenario is comparable to some hazardous
   event(s); it can then be refined "through the systematic process of the
   HARA" (driving-scenario catalogs, E/S/C rating).
2. **SECURITY_ONLY** -- the damage scenario is purely cybersecurity
   motivated ("motivated by malicious attacks, not by faults of the SUT")
   and has no HARA counterpart.

The matcher pairs damage scenarios with hazard ratings by asset/function
reference and by lexical overlap of their consequence texts; every match is
reported with its evidence so safety and security engineers can confirm or
override it -- the library automates the bookkeeping, not the judgement.
"""

from __future__ import annotations

import dataclasses
import enum
import re

from repro.model.safety import HazardRating
from repro.results import SOURCE_CROSSCHECK, ResultSet, RunRecord, freeze_items
from repro.tara.damage import DamageScenario

_STOPWORDS = frozenset(
    "a an and are as at be by can for from in into is it may no not of on "
    "or so that the their this to with without".split()
)


class CrossCheckOutcome(enum.Enum):
    """Classification of one damage scenario after the cross-check."""

    ALIGNED = "aligned with hazardous event(s)"
    SECURITY_ONLY = "cybersecurity-only (no HARA overlap)"


@dataclasses.dataclass(frozen=True)
class CrossCheckEntry:
    """The cross-check result for one damage scenario.

    Attributes:
        damage: The damage scenario examined.
        outcome: ALIGNED or SECURITY_ONLY.
        matched_ratings: The hazard ratings judged comparable (empty for
            SECURITY_ONLY entries).
        evidence: Human-readable justification of each match.
    """

    damage: DamageScenario
    outcome: CrossCheckOutcome
    matched_ratings: tuple[HazardRating, ...] = ()
    evidence: tuple[str, ...] = ()

    def to_record(self) -> RunRecord:
        """This entry as a uniform :class:`~repro.results.RunRecord`.

        Cross-check entries carry no pass/fail semantics (both outcomes
        are legitimate §II-B classifications), so ``passed`` is ``None``.
        """
        functions = tuple(
            dict.fromkeys(
                rating.function.identifier for rating in self.matched_ratings
            )
        )
        attrs = {}
        if self.damage.asset:
            attrs["asset"] = self.damage.asset
        if functions:
            attrs["functions"] = ";".join(functions)
        return RunRecord(
            source=SOURCE_CROSSCHECK,
            subject=self.damage.identifier,
            verdict=self.outcome.name,
            passed=None,
            family=self.outcome.name.lower().replace("_", "-"),
            metrics=freeze_items(
                {"matched_ratings": len(self.matched_ratings)}
            ),
            attrs=freeze_items(attrs),
            notes="; ".join(self.evidence),
        )


@dataclasses.dataclass(frozen=True)
class CrossCheckReport:
    """Full TARA-HARA cross-check result."""

    entries: tuple[CrossCheckEntry, ...]

    @property
    def aligned(self) -> tuple[CrossCheckEntry, ...]:
        """Entries aligned with hazardous events (option 1 of §II-B)."""
        return tuple(
            entry
            for entry in self.entries
            if entry.outcome is CrossCheckOutcome.ALIGNED
        )

    @property
    def security_only(self) -> tuple[CrossCheckEntry, ...]:
        """Purely cybersecurity-motivated entries (option 2 of §II-B)."""
        return tuple(
            entry
            for entry in self.entries
            if entry.outcome is CrossCheckOutcome.SECURITY_ONLY
        )

    def to_result_set(self) -> ResultSet:
        """Every entry as a :class:`~repro.results.RunRecord` set."""
        return ResultSet.of(entry.to_record() for entry in self.entries)

    def uncovered_ratings(
        self, ratings: list[HazardRating]
    ) -> tuple[HazardRating, ...]:
        """Hazard ratings no damage scenario aligned with.

        Supports the reverse completeness question: are there hazards the
        security analysis never considered as attack consequences?
        """
        matched: set[int] = set()
        for entry in self.entries:
            matched.update(id(rating) for rating in entry.matched_ratings)
        return tuple(
            rating for rating in ratings if id(rating) not in matched
        )


def cross_check(
    damage_scenarios: list[DamageScenario],
    hazard_ratings: list[HazardRating],
    min_overlap: float = 0.2,
) -> CrossCheckReport:
    """Run the TARA-HARA cross-check.

    A damage scenario aligns with a hazard rating when their consequence
    texts share at least ``min_overlap`` (Jaccard) significant words, or
    when the damage scenario's asset name appears in the rating's function
    name.  Non-safety-relevant damage scenarios are SECURITY_ONLY by
    definition (they have nothing to align).

    Args:
        damage_scenarios: TARA output.
        hazard_ratings: HARA output (rated rows; N/A rows are skipped).
        min_overlap: Jaccard threshold on significant-word sets.
    """
    rated = [rating for rating in hazard_ratings if rating.is_rated]
    entries: list[CrossCheckEntry] = []
    for damage in damage_scenarios:
        matches: list[HazardRating] = []
        evidence: list[str] = []
        if damage.is_safety_relevant:
            for rating in rated:
                reason = _match_reason(damage, rating, min_overlap)
                if reason:
                    matches.append(rating)
                    evidence.append(reason)
        outcome = (
            CrossCheckOutcome.ALIGNED
            if matches
            else CrossCheckOutcome.SECURITY_ONLY
        )
        entries.append(
            CrossCheckEntry(
                damage=damage,
                outcome=outcome,
                matched_ratings=tuple(matches),
                evidence=tuple(evidence),
            )
        )
    return CrossCheckReport(entries=tuple(entries))


def _match_reason(
    damage: DamageScenario, rating: HazardRating, min_overlap: float
) -> str | None:
    """Return an evidence string when damage and rating are comparable."""
    if damage.asset and damage.asset.lower() in rating.function.name.lower():
        return (
            f"asset {damage.asset!r} appears in function "
            f"{rating.function.identifier} ({rating.function.name!r})"
        )
    damage_words = _significant_words(damage.description)
    hazard_words = _significant_words(
        f"{rating.hazard} {rating.hazardous_event}"
    )
    if not damage_words or not hazard_words:
        return None
    intersection = damage_words & hazard_words
    union = damage_words | hazard_words
    overlap = len(intersection) / len(union)
    if overlap >= min_overlap:
        shared = ", ".join(sorted(intersection))
        return (
            f"consequence texts overlap {overlap:.0%} "
            f"(shared terms: {shared})"
        )
    return None


def _significant_words(text: str) -> set[str]:
    """Lower-cased word set minus stopwords and short tokens."""
    words = re.findall(r"[a-zA-Z]+", text.lower())
    return {
        word for word in words if len(word) > 2 and word not in _STOPWORDS
    }


__all__ = [
    "CrossCheckEntry",
    "CrossCheckOutcome",
    "CrossCheckReport",
    "cross_check",
]
