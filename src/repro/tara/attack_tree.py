"""Attack trees and attack-path enumeration (paper §II-B item 2).

"The TARA attack trees (with the goal as root node and ways of achieving
that goal as paths from leaf nodes) provide a methodical way to describing
the security of systems ...  The attack trees are used to create TARA
attack paths, which define the interfaces for protocol-guided automated or
semi-automated fuzz testing."

The tree model is the classical AND/OR tree:

* a **leaf** is an atomic attacker action with an optional
  :class:`~repro.tara.feasibility.AttackPotential`,
* an **OR node** is achieved by any one child,
* an **AND node** requires all children.

Path enumeration produces every minimal cut -- each is an *attack path*
whose aggregate potential combines the steps (max of each factor would be
optimistic; we sum elapsed time and take the max of the other factors,
matching common TARA tooling).  Coverage bookkeeping ("the coverage of
tested protocol can then be measured with percent") marks paths as tested.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.errors import ValidationError
from repro.tara.feasibility import (
    AttackPotential,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
)


@dataclasses.dataclass(frozen=True)
class AttackStep:
    """A leaf: one atomic attacker action.

    Attributes:
        action: What the attacker does ("obtain valid session token").
        interface: The interface exercised; attack paths inherit the union
            of their steps' interfaces ("define the interfaces for ...
            fuzz testing").
        potential: Attack-potential vector of this step alone.
    """

    action: str
    interface: str = ""
    potential: AttackPotential = AttackPotential()

    def __post_init__(self) -> None:
        if not self.action:
            raise ValidationError("attack step needs an action")


@dataclasses.dataclass(frozen=True)
class AttackNode:
    """An internal AND/OR node of the attack tree.

    Attributes:
        label: Subgoal text ("gain bus access").
        operator: ``"OR"`` (any child suffices) or ``"AND"`` (all needed).
        children: Child nodes or leaf steps, at least one.
    """

    label: str
    operator: str
    children: tuple["AttackNode | AttackStep", ...]

    def __post_init__(self) -> None:
        if self.operator not in ("AND", "OR"):
            raise ValidationError(
                f"attack node {self.label!r}: operator must be AND or OR, "
                f"got {self.operator!r}"
            )
        if not self.children:
            raise ValidationError(
                f"attack node {self.label!r} must have at least one child"
            )


def or_node(label: str, *children: AttackNode | AttackStep) -> AttackNode:
    """Build an OR node (any child achieves the subgoal)."""
    return AttackNode(label=label, operator="OR", children=children)


def and_node(label: str, *children: AttackNode | AttackStep) -> AttackNode:
    """Build an AND node (all children required)."""
    return AttackNode(label=label, operator="AND", children=children)


@dataclasses.dataclass(frozen=True)
class AttackPath:
    """One minimal way to achieve the tree's root goal.

    Attributes:
        goal: The root goal text.
        steps: The leaf actions, in tree order.
    """

    goal: str
    steps: tuple[AttackStep, ...]

    @property
    def interfaces(self) -> tuple[str, ...]:
        """Distinct interfaces exercised, in step order."""
        seen = dict.fromkeys(
            step.interface for step in self.steps if step.interface
        )
        return tuple(seen)

    @property
    def potential(self) -> AttackPotential:
        """Aggregate attack potential of the whole path.

        Elapsed time accumulates across steps (attacks are sequential);
        expertise, knowledge, window and equipment are driven by the most
        demanding step.
        """
        total_time = sum(int(step.potential.elapsed_time) for step in self.steps)
        time_scale = sorted(ElapsedTime, key=int)
        elapsed = time_scale[0]
        for candidate in time_scale:
            if int(candidate) <= total_time:
                elapsed = candidate
        return AttackPotential(
            elapsed_time=elapsed,
            expertise=Expertise(
                max(int(step.potential.expertise) for step in self.steps)
            ),
            knowledge=Knowledge(
                max(int(step.potential.knowledge) for step in self.steps)
            ),
            window=WindowOfOpportunity(
                max(int(step.potential.window) for step in self.steps)
            ),
            equipment=Equipment(
                max(int(step.potential.equipment) for step in self.steps)
            ),
        )

    def describe(self) -> str:
        """Render the path as 'goal <- step1 -> step2 -> ...'."""
        chain = " -> ".join(step.action for step in self.steps)
        return f"{self.goal}: {chain}"


@dataclasses.dataclass
class AttackTree:
    """An attack tree with the attacker goal as root.

    Attributes:
        goal: The root goal ("open vehicle without owner key").
        root: The root AND/OR node (or a single step for trivial trees).
    """

    goal: str
    root: AttackNode | AttackStep
    _tested: set[tuple[str, ...]] = dataclasses.field(default_factory=set)

    def paths(self) -> tuple[AttackPath, ...]:
        """Enumerate every minimal attack path (cut set) of the tree."""
        return tuple(
            AttackPath(goal=self.goal, steps=steps)
            for steps in _enumerate(self.root)
        )

    def mark_tested(self, path: AttackPath) -> None:
        """Record that a path has been exercised by a test.

        Raises:
            ValidationError: when the path does not belong to this tree.
        """
        key = tuple(step.action for step in path.steps)
        known = {
            tuple(step.action for step in candidate.steps)
            for candidate in self.paths()
        }
        if key not in known:
            raise ValidationError(
                f"path {key} is not a path of attack tree {self.goal!r}"
            )
        self._tested.add(key)

    @property
    def coverage(self) -> float:
        """Fraction of attack paths exercised (the §II-B 'percent')."""
        all_paths = self.paths()
        if not all_paths:
            return 1.0
        return len(self._tested) / len(all_paths)

    def untested_paths(self) -> tuple[AttackPath, ...]:
        """The attack paths not yet exercised."""
        return tuple(
            path
            for path in self.paths()
            if tuple(step.action for step in path.steps) not in self._tested
        )

    def interfaces(self) -> tuple[str, ...]:
        """All interfaces named anywhere in the tree (fuzz-target list)."""
        seen: dict[str, None] = {}
        for path in self.paths():
            for interface in path.interfaces:
                seen.setdefault(interface)
        return tuple(seen)


def _enumerate(
    node: AttackNode | AttackStep,
) -> tuple[tuple[AttackStep, ...], ...]:
    """Recursive cut-set enumeration for AND/OR trees."""
    if isinstance(node, AttackStep):
        return ((node,),)
    child_sets = [_enumerate(child) for child in node.children]
    if node.operator == "OR":
        merged: list[tuple[AttackStep, ...]] = []
        for child_paths in child_sets:
            merged.extend(child_paths)
        return tuple(merged)
    # AND: cartesian product of the children's path sets, concatenated.
    combined: list[tuple[AttackStep, ...]] = []
    for combo in itertools.product(*child_sets):
        flattened: tuple[AttackStep, ...] = ()
        for part in combo:
            flattened = flattened + part
        combined.append(flattened)
    return tuple(combined)


__all__ = [
    "AttackNode",
    "AttackPath",
    "AttackStep",
    "AttackTree",
    "and_node",
    "or_node",
]
