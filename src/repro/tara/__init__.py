"""Threat Analysis and Risk Assessment (paper §II-B).

The TARA package covers the security-side analyses SaSeVAL consumes:

* damage scenarios with S/F/O/P impact rating (:mod:`repro.tara.damage`),
* attack-potential-based feasibility (:mod:`repro.tara.feasibility`),
* the risk matrix and CAL assignment (:mod:`repro.tara.risk`),
* AND/OR attack trees with path enumeration and coverage accounting
  (:mod:`repro.tara.attack_tree`),
* the TARA-HARA cross-check aligning damage scenarios with hazardous
  events (:mod:`repro.tara.crosscheck`).
"""

from repro.tara.attack_tree import (
    AttackNode,
    AttackPath,
    AttackStep,
    AttackTree,
    and_node,
    or_node,
)
from repro.tara.crosscheck import (
    CrossCheckEntry,
    CrossCheckOutcome,
    CrossCheckReport,
    cross_check,
)
from repro.tara.damage import (
    DamageScenario,
    ImpactCategory,
    safety_relevant,
)
from repro.tara.fuzzing import (
    MUTATION_OPERATORS,
    FuzzCampaign,
    FuzzCase,
    FuzzOutcome,
    FuzzPlan,
    FuzzReport,
    MessageFuzzer,
)
from repro.tara.feasibility import (
    AttackPotential,
    ElapsedTime,
    Equipment,
    Expertise,
    Knowledge,
    WindowOfOpportunity,
    rate_feasibility,
)
from repro.tara.risk import (
    RISK_MATRIX,
    RiskAssessment,
    determine_cal,
    determine_risk,
)

__all__ = [
    "AttackNode",
    "AttackPath",
    "AttackPotential",
    "AttackStep",
    "AttackTree",
    "CrossCheckEntry",
    "CrossCheckOutcome",
    "CrossCheckReport",
    "DamageScenario",
    "ElapsedTime",
    "Equipment",
    "Expertise",
    "FuzzCampaign",
    "FuzzCase",
    "FuzzOutcome",
    "FuzzPlan",
    "FuzzReport",
    "MessageFuzzer",
    "ImpactCategory",
    "Knowledge",
    "MUTATION_OPERATORS",
    "RISK_MATRIX",
    "RiskAssessment",
    "WindowOfOpportunity",
    "and_node",
    "cross_check",
    "determine_cal",
    "determine_risk",
    "or_node",
    "rate_feasibility",
    "safety_relevant",
]
