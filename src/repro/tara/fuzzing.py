"""Protocol-guided fuzz testing from TARA attack paths (paper §II-B.2).

"The attack trees are used to create TARA attack paths, which define the
interfaces for protocol-guided automated or semi-automated fuzz testing.
The coverage of tested protocol can then be measured with percent."

This module closes that loop against the simulator substrate:

* :class:`FuzzPlan` derives the fuzz targets (interfaces) from an attack
  tree's paths,
* :class:`MessageFuzzer` deterministically mutates a valid seed message
  along protocol dimensions (field deletion, type confusion, boundary
  values, counter/timestamp abuse, MAC corruption),
* :class:`FuzzCampaign` fires the mutants at a channel/ECU and collects a
  :class:`FuzzReport`: which mutants were rejected by which control,
  which were silently accepted (potential robustness gaps), and the
  protocol coverage percentage.

Everything is deterministic (seeded) so fuzz findings are reproducible --
the same RQ3 requirement the attack descriptions answer.  Multi-interface
campaigns fan out through the :mod:`repro.runtime` execution layer
(:meth:`FuzzCampaign.fuzz_interfaces`): each interface gets an
independent fuzzer seeded from the campaign seed and the interface name,
so outcomes are identical on the serial and thread backends regardless of
completion order.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Mapping

from repro.errors import SimulationError, ValidationError
from repro.results import SOURCE_FUZZ, ResultSet, RunRecord, freeze_items
from repro.runtime import derive_seed
from repro.sim.clock import SimClock
from repro.sim.controls.base import ControlPipeline
from repro.sim.network import Message
from repro.tara.attack_tree import AttackTree

#: The mutation operators, in application order.  Each operator takes the
#: seed payload and returns (mutant name, mutated Message kwargs).
MUTATION_OPERATORS = (
    "drop_field",
    "null_field",
    "type_confusion",
    "boundary_low",
    "boundary_high",
    "counter_replay",
    "counter_jump",
    "stale_timestamp",
    "future_timestamp",
    "corrupt_mac",
    "strip_mac",
    "oversized_payload",
)


@dataclasses.dataclass(frozen=True)
class FuzzCase:
    """One generated mutant."""

    name: str
    operator: str
    message: Message


@dataclasses.dataclass(frozen=True)
class FuzzOutcome:
    """The SUT's reaction to one mutant."""

    case: FuzzCase
    rejected: bool
    rejecting_control: str = ""
    reason: str = ""

    def to_record(self) -> RunRecord:
        """This outcome as a uniform :class:`~repro.results.RunRecord`."""
        attrs = {"kind": self.case.message.kind}
        if self.rejecting_control:
            attrs["control"] = self.rejecting_control
        return RunRecord(
            source=SOURCE_FUZZ,
            subject=self.case.name,
            verdict="rejected" if self.rejected else "accepted",
            passed=self.rejected,
            family=self.case.operator,
            attrs=freeze_items(attrs),
            notes=self.reason,
        )


@dataclasses.dataclass(frozen=True)
class FuzzReport:
    """Aggregated campaign result."""

    outcomes: tuple[FuzzOutcome, ...]
    interfaces_planned: tuple[str, ...]
    interfaces_fuzzed: tuple[str, ...]

    @property
    def rejected(self) -> tuple[FuzzOutcome, ...]:
        """Mutants stopped by a control (the healthy outcome)."""
        return tuple(o for o in self.outcomes if o.rejected)

    @property
    def accepted(self) -> tuple[FuzzOutcome, ...]:
        """Mutants the SUT accepted -- robustness findings to triage."""
        return tuple(o for o in self.outcomes if not o.rejected)

    @property
    def rejection_rate(self) -> float:
        """Fraction of mutants rejected."""
        if not self.outcomes:
            return 1.0
        return len(self.rejected) / len(self.outcomes)

    @property
    def interface_coverage(self) -> float:
        """'The coverage of tested protocol ... measured with percent'."""
        if not self.interfaces_planned:
            return 1.0
        fuzzed = set(self.interfaces_fuzzed)
        return len(
            [i for i in self.interfaces_planned if i in fuzzed]
        ) / len(self.interfaces_planned)

    def to_result_set(self) -> ResultSet:
        """Every mutant outcome as a :class:`~repro.results.RunRecord` set."""
        return ResultSet.of(outcome.to_record() for outcome in self.outcomes)

    def by_operator(self) -> dict[str, tuple[int, int]]:
        """Operator -> (rejected, accepted) counts."""
        stats: dict[str, list[int]] = {}
        for outcome in self.outcomes:
            entry = stats.setdefault(outcome.case.operator, [0, 0])
            entry[0 if outcome.rejected else 1] += 1
        return {key: (value[0], value[1]) for key, value in stats.items()}


class MessageFuzzer:
    """Deterministic protocol-dimension mutation of a seed message."""

    def __init__(self, seed: int = 1) -> None:
        self._rng = random.Random(seed)

    def mutate(self, message: Message) -> tuple[FuzzCase, ...]:
        """Generate one mutant per applicable operator."""
        cases: list[FuzzCase] = []
        for operator in MUTATION_OPERATORS:
            mutant = self._apply(operator, message)
            if mutant is not None:
                cases.append(
                    FuzzCase(
                        name=f"{message.kind}/{operator}",
                        operator=operator,
                        message=mutant,
                    )
                )
        return tuple(cases)

    def _apply(self, operator: str, message: Message) -> Message | None:
        payload = dict(message.payload)
        fields = sorted(payload)

        def rebuild(**overrides: Any) -> Message:
            kwargs: dict[str, Any] = dict(
                kind=message.kind,
                sender=message.sender,
                payload=payload,
                counter=message.counter,
                timestamp=message.timestamp,
                auth_tag=message.auth_tag,
                location=message.location,
            )
            kwargs.update(overrides)
            return Message(**kwargs)

        if operator == "drop_field":
            if not fields:
                return None
            del payload[self._rng.choice(fields)]
            return rebuild()
        if operator == "null_field":
            if not fields:
                return None
            payload[self._rng.choice(fields)] = None
            return rebuild()
        if operator == "type_confusion":
            if not fields:
                return None
            field = self._rng.choice(fields)
            payload[field] = str(payload[field]) + "-confused"
            return rebuild()
        if operator == "boundary_low":
            numeric = [f for f in fields if isinstance(payload[f], (int, float))]
            if not numeric:
                return None
            payload[self._rng.choice(numeric)] = -(2 ** 31)
            return rebuild()
        if operator == "boundary_high":
            numeric = [f for f in fields if isinstance(payload[f], (int, float))]
            if not numeric:
                return None
            payload[self._rng.choice(numeric)] = 2 ** 31 - 1
            return rebuild()
        if operator == "counter_replay":
            return rebuild(counter=max(0, message.counter - 1))
        if operator == "counter_jump":
            return rebuild(counter=message.counter + 10_000)
        if operator == "stale_timestamp":
            return rebuild(timestamp=max(0.0, message.timestamp - 60_000.0))
        if operator == "future_timestamp":
            return rebuild(timestamp=message.timestamp + 60_000.0)
        if operator == "corrupt_mac":
            if not message.auth_tag:
                return None
            flipped = ("0" if message.auth_tag[0] != "0" else "1")
            return rebuild(auth_tag=flipped + message.auth_tag[1:])
        if operator == "strip_mac":
            if not message.auth_tag:
                return None
            return rebuild(auth_tag="")
        if operator == "oversized_payload":
            payload["padding"] = "X" * 4096
            return rebuild()
        raise SimulationError(f"unknown mutation operator {operator!r}")


@dataclasses.dataclass(frozen=True)
class FuzzPlan:
    """The interfaces an attack tree designates for fuzzing."""

    tree_goal: str
    interfaces: tuple[str, ...]

    @classmethod
    def from_tree(cls, tree: AttackTree) -> "FuzzPlan":
        """Derive the fuzz-target interfaces from the tree's paths."""
        return cls(tree_goal=tree.goal, interfaces=tree.interfaces())


class FuzzCampaign:
    """Runs mutants through an ECU's control pipeline and reports.

    The campaign drives the pipeline directly (admission is where
    protocol robustness lives); channel latency is irrelevant to the
    verdicts and skipping it keeps campaigns fast and exact.

    Two driving styles exist: :meth:`fuzz_interface` walks one interface
    at a time with the campaign's own stateful fuzzer (the original,
    order-dependent protocol), while :meth:`fuzz_interfaces` fans a whole
    interface map out over a :mod:`repro.runtime` backend with
    per-interface derived seeds, producing backend- and order-independent
    results.
    """

    def __init__(
        self,
        clock: SimClock,
        pipeline: ControlPipeline,
        plan: FuzzPlan,
        seed: int = 1,
    ) -> None:
        self._clock = clock
        self._pipeline = pipeline
        self._plan = plan
        self._seed = seed
        self._fuzzer = MessageFuzzer(seed=seed)
        self._outcomes: list[FuzzOutcome] = []
        self._fuzzed_interfaces: list[str] = []

    def fuzz_interface(
        self, interface: str, seed_message: Message
    ) -> tuple[FuzzOutcome, ...]:
        """Fuzz one interface with mutants of ``seed_message``.

        Raises:
            SimulationError: when the interface is not part of the plan
                (fuzzing outside the TARA-designated surface is a process
                error, not a convenience).
        """
        if interface not in self._plan.interfaces:
            raise SimulationError(
                f"interface {interface!r} is not designated by the attack "
                f"paths of {self._plan.tree_goal!r}"
            )
        self._fuzzed_interfaces.append(interface)
        outcomes: list[FuzzOutcome] = []
        for case in self._fuzzer.mutate(seed_message):
            decision = self._pipeline.admit(case.message)
            outcome = FuzzOutcome(
                case=case,
                rejected=not decision.allowed,
                rejecting_control=decision.control,
                reason=decision.reason,
            )
            outcomes.append(outcome)
            self._outcomes.append(outcome)
        return tuple(outcomes)

    def _mutate_interface(
        self, interface: str, seed_message: Message
    ) -> tuple[FuzzCase, ...]:
        """One parallel job: the interface's independent mutant batch."""
        fuzzer = MessageFuzzer(seed=derive_seed(self._seed, interface))
        return fuzzer.mutate(seed_message)

    def fuzz_interfaces(
        self,
        seeds: Mapping[str, Message],
        *,
        backend: "ExecutionBackend | str | None" = None,
        jobs: int | None = None,
    ) -> tuple[FuzzOutcome, ...]:
        """Fuzz several interfaces through the execution runtime.

        ``seeds`` maps each interface to its valid seed message.  Mutant
        *generation* fans out over the backend with an independent
        deterministic fuzzer per interface (seeded from the campaign
        seed and the interface name); *admission* then runs in the
        caller's thread, in ``seeds`` iteration order -- stateful
        controls (replay guards, counters) therefore see one canonical
        message sequence, and the outcome list is bit-identical on the
        serial and thread backends.  ``jobs=N`` alone selects the thread
        backend; process backends are refused: control pipelines are
        live simulator objects on this side of a pickle boundary.

        Campaign state (:meth:`report`) is only updated once every
        interface generated and admitted cleanly -- a failure leaves the
        campaign exactly as it was.

        Raises:
            SimulationError: when an interface is outside the plan.
            ValidationError: for a non-in-process backend.
            ExecutionError: when an interface's mutation job raised.
        """
        from repro.runtime import Runtime, backend_from_spec

        if backend is None and jobs is not None and jobs > 1:
            backend = "thread"  # the in-process parallel default here
        resolved = backend_from_spec(backend, jobs)
        if not resolved.shares_memory:
            raise ValidationError(
                "fuzz campaigns run on in-process backends (serial or "
                "thread): the control pipeline under test cannot cross a "
                "process boundary"
            )
        interfaces = list(seeds)
        for interface in interfaces:
            if interface not in self._plan.interfaces:
                raise SimulationError(
                    f"interface {interface!r} is not designated by the "
                    f"attack paths of {self._plan.tree_goal!r}"
                )
        # Per-interface determinism comes from _mutate_interface's own
        # derive_seed(self._seed, interface); the runtime's seeded mode
        # is unused here.
        runtime = Runtime(resolved)
        try:
            results = runtime.run(
                lambda interface: self._mutate_interface(
                    interface, seeds[interface]
                ),
                interfaces,
            )
        finally:
            if backend is None or isinstance(backend, str):
                resolved.shutdown()
        batches = [result.unwrap() for result in results]  # fail before admit
        merged: list[FuzzOutcome] = []
        for cases in batches:
            for case in cases:
                decision = self._pipeline.admit(case.message)
                merged.append(
                    FuzzOutcome(
                        case=case,
                        rejected=not decision.allowed,
                        rejecting_control=decision.control,
                        reason=decision.reason,
                    )
                )
        self._fuzzed_interfaces.extend(interfaces)
        self._outcomes.extend(merged)
        return tuple(merged)

    def report(self) -> FuzzReport:
        """The campaign report with protocol-coverage percent."""
        return FuzzReport(
            outcomes=tuple(self._outcomes),
            interfaces_planned=self._plan.interfaces,
            interfaces_fuzzed=tuple(dict.fromkeys(self._fuzzed_interfaces)),
        )


__all__ = [
    "FuzzCampaign",
    "FuzzCase",
    "FuzzOutcome",
    "FuzzPlan",
    "FuzzReport",
    "MUTATION_OPERATORS",
    "MessageFuzzer",
]
