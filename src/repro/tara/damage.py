"""Damage scenarios and impact rating (ISO/SAE 21434, paper §II-B).

A TARA starts from *damage scenarios*: adverse end-consequences for road
users resulting from the compromise of an asset.  Each damage scenario is
rated for impact in four categories -- Safety, Financial, Operational,
Privacy (S/F/O/P).  Safety-relevant damage scenarios are exactly the ones
the TARA-HARA cross-check (paper §II-B) aligns with hazardous events.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ValidationError
from repro.model.ratings import ImpactRating


class ImpactCategory(enum.Enum):
    """The four ISO/SAE 21434 impact categories."""

    SAFETY = "Safety"
    FINANCIAL = "Financial"
    OPERATIONAL = "Operational"
    PRIVACY = "Privacy"


@dataclasses.dataclass(frozen=True)
class DamageScenario:
    """An adverse end-consequence of compromising an asset.

    Attributes:
        identifier: Short unique handle, e.g. ``"DS-01"``.
        description: What happens to road users / the item.
        asset: The compromised asset's name.
        impacts: Rating per impact category.  Categories not listed
            default to :attr:`ImpactRating.NEGLIGIBLE`.
    """

    identifier: str
    description: str
    asset: str
    impacts: tuple[tuple[ImpactCategory, ImpactRating], ...]

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ValidationError("damage scenario needs an identifier")
        if not self.description:
            raise ValidationError(
                f"damage scenario {self.identifier} needs a description"
            )
        seen: set[ImpactCategory] = set()
        for category, __ in self.impacts:
            if category in seen:
                raise ValidationError(
                    f"damage scenario {self.identifier}: duplicate impact "
                    f"category {category.value}"
                )
            seen.add(category)

    def impact(self, category: ImpactCategory) -> ImpactRating:
        """The rating for one category (NEGLIGIBLE when unrated)."""
        for entry_category, rating in self.impacts:
            if entry_category is category:
                return rating
        return ImpactRating.NEGLIGIBLE

    @property
    def safety_impact(self) -> ImpactRating:
        """Shortcut for the safety-category impact."""
        return self.impact(ImpactCategory.SAFETY)

    @property
    def is_safety_relevant(self) -> bool:
        """True when the safety impact is above negligible.

        These are the damage scenarios the TARA-HARA cross-check collects:
        "cybersecurity experts collecting the damage scenarios ... that are
        assumed to be safety related".
        """
        return self.safety_impact > ImpactRating.NEGLIGIBLE

    @property
    def overall_impact(self) -> ImpactRating:
        """The maximum rating across categories (worst-case aggregation)."""
        best = ImpactRating.NEGLIGIBLE
        for __, rating in self.impacts:
            if rating > best:
                best = rating
        return best


def safety_relevant(
    scenarios: list[DamageScenario],
) -> tuple[DamageScenario, ...]:
    """Filter damage scenarios with above-negligible safety impact."""
    return tuple(
        scenario for scenario in scenarios if scenario.is_safety_relevant
    )


__all__ = [
    "DamageScenario",
    "ImpactCategory",
    "safety_relevant",
]
