"""Attack feasibility rating (ISO/SAE 21434 attack-potential approach).

The attack-potential-based approach rates an attack path on five factors --
elapsed time, specialist expertise, knowledge of the item, window of
opportunity and equipment -- sums the factor values into an *attack
potential*, and maps the sum to an aggregated
:class:`~repro.model.ratings.FeasibilityRating` (the higher the required
potential, the lower the feasibility).

Factor values follow the common Annex-G style scale; the thresholds are the
ones used throughout automotive TARA practice (e.g. the Kugler Maag TARA
whitepaper the paper cites as [9]).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.model.ratings import FeasibilityRating


class ElapsedTime(enum.IntEnum):
    """Time needed to identify and exploit the weakness."""

    ONE_DAY = 0
    ONE_WEEK = 1
    ONE_MONTH = 4
    SIX_MONTHS = 17
    BEYOND_SIX_MONTHS = 19


class Expertise(enum.IntEnum):
    """Attacker capability required."""

    LAYMAN = 0
    PROFICIENT = 3
    EXPERT = 6
    MULTIPLE_EXPERTS = 8


class Knowledge(enum.IntEnum):
    """Knowledge of the item or component required."""

    PUBLIC = 0
    RESTRICTED = 3
    CONFIDENTIAL = 7
    STRICTLY_CONFIDENTIAL = 11


class WindowOfOpportunity(enum.IntEnum):
    """Access conditions (availability of the target to the attacker)."""

    UNLIMITED = 0
    EASY = 1
    MODERATE = 4
    DIFFICULT = 10


class Equipment(enum.IntEnum):
    """Tools required to execute the attack."""

    STANDARD = 0
    SPECIALIZED = 4
    BESPOKE = 7
    MULTIPLE_BESPOKE = 9


@dataclasses.dataclass(frozen=True)
class AttackPotential:
    """The five-factor attack-potential vector for one attack path."""

    elapsed_time: ElapsedTime = ElapsedTime.ONE_DAY
    expertise: Expertise = Expertise.LAYMAN
    knowledge: Knowledge = Knowledge.PUBLIC
    window: WindowOfOpportunity = WindowOfOpportunity.UNLIMITED
    equipment: Equipment = Equipment.STANDARD

    @property
    def value(self) -> int:
        """Sum of the five factor values."""
        return (
            int(self.elapsed_time)
            + int(self.expertise)
            + int(self.knowledge)
            + int(self.window)
            + int(self.equipment)
        )

    @property
    def feasibility(self) -> FeasibilityRating:
        """Map the potential sum to an aggregated feasibility rating.

        Thresholds (attack potential required -> feasibility):
        0-13 HIGH, 14-19 MEDIUM, 20-24 LOW, >=25 VERY_LOW.
        """
        total = self.value
        if total < 14:
            return FeasibilityRating.HIGH
        if total < 20:
            return FeasibilityRating.MEDIUM
        if total < 25:
            return FeasibilityRating.LOW
        return FeasibilityRating.VERY_LOW


def rate_feasibility(
    elapsed_time: ElapsedTime = ElapsedTime.ONE_DAY,
    expertise: Expertise = Expertise.LAYMAN,
    knowledge: Knowledge = Knowledge.PUBLIC,
    window: WindowOfOpportunity = WindowOfOpportunity.UNLIMITED,
    equipment: Equipment = Equipment.STANDARD,
) -> FeasibilityRating:
    """One-shot helper: factor values in, aggregated feasibility out."""
    potential = AttackPotential(
        elapsed_time=elapsed_time,
        expertise=expertise,
        knowledge=knowledge,
        window=window,
        equipment=equipment,
    )
    return potential.feasibility


__all__ = [
    "AttackPotential",
    "ElapsedTime",
    "Equipment",
    "Expertise",
    "Knowledge",
    "WindowOfOpportunity",
    "rate_feasibility",
]
