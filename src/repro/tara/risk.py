"""Cybersecurity risk determination and CAL assignment (ISO/SAE 21434).

Risk combines the *impact* of a damage scenario with the *attack
feasibility* of the threat scenario that realises it.  We use the standard
5-level risk matrix (risk value 1..5) and derive the Cybersecurity
Assurance Level (CAL) from impact x exposure-style considerations; the CAL
then drives "the necessary level of testing" (paper §II-B item 3), which
:mod:`repro.core.prioritization` uses for RQ2.
"""

from __future__ import annotations

import dataclasses

from repro.model.ratings import (
    CalLevel,
    FeasibilityRating,
    ImpactRating,
    RiskLevel,
)
from repro.tara.damage import DamageScenario
from repro.tara.feasibility import AttackPotential

#: Risk matrix: (impact, feasibility) -> risk value, per the ISO/SAE 21434
#: annex-H style matrix.  Rows: impact; columns: feasibility.
RISK_MATRIX: dict[tuple[ImpactRating, FeasibilityRating], RiskLevel] = {
    # Negligible impact is always risk 1 regardless of feasibility.
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.VERY_LOW): RiskLevel.R1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.LOW): RiskLevel.R1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.MEDIUM): RiskLevel.R1,
    (ImpactRating.NEGLIGIBLE, FeasibilityRating.HIGH): RiskLevel.R1,
    (ImpactRating.MODERATE, FeasibilityRating.VERY_LOW): RiskLevel.R1,
    (ImpactRating.MODERATE, FeasibilityRating.LOW): RiskLevel.R2,
    (ImpactRating.MODERATE, FeasibilityRating.MEDIUM): RiskLevel.R2,
    (ImpactRating.MODERATE, FeasibilityRating.HIGH): RiskLevel.R3,
    (ImpactRating.MAJOR, FeasibilityRating.VERY_LOW): RiskLevel.R1,
    (ImpactRating.MAJOR, FeasibilityRating.LOW): RiskLevel.R2,
    (ImpactRating.MAJOR, FeasibilityRating.MEDIUM): RiskLevel.R3,
    (ImpactRating.MAJOR, FeasibilityRating.HIGH): RiskLevel.R4,
    (ImpactRating.SEVERE, FeasibilityRating.VERY_LOW): RiskLevel.R2,
    (ImpactRating.SEVERE, FeasibilityRating.LOW): RiskLevel.R3,
    (ImpactRating.SEVERE, FeasibilityRating.MEDIUM): RiskLevel.R4,
    (ImpactRating.SEVERE, FeasibilityRating.HIGH): RiskLevel.R5,
}


def determine_risk(
    impact: ImpactRating, feasibility: FeasibilityRating
) -> RiskLevel:
    """Risk value for an (impact, feasibility) pair.

    >>> determine_risk(ImpactRating.SEVERE, FeasibilityRating.HIGH)
    <RiskLevel.R5: 5>
    """
    return RISK_MATRIX[(impact, feasibility)]


def determine_cal(
    impact: ImpactRating, feasibility: FeasibilityRating
) -> CalLevel:
    """Cybersecurity Assurance Level for a threat (ISO/SAE 21434 annex E).

    The CAL scales with impact and with how exposed the attack surface is;
    we approximate exposure by feasibility.  Severe-impact, highly feasible
    threats demand CAL4 (the deepest testing); negligible/VERY_LOW corners
    demand CAL1.
    """
    score = int(impact) + int(feasibility)
    if score >= 5:
        return CalLevel.CAL4
    if score >= 4:
        return CalLevel.CAL3
    if score >= 2:
        return CalLevel.CAL2
    return CalLevel.CAL1


@dataclasses.dataclass(frozen=True)
class RiskAssessment:
    """The assessed risk of one (damage scenario, attack path) pairing.

    Attributes:
        damage: The damage scenario realised.
        potential: The attack-potential vector of the enabling attack path.
        treatment: Free-text risk-treatment decision (avoid / reduce /
            share / retain), defaulting to reduction via security controls.
    """

    damage: DamageScenario
    potential: AttackPotential
    treatment: str = "reduce (security control)"

    @property
    def feasibility(self) -> FeasibilityRating:
        """Aggregated feasibility of the attack path."""
        return self.potential.feasibility

    @property
    def risk(self) -> RiskLevel:
        """Risk value from the matrix, using the worst-case impact."""
        return determine_risk(self.damage.overall_impact, self.feasibility)

    @property
    def safety_risk(self) -> RiskLevel:
        """Risk value considering only the safety impact category.

        This is the number SaSeVAL cares about: it ranks threats by their
        potential to violate safety goals (RQ2).
        """
        return determine_risk(self.damage.safety_impact, self.feasibility)

    @property
    def cal(self) -> CalLevel:
        """Required cybersecurity assurance level for testing depth."""
        return determine_cal(self.damage.overall_impact, self.feasibility)

    def requires_testing(self, risk_threshold: RiskLevel = RiskLevel.R2) -> bool:
        """True when the risk is at or above the given treatment threshold."""
        return self.risk >= risk_threshold


__all__ = [
    "RISK_MATRIX",
    "RiskAssessment",
    "determine_cal",
    "determine_risk",
]
