"""Use Case II -- Keyless Car Opener (paper §IV-B).

"The use cases are opening and closing a vehicle via smartphone, which
communicates via Bluetooth low energy with the car."  This module encodes
the complete published analysis:

* the HARA over the two functions (open / close via smartphone) with
  **20 ratings** whose derived distribution is exactly the paper's:
  7 N/A, 5 No-ASIL, 2 ASIL A, 4 ASIL B, 1 ASIL C, 1 ASIL D;
* the four safety goals SG01..SG04 with the published ASILs;
* the **27 safety attacks plus 2 privacy attacks** the application
  yielded, including AD08 (Table VII) verbatim, the CAN-bus flooding via
  forwarded Bluetooth requests, and the opening-command replay;
* justifications for the catalog threats outside this item;
* executable bindings for the detailed attacks (key forgery, replay,
  CAN flooding, jamming, usage profiling).
"""

from __future__ import annotations

import warnings

from repro.api import PipelineBuilder, UseCaseDefinition
from repro.core.derivation import AttackDeriver, AttackDescriptionSet
from repro.core.pipeline import SaSeValPipeline
from repro.dsl.compiler import BindingRegistry
from repro.hara.analysis import Hara
from repro.model.attack import AttackCategory
from repro.model.ratings import (
    Asil,
    Controllability as C,
    Exposure as E,
    FailureMode as FM,
    Severity as S,
)
from repro.model.safety import SafetyGoal
from repro.sim.attacks import (
    EavesdropAttack,
    FloodingAttack,
    JammingAttack,
    KeyForgeryAttack,
    ReplayAttack,
)
from repro.sim.ble import KIND_OPEN
from repro.sim.scenarios import KeylessEntryScenario
from repro.testing import oracles
from repro.testing.testcase import TestCase
from repro.threatlib.catalog import build_catalog
from repro.threatlib.library import ThreatLibrary

USE_CASE_NAME = "Use Case II - Keyless Car Opener"

#: Catalog threats not applicable to the keyless opener, with the
#: justification for the inductive audit.
JUSTIFICATIONS: dict[str, str] = {
    "1.1.1": "Road-side infrastructure is not part of the keyless-opener "
             "item.",
    "1.1.2": "Road-side infrastructure is not part of the keyless-opener "
             "item.",
    "1.2.1": "In-vehicle signage is not part of the keyless-opener item.",
    "1.2.2": "In-vehicle signage is not part of the keyless-opener item.",
    "2.3.1": "Workshop diagnostic access is organisationally controlled "
             "and outside the opener's validation scope.",
}


def build_hara() -> Hara:
    """The UC II HARA: 2 functions, 20 ratings, 4 safety goals."""
    hara = Hara(name=USE_CASE_NAME)
    rat01 = hara.add_function(
        "Rat01",
        "Open vehicle via smartphone",
        "Unlock the vehicle on an authenticated smartphone command over "
        "Bluetooth low energy.",
    )
    rat02 = hara.add_function(
        "Rat02",
        "Close vehicle via smartphone",
        "Lock the vehicle on an authenticated smartphone command over "
        "Bluetooth low energy.",
    )

    # -- Rat01: open (10 ratings, 2 N/A) ----------------------------------
    hara.rate(
        rat01, FM.NO,
        hazard="The owner cannot open the vehicle.",
        hazardous_event="Owner stranded; emergency access blocked",
        severity=S.S1, exposure=E.E4, controllability=C.C2,
    )  # ASIL A
    hara.rate(
        rat01, FM.NO,
        hazard="Opening unavailable in an emergency (person locked out in "
               "the cold).",
        hazardous_event="Exposure of a vulnerable person",
        severity=S.S2, exposure=E.E1, controllability=C.C3,
    )  # QM
    hara.rate(
        rat01, FM.UNINTENDED,
        hazard="The vehicle opens without any command.",
        hazardous_event="Theft; unsupervised child access to the vehicle",
        severity=S.S3, exposure=E.E4, controllability=C.C3,
    )  # ASIL D
    hara.rate(
        rat01, FM.UNINTENDED,
        hazard="The vehicle opens spontaneously in a supervised parking "
               "garage.",
        hazardous_event="Contents theft under supervision",
        severity=S.S2, exposure=E.E2, controllability=C.C2,
    )  # QM
    hara.rate_not_applicable(
        rat01, FM.TOO_EARLY,
        reason="Opening before a command is the Unintended case.",
    )
    hara.rate(
        rat01, FM.TOO_LATE,
        hazard="The vehicle opens long after the command; the owner "
               "assumes failure and walks away.",
        hazardous_event="Vehicle left open unattended",
        severity=S.S1, exposure=E.E3, controllability=C.C2,
    )  # QM
    hara.rate(
        rat01, FM.LESS,
        hazard="Only some doors open.",
        hazardous_event="Passenger uses the roadway-side door instead",
        severity=S.S1, exposure=E.E3, controllability=C.C1,
    )  # QM
    hara.rate_not_applicable(
        rat01, FM.MORE,
        reason="Opening 'more' (all doors and trunk) has no distinct "
               "hazard beyond Unintended.",
    )
    hara.rate(
        rat01, FM.INVERTED,
        hazard="An open command closes the vehicle instead.",
        hazardous_event="Person caught by the closing mechanism",
        severity=S.S3, exposure=E.E2, controllability=C.C3,
    )  # ASIL B
    hara.rate(
        rat01, FM.INTERMITTENT,
        hazard="The lock oscillates between open and closed.",
        hazardous_event="Hand or finger trapped during oscillation",
        severity=S.S3, exposure=E.E2, controllability=C.C3,
    )  # ASIL B

    # -- Rat02: close (10 ratings, 5 N/A) ---------------------------------
    hara.rate(
        rat02, FM.NO,
        hazard="The vehicle cannot be closed.",
        hazardous_event="Vehicle or contents theft",
        severity=S.S1, exposure=E.E4, controllability=C.C3,
    )  # ASIL B
    hara.rate(
        rat02, FM.NO,
        hazard="Closing is unavailable in a rarely visited long-term "
               "parking area.",
        hazardous_event="Prolonged exposure of the open vehicle",
        severity=S.S2, exposure=E.E1, controllability=C.C3,
    )  # QM
    hara.rate(
        rat02, FM.UNINTENDED,
        hazard="The vehicle closes unexpectedly while a person is "
               "entering or reaching inside.",
        hazardous_event="Person trapped by the closing mechanism",
        severity=S.S3, exposure=E.E3, controllability=C.C3,
    )  # ASIL C
    hara.rate(
        rat02, FM.UNINTENDED,
        hazard="The vehicle closes unexpectedly with the key inside.",
        hazardous_event="Owner locked out",
        severity=S.S1, exposure=E.E3, controllability=C.C3,
    )  # ASIL A
    hara.rate_not_applicable(
        rat02, FM.TOO_EARLY,
        reason="Closing before a command is the Unintended case.",
    )
    hara.rate(
        rat02, FM.TOO_LATE,
        hazard="The vehicle closes long after the command; the owner has "
               "already left.",
        hazardous_event="Vehicle open and unattended in the meantime",
        severity=S.S1, exposure=E.E4, controllability=C.C3,
    )  # ASIL B
    hara.rate_not_applicable(
        rat02, FM.LESS,
        reason="Partial closing is captured by the No-closing rating.",
    )
    hara.rate_not_applicable(
        rat02, FM.MORE,
        reason="There is no 'more' of a lock actuation.",
    )
    hara.rate_not_applicable(
        rat02, FM.INVERTED,
        reason="A close command opening the vehicle is rated under the "
               "opening function's Inverted case.",
    )
    hara.rate_not_applicable(
        rat02, FM.INTERMITTENT,
        reason="Oscillation is rated under the opening function.",
    )

    # -- Safety goals (published ASILs, §IV-B) ----------------------------
    hara.add_goal(SafetyGoal(
        "SG01", "Keep vehicle closed", Asil.D,
        safe_state="Locked unless an authorized open command was received",
        hazard_refs=("Rat01",),
    ))
    hara.add_goal(SafetyGoal(
        "SG02", "Avoid intermittent open/close", Asil.B,
        safe_state="Stable lock state between commands",
        hazard_refs=("Rat01",),
    ))
    hara.add_goal(SafetyGoal(
        "SG03", "Prevent non-availability of opening", Asil.A,
        safe_state="Open command served within the availability deadline",
        ftti_ms=500,
        hazard_refs=("Rat01",),
    ))
    hara.add_goal(SafetyGoal(
        "SG04", "Prevent unintended closing", Asil.A,
        safe_state="Lock closes only on an authorized command",
        hazard_refs=("Rat02",),
    ))
    return hara


def build_attacks(library: ThreatLibrary | None = None) -> AttackDescriptionSet:
    """Derive the UC II attacks: 27 safety-critical plus 2 privacy.

    AD08 reproduces Table VII verbatim; the CAN-flooding-via-Bluetooth
    and opening-command-replay attacks the paper lists explicitly are
    AD03 and AD02.
    """
    library = library or build_catalog()
    deriver = AttackDeriver.create(
        library, list(build_hara().safety_goals),
        name=f"{USE_CASE_NAME} attacks",
    )

    def derive(goal_ids, threat, attack_type, description, precondition,
               measures, success, fails, impl="", interface="ECU_GW",
               category=AttackCategory.SAFETY, stride=None):
        deriver.derive(
            description=description,
            safety_goal_ids=tuple(goal_ids),
            threat_id=threat,
            attack_type_name=attack_type,
            interface=interface,
            precondition=precondition,
            expected_measures=measures,
            attack_success=success,
            attack_fails=fails,
            implementation_comments=impl,
            category=category,
            stride=stride,
        )

    derive(  # AD01
        ["SG01"], "3.1.4", "Fake messages",
        "Attacker sends fabricated open commands without any credentials.",
        "Vehicle is closed; attacker is in BLE range",
        "End-to-end authentication of commands",
        "Open the vehicle",
        "Unauthenticated commands are rejected and logged",
    )
    derive(  # AD02 -- explicit in §IV-B
        ["SG01"], "3.1.2", "Replay",
        "Attacker records a legitimate opening command and replays it "
        "later.",
        "Owner has opened the vehicle at least once in the attacker's "
        "presence; vehicle is closed again",
        "Timestamps resp. challenge-response patterns within the "
        "communication",
        "Open the vehicle",
        "Replayed command is rejected as stale or already consumed",
        impl="Tap the BLE channel, store the open command verbatim, "
             "re-send it after the owner leaves",
    )
    derive(  # AD03 -- explicit in §IV-B
        ["SG03"], "3.1.1", "Denial of service",
        "Attacker floods the CAN bus by forwarded Bluetooth requests, "
        "reducing availability of the function.",
        "Attacker has an authenticated communication link; owner will "
        "attempt to open",
        "Flooding detection at the gateway before forwarding",
        "Owner's open command is not served within the deadline",
        "Flooding source is identified and blocked; opening stays "
        "available",
        impl="Send diagnostics requests at high rate so forwarded frames "
             "saturate the body CAN (low CAN id wins arbitration)",
    )
    derive(  # AD04
        ["SG03"], "3.4.1", "Jamming",
        "Attacker jams the BLE channel while the owner tries to open.",
        "Owner is at the vehicle attempting to open",
        "Jamming detection; fallback access path (physical key)",
        "Opening is unavailable for the jam duration",
        "Fallback path keeps access available; jamming is reported",
    )
    derive(  # AD05
        ["SG01"], "3.3.1", "Gain elevated access",
        "Attacker exploits a Bluetooth stack vulnerability to execute "
        "code on the access ECU and unlock.",
        "Vehicle is closed; vulnerable stack version deployed",
        "Hardened/updated BLE stack; privilege separation on the ECU",
        "Open the vehicle without any credential",
        "Exploit fails against the patched stack; attempt is logged",
    )
    derive(  # AD06
        ["SG02"], "3.1.1", "Disable",
        "Attacker pulses request floods so the access function drops in "
        "and out.",
        "Vehicle in normal keyless operation",
        "Flooding detection with persistent sender blocking",
        "Lock state oscillates with service availability",
        "Attacker is blocked after the first burst; state stays stable",
    )
    derive(  # AD07
        ["SG04"], "3.1.4", "Fake messages",
        "Attacker sends a fabricated close command while a person is "
        "entering the vehicle.",
        "Vehicle is open; person at the door",
        "End-to-end authentication of commands",
        "Vehicle closes on the fabricated command",
        "Unauthenticated close command is rejected",
    )
    derive(  # AD08 -- Table VII, verbatim
        ["SG01"], "3.1.4", "Spoofing",
        "The attacker uses modified keys to gain access to the vehicle.",
        "Vehicle is closed. Attacker has an authenticated communication "
        "link",
        "Check received vehicles electronic ID with list of allowed IDs",
        "Open the vehicle",
        "Opening is rejected",
        impl="a) Randomly replace IDs of keys and b) test against "
             "increasing IDs (if a valid ID is known)",
    )
    derive(  # AD09
        ["SG03"], "3.1.1", "Disable",
        "Attacker sustains the flood until the access ECU shuts down.",
        "Attacker has an authenticated communication link",
        "Flooding detection; ECU overload protection",
        "Access ECU shuts down; opening unavailable",
        "Flood is shed at admission; the ECU stays up",
    )
    derive(  # AD10
        ["SG01"], "2.1.2", "Inject",
        "Attacker injects an open frame directly on the CAN "
        "communication link.",
        "Attacker has physical access to the body CAN",
        "CAN message authentication between gateway and door ECU",
        "Open the vehicle",
        "Injected frame fails authentication at the door ECU",
    )
    derive(  # AD11
        ["SG04"], "2.1.2", "Inject",
        "Attacker injects a close frame on the CAN link while loading "
        "cargo.",
        "Vehicle is open; attacker on the bus",
        "CAN message authentication",
        "Vehicle closes unexpectedly",
        "Injected frame fails authentication",
    )
    derive(  # AD12
        ["SG02"], "2.1.2", "Corrupt messages",
        "Attacker corrupts door-command payloads so open and close "
        "alternate.",
        "Commands are being exchanged",
        "Message authentication; command sequence validation",
        "Lock state oscillates",
        "Corrupted commands are dropped; state stays stable",
    )
    derive(  # AD13
        ["SG01"], "2.2.2", "Fake messages",
        "Attacker tricks the owner into installing a rogue key app that "
        "opens for the attacker.",
        "Owner installs apps from untrusted sources",
        "Key provisioning bound to a verified enrolment ceremony",
        "Open the vehicle via the rogue app's credentials",
        "Rogue app cannot complete enrolment; no valid key issued",
    )
    derive(  # AD14
        ["SG01"], "2.1.1", "Gain elevated access",
        "Insider with provisioning access enrols an additional key for "
        "the attacker.",
        "Insider holds provisioning privileges",
        "Dual control / audit on key provisioning",
        "Attacker's key opens the vehicle",
        "Provisioning audit flags the unauthorized enrolment",
    )
    derive(  # AD15
        ["SG01"], "2.2.1", "Gain elevated access",
        "Attacker uses the USB/diagnostic port to pair an attacker key.",
        "Attacker has brief physical access to the cabin port",
        "Pairing requires owner presence proof",
        "Attacker key accepted; vehicle opens later",
        "Pairing without presence proof is refused",
    )
    derive(  # AD16
        ["SG01"], "2.2.3", "Manipulate",
        "Attacker manipulates the remote-key function to treat any key "
        "as valid.",
        "Attacker reached the remote-function configuration",
        "Configuration integrity protection",
        "Any key opens the vehicle",
        "Config tamper detected at startup; function disabled safely",
    )
    derive(  # AD17
        ["SG04"], "2.2.3", "Manipulate",
        "Attacker manipulates the remote function to force closing while "
        "in use.",
        "Vehicle is open and in use",
        "Configuration integrity protection; closing interlock sensors",
        "Vehicle closes while a person is in the door",
        "Interlock blocks closing on detected presence",
    )
    derive(  # AD18
        ["SG03"], "2.2.3", "Config. change",
        "Attacker reconfigures the remote-open function off.",
        "Attacker reached the remote-function configuration",
        "Configuration integrity protection",
        "Opening via smartphone permanently unavailable",
        "Config tamper detected; last good configuration restored",
        stride=None,
    )
    derive(  # AD19
        ["SG01"], "3.1.2", "Delay",
        "Attacker captures an open command, suppresses it, and releases "
        "it when the owner is gone.",
        "Owner sends an open command in the attacker's presence",
        "Freshness window on command timestamps",
        "Vehicle opens with nobody present",
        "Stale command rejected by the freshness check",
    )
    derive(  # AD20
        ["SG02"], "3.1.2", "Replay",
        "Attacker replays captured open and close commands alternately.",
        "Attacker captured both command types",
        "Replay protection (counters, single-use challenges)",
        "Lock state oscillates under replayed commands",
        "Replays are rejected; at most the original transitions occur",
    )
    derive(  # AD21
        ["SG03"], "3.4.1", "Denial of service",
        "Attacker saturates the radio spectrum around the vehicle.",
        "Owner is at the vehicle attempting to open",
        "Spectrum monitoring; fallback access path",
        "Opening is unavailable while the interference lasts",
        "Fallback path keeps access available",
    )
    derive(  # AD22
        ["SG01"], "2.1.3", "Spoofing",
        "Attacker impersonates the gateway towards the door ECU.",
        "Attacker bridged onto the internal network",
        "Mutual authentication between gateway and door ECU",
        "Door ECU accepts attacker frames; vehicle opens",
        "Impersonation fails mutual authentication",
    )
    derive(  # AD23
        ["SG04"], "2.1.3", "Fake messages",
        "Attacker fakes 'vehicle closed' status so the owner walks away "
        "from an open car, then closes it on their return reach-in.",
        "Owner relies on the app's status display",
        "Authenticated status reporting",
        "Unexpected closing while reaching inside",
        "Status messages are authenticated; fake status rejected",
    )
    derive(  # AD24
        ["SG03"], "2.1.4", "Denial of service",
        "Attacker overloads the gateway ECU with packets so commands are "
        "not served.",
        "Attacker has an authenticated communication link",
        "Message counter for broken messages; flooding detection",
        "Shutdown of service",
        "Security control identifies unwanted sender and enforces a "
        "change of frequency",
    )
    derive(  # AD25
        ["SG02"], "2.1.4", "Disable",
        "Attacker crash-restarts the gateway repeatedly so the function "
        "is intermittently available.",
        "Vehicle in normal keyless operation",
        "Watchdog with crash-loop detection and safe degradation",
        "Availability oscillates with each crash cycle",
        "Crash-loop detection latches a safe degraded mode",
    )
    derive(  # AD26
        ["SG01"], "2.1.2", "Deliver malware",
        "Attacker delivers malware to the gateway that opens the vehicle "
        "on a trigger.",
        "Malware delivery path onto the gateway exists",
        "Secure boot and software signature verification",
        "Vehicle opens on the attacker's trigger",
        "Unsigned software refuses to boot; delivery is logged",
    )
    derive(  # AD27
        ["SG04"], "2.1.2", "Alter",
        "Attacker alters the auto-close timeout to close the vehicle "
        "aggressively.",
        "Attacker can modify gateway parameters",
        "Parameter integrity protection and plausibility bounds",
        "Vehicle closes unexpectedly after seconds",
        "Implausible timeout rejected; default restored",
    )
    derive(  # AD28 -- privacy
        [], "3.1.3", "Eavesdropping",
        "Attacker eavesdrops the access communication to create a "
        "profile about the usage.",
        "Attacker can observe BLE traffic near the parking spot",
        "Traffic padding and identifier rotation",
        "Usage profile (when the vehicle is used) can be constructed",
        "Observations cannot be linked into a profile",
        category=AttackCategory.PRIVACY,
        impl="Tap the channel, bucket open/close observations by time",
    )
    derive(  # AD29 -- privacy
        [], "3.4.2", "Intercept",
        "Attacker intercepts access-related messages at several "
        "locations to track the vehicle.",
        "Attacker operates multiple listening posts",
        "Identifier rotation across sessions",
        "Vehicle movements are trackable across locations",
        "Sessions cannot be linked across locations",
        category=AttackCategory.PRIVACY,
    )

    attacks = deriver.results
    safety = attacks.safety_attacks()
    privacy = attacks.privacy_attacks()
    assert len(safety) == 27, f"UC2 must yield 27 safety attacks, got {len(safety)}"
    assert len(privacy) == 2, f"UC2 must yield 2 privacy attacks, got {len(privacy)}"
    return attacks


def pipeline_builder() -> PipelineBuilder:
    """An immutable builder staged with the complete UC II analysis.

    ``pipeline_builder().build()`` is the supported way to obtain the
    UC II pipeline; fork the builder (e.g. ``.require_complete(False)``)
    for experiments.
    """
    return DEFINITION.builder()


def build_pipeline(require_complete: bool = True) -> SaSeValPipeline:
    """Deprecated shim: the UC II pipeline via the legacy step protocol.

    Use :func:`pipeline_builder` (or
    ``repro.api.Workspace().pipeline("uc2")``) instead.  The shim routes
    through the same builder, so every artifact is identical to the
    pre-redesign path.
    """
    warnings.warn(
        "uc2.build_pipeline() is deprecated; use "
        "uc2.pipeline_builder().build() or "
        "repro.api.Workspace().pipeline('uc2')",
        DeprecationWarning,
        stacklevel=2,
    )
    return (
        pipeline_builder()
        .require_complete(require_complete)
        .build()
        .to_legacy()
    )


# -- executable bindings (Step 4) ------------------------------------------

def _bind_ad08(attack) -> TestCase:
    """AD08: modified keys over an authenticated link (both strategies)."""

    def arm(scenario: KeylessEntryScenario):
        random_sweep = KeyForgeryAttack(
            "attacker-phone", scenario.clock, scenario.ble,
            scenario.keystore, strategy="random", attempts=25,
            gap_ms=150.0,
        )
        incrementing = KeyForgeryAttack(
            "attacker-phone-2", scenario.clock, scenario.ble,
            scenario.keystore, strategy="incrementing", attempts=25,
            gap_ms=150.0, known_valid_id="KEY-2000",
        )
        random_sweep.launch(500.0)
        incrementing.launch(5000.0)
        return random_sweep

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: KeylessEntryScenario(),
        arm_attack=arm,
        duration_ms=15000.0,
        success_oracle=oracles.all_of(
            oracles.goal_violated("SG01"), oracles.door_open()
        ),
        failure_oracle=oracles.all_of(
            oracles.no_goal_violated("SG01"),
            oracles.door_closed(),
            oracles.detection_logged("ECU_GW", "id-whitelist"),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def _bind_ad02(attack) -> TestCase:
    """AD02: replay of the owner's opening command."""

    def arm(scenario: KeylessEntryScenario):
        injector = ReplayAttack(
            "eve", scenario.clock, scenario.ble,
            capture_kinds={KIND_OPEN},
        )
        scenario.owner_opens(1000.0)
        scenario.owner_closes(2500.0)
        injector.replay(at_ms=8000.0, count=1)
        return injector

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: KeylessEntryScenario(),
        arm_attack=arm,
        duration_ms=15000.0,
        success_oracle=oracles.goal_violated("SG01"),
        failure_oracle=oracles.all_of(
            oracles.no_goal_violated("SG01"),
            oracles.door_closed(),
            oracles.any_of(
                oracles.detection_logged("ECU_GW", "replay-guard"),
                oracles.detection_logged("ECU_GW", "message-counter"),
            ),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def _bind_ad03(attack) -> TestCase:
    """AD03: CAN flooding via forwarded Bluetooth diagnostics requests."""

    def arm(scenario: KeylessEntryScenario):
        injector = FloodingAttack(
            "attacker-phone", scenario.clock, scenario.ble,
            kind="diag_request", interval_ms=0.4, duration_ms=6000.0,
            keystore=scenario.keystore, authenticated=True,
            payload_factory=lambda n: {"request": n},
        )
        injector.launch(200.0)
        scenario.owner_opens(5000.0)
        return injector

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: KeylessEntryScenario(),
        arm_attack=arm,
        duration_ms=15000.0,
        success_oracle=oracles.goal_violated("SG03"),
        failure_oracle=oracles.all_of(
            oracles.no_goal_violated("SG03"),
            oracles.detection_logged("ECU_GW", "flooding-detector"),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def _bind_ad04(attack) -> TestCase:
    """AD04: BLE jamming during an opening attempt."""

    def arm(scenario: KeylessEntryScenario):
        injector = JammingAttack(
            "jammer", scenario.clock, scenario.ble, duration_ms=3000.0
        )
        injector.launch(900.0)
        scenario.owner_opens(1000.0)
        return injector

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: KeylessEntryScenario(),
        arm_attack=arm,
        duration_ms=10000.0,
        success_oracle=oracles.goal_violated("SG03"),
        failure_oracle=oracles.no_goal_violated("SG03"),
        safety_goal_ids=attack.safety_goal_ids,
    )


def _bind_ad28(attack) -> TestCase:
    """AD28: usage profiling of the BLE access traffic (privacy)."""

    def arm(scenario: KeylessEntryScenario):
        injector = EavesdropAttack("profiler", scenario.clock, scenario.ble)
        scenario._profiler = injector
        for start in (1000.0, 4000.0, 7000.0):
            scenario.owner_opens(start)
            scenario.owner_closes(start + 1500.0)
        return injector

    def profile_built(scenario, result) -> bool:
        profile = scenario._profiler.profile()
        return profile["by_kind"].get("open_command", 0) >= 3

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: KeylessEntryScenario(),
        arm_attack=arm,
        duration_ms=12000.0,
        success_oracle=oracles.predicate(
            "usage profile shows >= 3 opening events", profile_built
        ),
        failure_oracle=oracles.predicate(
            "no usable profile",
            lambda scenario, result: not profile_built(scenario, result),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def build_bindings() -> BindingRegistry:
    """Executable bindings for the UC II attacks the paper details."""
    registry = BindingRegistry()
    registry.bind_id("AD08", _bind_ad08)
    registry.bind_id("AD02", _bind_ad02)
    registry.bind_id("AD03", _bind_ad03)
    registry.bind_id("AD04", _bind_ad04)
    registry.bind_id("AD28", _bind_ad28)
    return registry


#: UC II as declarative stage registrations: the factories for each
#: process step, consumed by the :mod:`repro.api` builder/Workspace.
DEFINITION = UseCaseDefinition(
    key="uc2",
    title=USE_CASE_NAME,
    threat_library=build_catalog,
    hara=build_hara,
    attacks=build_attacks,
    justifications=tuple(JUSTIFICATIONS.items()),
    bindings=build_bindings,
    author="UC2 analysis",
)


__all__ = [
    "DEFINITION",
    "JUSTIFICATIONS",
    "USE_CASE_NAME",
    "build_attacks",
    "build_bindings",
    "build_hara",
    "build_pipeline",
    "pipeline_builder",
]
