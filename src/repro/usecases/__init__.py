"""The paper's two evaluated use cases, fully encoded (§IV).

Each module provides the per-step factories (``build_hara()``,
``build_attacks()``, ``build_bindings()``) plus its declarative
registration for the :mod:`repro.api` facade: ``DEFINITION`` (a
:class:`~repro.api.UseCaseDefinition`) and ``pipeline_builder()`` (an
immutable, pre-staged :class:`~repro.api.PipelineBuilder`).  The old
monolithic ``build_pipeline()`` entry points remain as deprecation shims
routed through the same builder.
"""

from repro.usecases import uc1_autonomous_driving as uc1
from repro.usecases import uc2_keyless_entry as uc2

__all__ = ["uc1", "uc2"]
