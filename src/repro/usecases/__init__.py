"""The paper's two evaluated use cases, fully encoded (§IV).

Each module provides ``build_hara()``, ``build_attacks()``,
``build_pipeline()`` (the complete Steps 1-3 run with passing RQ1 audits)
and ``build_bindings()`` (the Step 4 executable bindings for the attacks
the paper details).
"""

from repro.usecases import uc1_autonomous_driving as uc1
from repro.usecases import uc2_keyless_entry as uc2

__all__ = ["uc1", "uc2"]
