"""Use Case I -- Autonomous Driving (paper §IV-A).

An autonomous vehicle approaches a construction site; the RSU informs the
vehicle via the OBU so control is transferred back to the driver (Fig. 2).
This module encodes the complete published analysis:

* the HARA over the three functions ("Hazardous location notifications
  (Road works warning)", "Signage applications (In-vehicle speed
  limits)", "Warning of other traffic participants about hazardous
  vehicle state") with **29 ratings** whose derived ASIL distribution is
  exactly the paper's: 5 N/A, 5 "No ASIL", 7 ASIL A, 3 ASIL B, 7 ASIL C,
  2 ASIL D;
* the six safety goals SG01..SG06 with the published ASILs;
* the **23 attack descriptions** the SaSeVAL application yielded,
  including AD20 (Table VI) verbatim;
* the justifications making the inductive completeness audit pass;
* executable bindings for the attacks the paper details (flooding,
  jamming, signage spoofing, warning replay, profiling).

Only the S/E/C inputs are encoded -- every ASIL is *derived* by the HARA
engine, so the distribution is a reproduction, not an assertion.
"""

from __future__ import annotations

import warnings

from repro.api import PipelineBuilder, UseCaseDefinition
from repro.core.derivation import AttackDeriver, AttackDescriptionSet
from repro.core.pipeline import SaSeValPipeline
from repro.dsl.compiler import BindingRegistry
from repro.hara.analysis import Hara
from repro.model.ratings import (
    Asil,
    Controllability as C,
    Exposure as E,
    FailureMode as FM,
    Severity as S,
)
from repro.model.safety import SafetyGoal
from repro.sim.attacks import (
    EavesdropAttack,
    FloodingAttack,
    JammingAttack,
    ReplayAttack,
    SpoofingAttack,
)
from repro.sim.scenarios import ConstructionSiteScenario
from repro.sim.v2x import KIND_HAZARD_WARNING, KIND_SPEED_LIMIT
from repro.testing import oracles
from repro.testing.testcase import TestCase
from repro.threatlib.catalog import build_catalog
from repro.threatlib.library import ThreatLibrary

USE_CASE_NAME = "Use Case I - Autonomous Driving"

#: Threats of the shared catalog that UC I does not attack, with the
#: justification recorded for the inductive completeness audit (RQ1).
JUSTIFICATIONS: dict[str, str] = {
    "2.1.1": "Insider access to the gateway is organisational; outside the "
             "RSU-OBU validation scope of this use case.",
    "2.2.1": "No USB/physical port is reachable in the driving scenario "
             "under test.",
    "2.2.2": "Social engineering of the owner cannot influence the "
             "RSU-OBU interface during automated driving.",
    "2.2.3": "Remote key / immobiliser functions are not part of the "
             "autonomous-driving item definition.",
    "2.3.1": "Workshop diagnostic sessions are out of scope for on-road "
             "validation.",
    "3.1.1": "Bluetooth-to-CAN forwarding does not exist in this item; "
             "covered by Use Case II.",
    "3.1.2": "Opening-command replay concerns the keyless opener (Use "
             "Case II).",
    "3.1.3": "Access-usage profiling concerns the keyless opener (Use "
             "Case II).",
    "3.1.4": "Impersonation of V2X messages towards this SUT is covered "
             "via the equivalent in-vehicle signage threat 1.2.1 "
             "(AD05/AD06).",
    "3.3.1": "The BLE stack is absent from the autonomous-driving item.",
}


def build_hara() -> Hara:
    """The UC I HARA: 3 functions, 29 ratings, 6 safety goals."""
    hara = Hara(name=USE_CASE_NAME)
    rat01 = hara.add_function(
        "Rat01",
        "Hazardous location notifications (Road works warning)",
        "Notify the driver of hazardous locations ahead and return control.",
    )
    rat02 = hara.add_function(
        "Rat02",
        "Signage applications (In-vehicle speed limits)",
        "Present and apply speed limits received from the infrastructure.",
    )
    rat03 = hara.add_function(
        "Rat03",
        "Warning of other traffic participants about hazardous vehicle state",
        "Broadcast warnings about this vehicle's hazardous state to others.",
    )

    # -- Rat01: road works warning (9 ratings, 1 N/A) --------------------
    hara.rate(
        rat01, FM.NO,
        hazard="The driver can not be warned and the automated control is "
               "not returned.",
        hazardous_event="Crash into road works",
        severity=S.S3, exposure=E.E3, controllability=C.C3,
        rationale="see Statistics Road Works; the driver is not supposed "
                  "to monitor the road while automated driving mode is "
                  "active",
    )  # ASIL C (the paper's §III-B example row)
    hara.rate(
        rat01, FM.NO,
        hazard="Warning is displayed but automated control is never "
               "returned to the driver.",
        hazardous_event="Automation drives through the work zone",
        severity=S.S3, exposure=E.E3, controllability=C.C3,
    )  # ASIL C
    hara.rate(
        rat01, FM.UNINTENDED,
        hazard="Warning and handover without any road works present.",
        hazardous_event="Unnecessary manual takeover in flowing traffic",
        severity=S.S1, exposure=E.E4, controllability=C.C2,
    )  # ASIL A
    hara.rate(
        rat01, FM.TOO_EARLY,
        hazard="Control returned far ahead of the site; long manual "
               "stretch without need.",
        hazardous_event="Driver fatigue on extended manual segment",
        severity=S.S1, exposure=E.E3, controllability=C.C2,
    )  # QM
    hara.rate(
        rat01, FM.TOO_LATE,
        hazard="Warning arrives too late for a safe handover before the "
               "site.",
        hazardous_event="Entry into the work zone during handover",
        severity=S.S3, exposure=E.E3, controllability=C.C3,
    )  # ASIL C
    hara.rate(
        rat01, FM.LESS,
        hazard="Notification shown without location details; driver "
               "cannot localise the hazard.",
        hazardous_event="Late braking at the actual site",
        severity=S.S3, exposure=E.E2, controllability=C.C3,
    )  # ASIL B
    hara.rate(
        rat01, FM.MORE,
        hazard="Repeated notifications distract the driver.",
        hazardous_event="Attention drawn from the road",
        severity=S.S2, exposure=E.E4, controllability=C.C1,
    )  # ASIL A
    hara.rate_not_applicable(
        rat01, FM.INVERTED,
        reason="A location notification has no meaningful inversion.",
    )
    hara.rate(
        rat01, FM.INTERMITTENT,
        hazard="Control switches back and forth between automation and "
               "driver.",
        hazardous_event="Mode confusion near the work zone",
        severity=S.S3, exposure=E.E3, controllability=C.C3,
    )  # ASIL C

    # -- Rat02: in-vehicle speed limits (9 ratings, 0 N/A) ---------------
    hara.rate(
        rat02, FM.NO,
        hazard="No speed limit is shown; the vehicle keeps an "
               "inappropriate speed.",
        hazardous_event="Speeding past the gantry",
        severity=S.S2, exposure=E.E3, controllability=C.C2,
    )  # ASIL A
    hara.rate(
        rat02, FM.UNINTENDED,
        hazard="A speed limit is applied where none exists; abrupt "
               "slowdown.",
        hazardous_event="Rear-end collision risk",
        severity=S.S2, exposure=E.E4, controllability=C.C2,
    )  # ASIL B
    hara.rate(
        rat02, FM.TOO_EARLY,
        hazard="The limit is applied well before the zone.",
        hazardous_event="Unexpected early deceleration",
        severity=S.S1, exposure=E.E3, controllability=C.C2,
    )  # QM
    hara.rate(
        rat02, FM.TOO_LATE,
        hazard="The limit is applied after zone entry; the vehicle speeds "
               "inside the zone.",
        hazardous_event="Collision with workers in the zone",
        severity=S.S3, exposure=E.E4, controllability=C.C3,
    )  # ASIL D
    hara.rate(
        rat02, FM.TOO_LATE,
        hazard="The limit engages so late that hard braking is required.",
        hazardous_event="Loss of stability under braking",
        severity=S.S2, exposure=E.E3, controllability=C.C2,
    )  # ASIL A
    hara.rate(
        rat02, FM.LESS,
        hazard="A higher limit than the actual one is communicated.",
        hazardous_event="Systematic speeding through the restriction",
        severity=S.S3, exposure=E.E4, controllability=C.C3,
    )  # ASIL D
    hara.rate(
        rat02, FM.MORE,
        hazard="A far lower limit than the actual one is communicated.",
        hazardous_event="Obstruction of following traffic",
        severity=S.S2, exposure=E.E4, controllability=C.C1,
    )  # ASIL A
    hara.rate(
        rat02, FM.INVERTED,
        hazard="A limit is lifted instead of imposed.",
        hazardous_event="Acceleration into the restricted zone",
        severity=S.S3, exposure=E.E2, controllability=C.C3,
    )  # ASIL B
    hara.rate(
        rat02, FM.INTERMITTENT,
        hazard="The displayed limit flickers on and off.",
        hazardous_event="Driver uncertainty about the valid limit",
        severity=S.S1, exposure=E.E3, controllability=C.C2,
    )  # QM

    # -- Rat03: warning other participants (11 ratings, 4 N/A) -----------
    hara.rate(
        rat03, FM.NO,
        hazard="Other participants are not warned about this vehicle's "
               "hazardous state.",
        hazardous_event="Collision with the disabled vehicle",
        severity=S.S3, exposure=E.E2, controllability=C.C2,
    )  # ASIL A
    hara.rate(
        rat03, FM.NO,
        hazard="Warnings are suppressed for some message types only.",
        hazardous_event="Partial awareness of the hazard",
        severity=S.S2, exposure=E.E2, controllability=C.C2,
    )  # QM
    hara.rate(
        rat03, FM.UNINTENDED,
        hazard="Unintended warnings flood other participants.",
        hazardous_event="Alert fatigue in surrounding traffic",
        severity=S.S1, exposure=E.E4, controllability=C.C2,
    )  # ASIL A
    hara.rate(
        rat03, FM.UNINTENDED,
        hazard="A single spurious warning is emitted.",
        hazardous_event="Brief unnecessary caution of one follower",
        severity=S.S1, exposure=E.E2, controllability=C.C3,
    )  # QM
    hara.rate_not_applicable(
        rat03, FM.TOO_EARLY,
        reason="A warning ahead of an actual hazard has no adverse effect.",
    )
    hara.rate(
        rat03, FM.TOO_LATE,
        hazard="The warning is sent too late to be useful.",
        hazardous_event="Collision before the warning arrives",
        severity=S.S3, exposure=E.E3, controllability=C.C3,
    )  # ASIL C
    hara.rate(
        rat03, FM.TOO_LATE,
        hazard="The warning is delayed beyond usefulness in dense traffic.",
        hazardous_event="Chain collision behind the hazard",
        severity=S.S3, exposure=E.E3, controllability=C.C3,
    )  # ASIL C
    hara.rate(
        rat03, FM.LESS,
        hazard="The warning reaches too few participants.",
        hazardous_event="Unwarned vehicle hits the hazard",
        severity=S.S3, exposure=E.E3, controllability=C.C3,
    )  # ASIL C
    hara.rate_not_applicable(
        rat03, FM.MORE,
        reason="A wider warning distribution has no distinct hazard; "
               "excess frequency is rated under Unintended.",
    )
    hara.rate_not_applicable(
        rat03, FM.INVERTED,
        reason="There is no meaningful inverse of a hazard warning.",
    )
    hara.rate_not_applicable(
        rat03, FM.INTERMITTENT,
        reason="Intermittent emission is captured by the Too-Late and "
               "Less ratings.",
    )

    # -- Safety goals (published ASILs, §IV-A) ----------------------------
    hara.add_goal(SafetyGoal(
        "SG01",
        "Avoid ineffective location notification without returning "
        "driving to the human",
        Asil.C,
        safe_state="Control handed to the driver before the hazard zone",
        ftti_ms=500,
        hazard_refs=("Rat01",),
    ))
    hara.add_goal(SafetyGoal(
        "SG02", "Avoid intermittent control switches", Asil.C,
        safe_state="One stable handover per hazard",
        hazard_refs=("Rat01",),
    ))
    hara.add_goal(SafetyGoal(
        "SG03", "Communicate Speed Limits safely", Asil.D,
        safe_state="Only plausible, authentic limits are applied",
        hazard_refs=("Rat02",),
    ))
    hara.add_goal(SafetyGoal(
        "SG04", "Avoid missing take-over warnings", Asil.C,
        safe_state="Take-over warning presented within the FTTI",
        ftti_ms=500,
        hazard_refs=("Rat01",),
    ))
    hara.add_goal(SafetyGoal(
        "SG05",
        "Avoid too many unintended warnings about hazardous vehicle states",
        Asil.B,
        safe_state="Warning rate bounded",
        hazard_refs=("Rat03",),
    ))
    hara.add_goal(SafetyGoal(
        "SG06", "Avoid profile building with warnings", Asil.A,
        safe_state="Warnings carry no linkable identity",
        hazard_refs=("Rat03",),
    ))
    return hara


def build_attacks(library: ThreatLibrary | None = None) -> AttackDescriptionSet:
    """Derive the 23 UC I attack descriptions (AD01..AD23).

    AD20 reproduces Table VI verbatim; the remaining 22 cover every
    safety goal and the applicable threats of the shared catalog.
    """
    library = library or build_catalog()
    deriver = AttackDeriver.create(
        library, list(build_hara().safety_goals), name=f"{USE_CASE_NAME} attacks"
    )

    def derive(goal_ids, threat, attack_type, description, precondition,
               measures, success, fails, impl="", interface="OBU RSU",
               stride=None):
        deriver.derive(
            description=description,
            safety_goal_ids=tuple(goal_ids),
            threat_id=threat,
            attack_type_name=attack_type,
            interface=interface,
            precondition=precondition,
            expected_measures=measures,
            attack_success=success,
            attack_fails=fails,
            implementation_comments=impl,
            stride=stride,
        )

    derive(  # AD01
        ["SG01"], "1.1.2", "Jamming",
        "Attacker jams the RSU broadcast channel near the construction "
        "site so no notification reaches approaching vehicles.",
        "Vehicle is approaching the construction site in automated mode",
        "Channel supervision detects loss of periodic beacons and "
        "triggers a degraded-mode handover",
        "Vehicle enters the work zone without returning control",
        "Handover is triggered by the beacon-loss watchdog",
        impl="Jam the 802.11p channel for the approach window",
    )
    derive(  # AD02
        ["SG01"], "1.1.2", "Denial of service",
        "Attacker exhausts the RSU with bogus service requests so it "
        "stops broadcasting warnings.",
        "Vehicle is approaching the construction site",
        "RSU-side rate limiting; vehicle-side beacon-loss watchdog",
        "No warning is broadcast; the vehicle keeps automated mode",
        "RSU rate limiter sheds the bogus load and keeps broadcasting",
    )
    derive(  # AD03
        ["SG01", "SG04"], "1.1.1", "Corrupt data or code",
        "Attacker corrupts the road-works records in the RSU database so "
        "notifications are missing.",
        "Road-works record is provisioned in the RSU",
        "Database integrity protection (signatures over records)",
        "The warning is never generated",
        "Record signature check fails and operators are alerted",
    )
    derive(  # AD04
        ["SG01"], "1.1.1", "Alter",
        "Attacker alters the position field of the road-works record so "
        "the warning points elsewhere.",
        "Vehicle is approaching the construction site",
        "Plausibility check of record location against map data",
        "Handover happens at the wrong location; work zone entered in "
        "automated mode",
        "Location plausibility check rejects the altered record",
    )
    derive(  # AD05
        ["SG03"], "1.2.1", "Fake messages",
        "Attacker broadcasts fake signage messages announcing a lifted "
        "speed limit.",
        "Vehicle is inside a speed-restricted zone in automated mode",
        "Sender authentication of signage messages; value-range "
        "plausibility",
        "The automation accelerates beyond the legal limit",
        "Unauthenticated signage is discarded and logged",
        impl="Broadcast speed_limit messages with an implausibly high "
             "value from an unprovisioned sender",
    )
    derive(  # AD06
        ["SG03"], "1.2.1", "Spoofing",
        "Attacker impersonates the RSU and serves wrong speed limits.",
        "Vehicle is approaching a signage gantry",
        "Sender authentication (shared infrastructure credentials)",
        "A wrong limit is accepted and applied",
        "MAC verification fails; message discarded and logged",
    )
    derive(  # AD07
        ["SG05"], "1.2.2", "Replay",
        "Attacker records hazard warnings at another location and "
        "replays them to passing vehicles.",
        "Vehicle drives in normal traffic, no hazard present",
        "Location consistency check on warning origin",
        "Drivers receive a stream of irrelevant warnings",
        "Replayed warnings are rejected for implausible origin",
        impl="Capture hazard warnings at site B and replay them on the "
             "ego vehicle's channel at site A",
    )
    derive(  # AD08
        ["SG05"], "1.2.2", "Delay",
        "Attacker delays legitimate warnings so they arrive out of "
        "context.",
        "Hazard warnings are being broadcast",
        "Freshness window on warning timestamps",
        "Out-of-context warnings confuse the driver",
        "Stale warnings are rejected by the freshness check",
    )
    derive(  # AD09
        ["SG02"], "2.1.3", "Fake messages",
        "Attacker alternates fake 'hazard ahead' and 'all clear' "
        "messages to toggle the control mode.",
        "Vehicle is in automated mode on an open road",
        "Sender authentication; handover hysteresis",
        "Control switches intermittently between driver and automation",
        "Fake messages are discarded; at most one handover occurs",
    )
    derive(  # AD10
        ["SG02"], "2.1.2", "Inject",
        "Attacker injects alternating control-relevant messages into the "
        "communication stream.",
        "Vehicle is in automated mode",
        "Message authentication on the in-vehicle link",
        "Repeated mode oscillation",
        "Injected frames fail authentication and are dropped",
    )
    derive(  # AD11
        ["SG03"], "2.1.2", "Corrupt messages",
        "Attacker corrupts speed-limit payloads in transit.",
        "A signage message is in flight",
        "Message authentication; value-range plausibility",
        "A corrupted (higher) limit is applied",
        "Tampered messages fail MAC verification",
        impl="Flip the speed_limit_mps field in observed messages and "
             "re-inject them",
    )
    derive(  # AD12
        ["SG06"], "3.4.2", "Eavesdropping",
        "Attacker passively collects warnings to build a movement "
        "profile of the vehicle.",
        "Vehicle participates in V2X communication",
        "Pseudonym rotation in broadcast identifiers",
        "A usage/movement profile can be constructed",
        "Observed identifiers cannot be linked across sites",
        impl="Tap the channel, bucket observations by sender and time",
    )
    derive(  # AD13
        ["SG06"], "3.4.2", "Listen",
        "Attacker listens to hazard warnings to infer when and where the "
        "vehicle drives.",
        "Vehicle broadcasts hazard warnings",
        "Minimal identifying payload in warnings",
        "Driving times and routes are inferable",
        "Warnings carry no linkable identity",
    )
    derive(  # AD14
        ["SG01", "SG04"], "3.4.1", "Jamming",
        "Attacker jams the V2X channel exactly during the construction "
        "site approach.",
        "Vehicle is approaching the construction site",
        "Beacon-loss watchdog with degraded-mode handover",
        "No warning is received; work zone entered in automated mode",
        "Watchdog detects silence and hands over preventively",
    )
    derive(  # AD15
        ["SG05"], "1.2.1", "Fake messages",
        "Attacker floods the driver with fake hazard warnings.",
        "Vehicle is in normal traffic",
        "Sender authentication; warning-rate limit in the HMI",
        "The driver is flooded with warnings and starts ignoring them",
        "Fake warnings are rejected; warning rate stays bounded",
        impl="Send hazard_warning messages at high rate from an "
             "unprovisioned sender",
    )
    derive(  # AD16
        ["SG04"], "2.1.4", "Denial of service",
        "Attacker crashes the OBU with malformed messages so take-over "
        "warnings are missed.",
        "Vehicle is approaching the construction site",
        "Robust input validation; watchdog restart of the OBU",
        "OBU stops processing; the take-over warning is missed",
        "Malformed input is rejected; the OBU stays available",
    )
    derive(  # AD17
        ["SG02"], "2.1.4", "Denial of service",
        "Attacker pulses flooding on and off so the notification service "
        "is only intermittently available.",
        "Vehicle is in automated mode with V2X reception",
        "Flooding detection with sender blocking",
        "Service availability oscillates; control switches repeatedly",
        "Flooding source is identified and blocked persistently",
    )
    derive(  # AD18
        ["SG03"], "2.1.2", "Config. change",
        "Attacker changes the OBU unit configuration so limits are "
        "mis-scaled (km/h vs m/s).",
        "Attacker has a foothold on the in-vehicle network",
        "Configuration integrity protection; plausibility of applied "
        "limits",
        "Mis-scaled limits are applied",
        "Config checksum mismatch is detected at startup",
        stride=None,
    )
    derive(  # AD19
        ["SG01"], "2.1.2", "Manipulate",
        "Attacker manipulates notification payloads so they are "
        "unparseable by the OBU.",
        "Road-works warnings are being broadcast",
        "Message authentication; parse-failure logging",
        "Warnings are silently dropped; no handover",
        "Tampered messages fail MAC verification and are logged",
    )
    derive(  # AD20 -- Table VI, verbatim
        ["SG01", "SG02", "SG03"], "2.1.4", "Disable",
        "Attacker tries to overload the ECU by packet flooding.",
        "Vehicle is approaching the construction side",
        "Message counter for broken messages",
        "Shutdown of service",
        "Security control identifies unwanted sender enforce change of "
        "frequency",
        impl="Create an authenticated sender as attacker beside the "
             "original sender, additionally the attacker sender should "
             "send extra messages (with high frequency or in chaotic way)",
        interface="OBU RSU",
    )
    derive(  # AD21
        ["SG04"], "1.2.2", "Replay",
        "Attacker replays a stale 'no hazards' state after a real "
        "warning was issued.",
        "A road-works warning has just been broadcast",
        "Monotonic message counters; freshness window",
        "The warning is superseded; the driver is never alerted",
        "Stale replay is rejected by counter/freshness checks",
    )
    derive(  # AD22
        ["SG06"], "3.4.2", "Covert channel",
        "Attacker encodes identifying information in warning timing to "
        "exfiltrate vehicle identity.",
        "Compromised component participates in warning emission",
        "Traffic shaping normalises emission timing",
        "Identity bits leak through inter-message timing",
        "Timing normalisation destroys the covert channel",
    )
    derive(  # AD23
        ["SG05"], "1.2.2", "Delay",
        "Attacker buffers warnings and releases them in bursts to "
        "overwhelm the driver.",
        "Warnings are being broadcast in normal operation",
        "Freshness window; HMI warning-rate limiting",
        "Warning bursts distract the driver",
        "Buffered (stale) warnings are rejected; rate stays bounded",
    )

    attacks = deriver.results
    assert len(attacks) == 23, f"UC1 must yield 23 attacks, got {len(attacks)}"
    return attacks


def pipeline_builder() -> PipelineBuilder:
    """An immutable builder staged with the complete UC I analysis.

    ``pipeline_builder().build()`` is the supported way to obtain the
    UC I pipeline; fork the builder (e.g. ``.require_complete(False)``)
    for experiments.
    """
    return DEFINITION.builder()


def build_pipeline(require_complete: bool = True) -> SaSeValPipeline:
    """Deprecated shim: the UC I pipeline via the legacy step protocol.

    Use :func:`pipeline_builder` (or
    ``repro.api.Workspace().pipeline("uc1")``) instead.  The shim routes
    through the same builder, so every artifact is identical to the
    pre-redesign path.
    """
    warnings.warn(
        "uc1.build_pipeline() is deprecated; use "
        "uc1.pipeline_builder().build() or "
        "repro.api.Workspace().pipeline('uc1')",
        DeprecationWarning,
        stacklevel=2,
    )
    return (
        pipeline_builder()
        .require_complete(require_complete)
        .build()
        .to_legacy()
    )


# -- executable bindings (Step 4) ------------------------------------------

def _bind_ad20(attack) -> TestCase:
    """AD20: authenticated packet flooding against the OBU."""

    def arm(scenario: ConstructionSiteScenario):
        injector = FloodingAttack(
            "attacker", scenario.clock, scenario.v2x, kind="cam_message",
            interval_ms=0.2, duration_ms=70000.0,
            keystore=scenario.keystore, authenticated=True,
            location=scenario.RSU_LOCATION,
        )
        injector.launch(100.0)
        return injector

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: ConstructionSiteScenario(),
        arm_attack=arm,
        duration_ms=80000.0,
        success_oracle=oracles.any_of(
            oracles.service_shut_down("obu"),
            oracles.any_goal_violated("SG01", "SG02", "SG03"),
        ),
        failure_oracle=oracles.all_of(
            oracles.no_goal_violated("SG01", "SG02", "SG03"),
            oracles.detection_logged("OBU", "flooding-detector"),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def _bind_ad14(attack) -> TestCase:
    """AD14: V2X jamming during the approach."""

    def arm(scenario: ConstructionSiteScenario):
        injector = JammingAttack(
            "jammer", scenario.clock, scenario.v2x, duration_ms=70000.0
        )
        injector.launch(100.0)
        return injector

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: ConstructionSiteScenario(),
        arm_attack=arm,
        duration_ms=80000.0,
        success_oracle=oracles.goal_violated("SG01"),
        failure_oracle=oracles.all_of(
            oracles.no_goal_violated("SG01"),
            oracles.event_occurred("vehicle.handover_requested"),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def _bind_ad05(attack) -> TestCase:
    """AD05: fake 'limit lifted' signage from an unprovisioned sender."""

    def arm(scenario: ConstructionSiteScenario):
        injector = SpoofingAttack(
            "ghost-rsu", scenario.clock, scenario.v2x,
            kind=KIND_SPEED_LIMIT, claimed_sender="ghost-rsu",
            payload={"speed_limit_mps": 60.0},
            location=scenario.RSU_LOCATION,
        )
        injector.launch(3000.0, count=5, gap_ms=200.0)
        return injector

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: ConstructionSiteScenario(),
        arm_attack=arm,
        duration_ms=20000.0,
        success_oracle=oracles.goal_violated("SG03"),
        failure_oracle=oracles.all_of(
            oracles.no_goal_violated("SG03"),
            oracles.detection_logged("OBU"),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def _bind_ad07(attack) -> TestCase:
    """AD07: hazard warnings replayed from another location."""

    def arm(scenario: ConstructionSiteScenario):
        injector = ReplayAttack(
            "replayer", scenario.clock, scenario.remote_channel,
            capture_kinds={KIND_HAZARD_WARNING},
        )
        # The remote RSU emits warnings at site B...
        for index in range(10):
            scenario.clock.schedule_at(
                500.0 + index * 300.0,
                lambda: scenario.remote_rsu.send_hazard_warning(
                    "vehicle breakdown at site B"
                ),
            )
        # ...which the attacker replays on the ego vehicle's channel.
        injector.replay(
            at_ms=5000.0, index=0, count=10, gap_ms=100.0, via=scenario.v2x
        )
        return injector

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: ConstructionSiteScenario(),
        arm_attack=arm,
        duration_ms=20000.0,
        success_oracle=oracles.goal_violated("SG05"),
        failure_oracle=oracles.all_of(
            oracles.no_goal_violated("SG05"),
            oracles.detection_logged("OBU", "location-consistency"),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def _bind_ad12(attack) -> TestCase:
    """AD12: passive profiling of V2X traffic."""

    def arm(scenario: ConstructionSiteScenario):
        return EavesdropAttack("profiler", scenario.clock, scenario.v2x)

    def profile_built(scenario, result) -> bool:
        injector = scenario._profiler  # set below
        profile = injector.profile()
        return sum(profile["by_kind"].values()) >= 10

    def arm_and_remember(scenario):
        injector = arm(scenario)
        scenario._profiler = injector
        return injector

    return TestCase(
        attack_id=attack.identifier,
        title=attack.description,
        build_scenario=lambda: ConstructionSiteScenario(),
        arm_attack=arm_and_remember,
        duration_ms=30000.0,
        success_oracle=oracles.predicate(
            "usage profile constructed from >= 10 observations",
            profile_built,
        ),
        failure_oracle=oracles.predicate(
            "fewer than 10 observations collected",
            lambda scenario, result: not profile_built(scenario, result),
        ),
        safety_goal_ids=attack.safety_goal_ids,
    )


def build_bindings() -> BindingRegistry:
    """Executable bindings for the UC I attacks the paper details."""
    registry = BindingRegistry()
    registry.bind_id("AD20", _bind_ad20)
    registry.bind_id("AD14", _bind_ad14)
    registry.bind_id("AD05", _bind_ad05)
    registry.bind_id("AD07", _bind_ad07)
    registry.bind_id("AD12", _bind_ad12)
    return registry


#: UC I as declarative stage registrations: the factories for each
#: process step, consumed by the :mod:`repro.api` builder/Workspace.
DEFINITION = UseCaseDefinition(
    key="uc1",
    title=USE_CASE_NAME,
    threat_library=build_catalog,
    hara=build_hara,
    attacks=build_attacks,
    justifications=tuple(JUSTIFICATIONS.items()),
    bindings=build_bindings,
    author="UC1 analysis",
)


__all__ = [
    "DEFINITION",
    "JUSTIFICATIONS",
    "USE_CASE_NAME",
    "build_attacks",
    "build_bindings",
    "build_hara",
    "build_pipeline",
    "pipeline_builder",
]
