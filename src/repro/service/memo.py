"""Content-addressed variant memoisation (the daemon's warm path).

A variant's outcome is a pure function of three things: its **resolved
configuration** (the variant payload merged over its scenario spec's
factory, defaults and topology layers), the **derived seed** the runtime
would hand it, and the **code** that executes it.  :func:`variant_key`
hashes exactly those three into one sha256 hex digest; the
:class:`MemoStore` maps that digest to the cached
:class:`~repro.engine.campaign.VariantOutcome`.

Consequences, by construction:

* resubmitting any previously-run variant -- from any client, in any
  order, inside any batch -- returns the cached outcome instantly;
* a daemon killed mid-campaign resumes from its journal: completed
  variants are served from cache, only the remainder re-executes;
* editing **any** ``repro`` source file changes
  :func:`code_fingerprint`, which changes every key, which invalidates
  the whole store -- stale entries can never leak across a code change
  (see CONTRIBUTING, "code-fingerprint invalidation").

Persistence is an append-only JSONL journal (one entry per executed
variant, flushed as written), so a hard kill loses at most the final,
partially-written line -- which the loader detects and skips.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Mapping

from repro.engine.campaign import CAMPAIGN_TRACE_MODE, VariantOutcome
from repro.engine.registry import ScenarioRegistry, default_registry
from repro.engine.spec import VariantSpec
from repro.errors import ReproError
from repro.faults import fault_point
from repro.runtime import derive_seed

#: Schema tag of every journal entry; part of the key derivation too, so
#: bumping it invalidates all previously-journalled outcomes.
MEMO_SCHEMA = "repro.memo/v1"

#: The journal file name inside a memo directory.
JOURNAL_NAME = "memo.jsonl"


@functools.lru_cache(maxsize=None)
def code_fingerprint() -> str:
    """One sha256 hex digest over every ``repro`` source file.

    The digest covers the sorted ``(relative path, content digest)``
    pairs of all ``*.py`` files under the installed ``repro`` package --
    any code change, anywhere in the package, yields a new fingerprint
    and therefore invalidates every memo entry.  Cached per process (the
    tree does not change under a running daemon; restart to pick up new
    code).
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        digest.update(rel.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()


def variant_key(
    variant: VariantSpec,
    *,
    registry: ScenarioRegistry | None = None,
    seed_root: int = 1,
    trace_mode: str = CAMPAIGN_TRACE_MODE,
    fingerprint: str | None = None,
) -> str:
    """The content address of one variant's outcome.

    ``sha256(resolved variant config + derived seed + code
    fingerprint)``: the resolved config is the variant payload plus the
    owning spec's factory/defaults/topology layers (so two registries
    binding the same variant id to different scenarios can never
    collide), the seed derives from ``seed_root`` and the variant id
    (stable across submission order and batching), and the fingerprint
    is :func:`code_fingerprint` unless pinned by the caller.

    Raises:
        ValidationError: when the variant's scenario is not registered
            (an unkeyable variant cannot be memoised).
    """
    registry = registry or default_registry()
    spec = registry.get(variant.scenario)
    payload = {
        "schema": MEMO_SCHEMA,
        "variant": variant.to_payload(),
        "scenario": {
            "factory": spec.factory,
            "use_case": spec.use_case,
            "defaults": spec.defaults,
            "topology": spec.topology,
        },
        "seed": derive_seed(seed_root, variant.variant_id),
        "trace_mode": trace_mode,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class MemoStore:
    """A thread-safe, journal-backed outcome cache keyed by content.

    Args:
        path: Directory holding the append-only journal
            (:data:`JOURNAL_NAME`); created on first write.  ``None``
            keeps the store purely in memory (tests, ad-hoc runs).
        registry: Registry the key derivation resolves scenario specs
            against (default: the stock registry).
        seed_root: Root seed folded into every key.
        trace_mode: The trace mode folded into every key -- outcomes
            cached under ``"counts"`` are not served to a ``"full"``
            campaign, whose stats legitimately differ.

    The store implements the campaign runner's duck-typed memo protocol
    (:meth:`lookup` / :meth:`record`), so it plugs straight into
    :func:`repro.engine.campaign.iter_campaign`'s ``memo=`` parameter.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        registry: ScenarioRegistry | None = None,
        seed_root: int = 1,
        trace_mode: str = CAMPAIGN_TRACE_MODE,
    ) -> None:
        self._dir = Path(path) if path is not None else None
        self._registry = registry or default_registry()
        self._seed_root = seed_root
        self._trace_mode = trace_mode
        self._fingerprint = code_fingerprint()
        self._entries: dict[str, dict[str, Any]] = {}
        self._lock = threading.RLock()
        self._file: Any = None
        self._torn = False
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.corrupt = 0
        if self._dir is not None:
            self._load()

    # -- persistence -------------------------------------------------------

    @property
    def journal_path(self) -> Path | None:
        """The journal file path (``None`` for an in-memory store)."""
        if self._dir is None:
            return None
        return self._dir / JOURNAL_NAME

    def _load(self) -> None:
        path = self.journal_path
        assert path is not None
        if not path.exists():
            return
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A hard kill can truncate the final append; anything
                # unparseable is dropped rather than poisoning the cache.
                self.corrupt += 1
                continue
            if (
                not isinstance(entry, Mapping)
                or entry.get("schema") != MEMO_SCHEMA
                or "key" not in entry
                or "outcome" not in entry
            ):
                self.corrupt += 1
                continue
            if entry.get("fingerprint") != self._fingerprint:
                # The code changed since this outcome was journalled: the
                # key derivation would no longer produce this key, so the
                # entry can never be looked up -- drop it as stale.
                self.stale += 1
                continue
            self._entries[entry["key"]] = dict(entry)

    def _append(self, entry: Mapping[str, Any]) -> None:
        if self._dir is None:
            return
        if self._file is None:
            self._dir.mkdir(parents=True, exist_ok=True)
            assert self.journal_path is not None
            self._file = open(  # noqa: SIM115 - held open for appends
                self.journal_path, "a", encoding="utf-8"
            )
        line = json.dumps(entry, default=repr)
        if self._torn:
            # Recover the line boundary after a torn tail: starting on a
            # fresh line confines the damage to the one torn entry.
            self._file.write("\n")
            self._torn = False
        if fault_point("journal-append") is not None:
            # Injected torn write: persist half a line with no newline,
            # exactly what a hard kill mid-append leaves behind.  The
            # in-memory entry stays valid; only the journalled copy is
            # torn, and the loader's corrupt-line handling skips it.
            self._file.write(line[: max(1, len(line) // 2)])
            self._file.flush()
            self._torn = True
            return
        self._file.write(line + "\n")
        self._file.flush()

    def close(self) -> None:
        """Release the journal handle (idempotent; store stays usable
        for lookups, reopens on the next write)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "MemoStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the key/value surface ---------------------------------------------

    def key_for(self, variant: VariantSpec) -> str:
        """This store's content address for one variant."""
        return variant_key(
            variant,
            registry=self._registry,
            seed_root=self._seed_root,
            trace_mode=self._trace_mode,
            fingerprint=self._fingerprint,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> VariantOutcome | None:
        """The cached outcome under ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        return VariantOutcome.from_payload(entry["outcome"])

    def put(self, key: str, variant_id: str, outcome: VariantOutcome) -> None:
        """Journal + cache one executed outcome under ``key``.

        Cached outcomes are stored as executed (``from_cache`` reset), so
        a later :meth:`lookup` can mark its copy honestly.  Re-putting an
        existing key is a no-op -- the journal never grows from replays.
        """
        if outcome.from_cache:
            outcome = dataclasses.replace(outcome, from_cache=False)
        entry = {
            "schema": MEMO_SCHEMA,
            "key": key,
            "variant_id": variant_id,
            "fingerprint": self._fingerprint,
            "outcome": dataclasses.asdict(outcome),
        }
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = entry
            self._append(entry)

    # -- the campaign runner's memo protocol -------------------------------

    def lookup(self, variant: VariantSpec, trace_mode: str | None = None) -> VariantOutcome | None:
        """The cached outcome of ``variant``, marked ``from_cache``.

        Returns ``None`` -- and counts a miss -- for unseen variants,
        for variants whose scenario the registry does not know (they
        cannot be keyed; execution will surface the real error), and for
        a ``trace_mode`` other than the store's own.
        """
        if trace_mode is not None and trace_mode != self._trace_mode:
            with self._lock:
                self.misses += 1
            return None
        try:
            key = self.key_for(variant)
        except (ReproError, KeyError):
            with self._lock:
                self.misses += 1
            return None
        outcome = self.get(key)
        with self._lock:
            if outcome is None:
                self.misses += 1
            else:
                self.hits += 1
        if outcome is None:
            return None
        return dataclasses.replace(outcome, from_cache=True)

    def record(
        self,
        variant: VariantSpec,
        outcome: VariantOutcome,
        trace_mode: str | None = None,
    ) -> None:
        """Cache one freshly-executed outcome (errors are never cached:
        a crash may be environmental, and serving it forever would make
        one bad run permanent)."""
        if outcome.is_error:
            return
        if trace_mode is not None and trace_mode != self._trace_mode:
            return
        try:
            key = self.key_for(variant)
        except (ReproError, KeyError):
            return
        self.put(key, variant.variant_id, outcome)

    # -- reporting ---------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Plain-data store health for ``repro status`` and benches."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stale": self.stale,
                "corrupt": self.corrupt,
                "path": str(self.journal_path) if self._dir else None,
                "fingerprint": self._fingerprint[:12],
            }

    def compact(self) -> int:
        """Rewrite the journal with only live entries; return the count.

        A long-lived daemon accumulates stale lines across code changes;
        compaction drops them.  No-op (returning the live count) for an
        in-memory store.
        """
        with self._lock:
            if self._dir is None:
                return len(self._entries)
            self.close()
            assert self.journal_path is not None
            self._dir.mkdir(parents=True, exist_ok=True)
            tmp = self.journal_path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for entry in self._entries.values():
                    handle.write(json.dumps(entry, default=repr) + "\n")
            tmp.replace(self.journal_path)
            self.stale = 0
            self.corrupt = 0
            return len(self._entries)


__all__ = [
    "JOURNAL_NAME",
    "MEMO_SCHEMA",
    "MemoStore",
    "code_fingerprint",
    "variant_key",
]
