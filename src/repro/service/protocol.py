"""The JSON-lines wire protocol the campaign daemon and clients speak.

One request per connection: the client connects, writes a single JSON
object terminated by ``\\n``, and reads JSON-object lines back until the
server closes the stream.  Most operations answer with exactly one line;
``submit`` streams -- an ``accepted`` line, one ``outcome`` line per
variant as it lands, and a final ``done`` summary -- so clients see
verdicts incrementally rather than at campaign end.

Every message carries ``"schema": "repro.service/v1"``.  Requests name
their operation in ``"op"`` (one of :data:`OPS`); responses either carry
``"ok": true`` plus operation-specific fields, or ``"ok": false`` with
an ``"error"`` object (``type`` and ``message``).

This module is pure message-shaping: no sockets, no threads, no engine
imports -- the daemon and the client both build on it, and tests can
exercise framing against plain file objects.
"""

from __future__ import annotations

import json
from typing import Any, IO, Mapping

from repro.errors import ValidationError

#: Schema tag stamped on (and required of) every wire message.
SERVICE_SCHEMA = "repro.service/v1"

#: The daemon binds loopback only -- the service plane is local by design.
DEFAULT_HOST = "127.0.0.1"

#: Operations a request may name, in the order `repro status` reports them.
OPS = ("ping", "status", "submit", "cancel", "shutdown")

#: Event kinds a streaming ``submit`` response carries after acceptance:
#: any number of ``outcome`` lines, then exactly one ``done``.  A stream
#: that ends without ``done`` was torn (daemon death, dropped socket) --
#: clients treat that as resumable, not as a completed submission.
SUBMISSION_EVENTS = ("outcome", "done")

#: Hard cap on one message line (16 MiB): a full-registry submission with
#: inline variant payloads is ~100 KiB, so this only trips on garbage.
MAX_LINE_BYTES = 16 * 1024 * 1024


def encode_line(message: Mapping[str, Any]) -> bytes:
    """One wire line: compact JSON, schema-stamped, ``\\n``-terminated."""
    payload = {"schema": SERVICE_SCHEMA, **message}
    return (json.dumps(payload, separators=(",", ":"), default=repr) + "\n").encode(
        "utf-8"
    )


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line back into a message dict.

    Raises:
        ValidationError: for non-JSON input, a non-object payload, or a
            missing/mismatched schema tag.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"undecodable wire line: {exc}") from exc
    if not isinstance(message, dict):
        raise ValidationError(
            f"wire line must be a JSON object, got {type(message).__name__}"
        )
    schema = message.get("schema")
    if schema != SERVICE_SCHEMA:
        raise ValidationError(
            f"wire schema mismatch: expected {SERVICE_SCHEMA!r}, got {schema!r}"
        )
    return message


def write_message(stream: IO[bytes], message: Mapping[str, Any]) -> None:
    """Encode and flush one message onto a binary stream."""
    stream.write(encode_line(message))
    stream.flush()


def read_message(stream: IO[bytes]) -> dict[str, Any] | None:
    """Read one message off a binary stream; ``None`` at clean EOF.

    Raises:
        ValidationError: on an oversized or malformed line.
    """
    line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ValidationError(
            f"wire line exceeds {MAX_LINE_BYTES} bytes; refusing to buffer"
        )
    if line.strip() == b"":
        return None
    return decode_line(line)


def validate_request(message: Mapping[str, Any]) -> str:
    """Check a decoded request names a known op; return that op.

    Raises:
        ValidationError: when ``op`` is missing or not one of :data:`OPS`.
    """
    op = message.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ValidationError(
            f"unknown service op {op!r}; expected one of {', '.join(OPS)}"
        )
    return op


def error_response(exc: BaseException, **extra: Any) -> dict[str, Any]:
    """The standard ``ok: false`` response for a failed request."""
    return {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
        **extra,
    }


__all__ = [
    "DEFAULT_HOST",
    "MAX_LINE_BYTES",
    "OPS",
    "SERVICE_SCHEMA",
    "SUBMISSION_EVENTS",
    "decode_line",
    "encode_line",
    "error_response",
    "read_message",
    "validate_request",
    "write_message",
]
