"""``repro.service`` -- the campaign service plane.

Everything a *persistent* campaign daemon needs to serve many clients
from one long-lived process, instead of rebuilding the world per
invocation (the ``iter_campaign`` lifecycle):

* :mod:`repro.service.memo` -- the content-addressed
  :class:`MemoStore`: ``sha256(resolved variant config + derived seed +
  code fingerprint)`` maps to the cached
  :class:`~repro.engine.campaign.VariantOutcome`, so any previously-run
  variant -- submitted by any client, before or after a daemon restart
  -- is served from cache instead of re-executed;
* :mod:`repro.service.scheduler` -- the :class:`Scheduler`: shards
  submissions into :class:`~repro.engine.batch.BatchPlan`-derived work
  units across a worker pool with work-stealing between shards, tracks
  per-shard health (a repeatedly-failing shard is drained and benched
  until it recovers), and streams outcomes back per submission as they
  land;
* :mod:`repro.service.protocol` -- the JSON-lines wire protocol
  (schema ``repro.service/v1``) daemon and clients speak;
* :mod:`repro.service.daemon` -- :class:`CampaignDaemon`, the socket
  server behind ``repro serve``;
* :mod:`repro.service.client` -- :class:`ServiceClient`, the blocking
  client behind ``repro submit`` / ``repro status``.

This package is, by architectural contract (REP009), the **only** place
in the repository allowed to import socket/server machinery
(``socket``, ``socketserver``, ``asyncio``, ``selectors``, ``http``) --
every other module talks to a daemon through :class:`ServiceClient`.
"""

from repro.service.client import DEFAULT_TIMEOUT_S, ServiceClient, ServiceError
from repro.service.daemon import CampaignDaemon
from repro.service.memo import (
    JOURNAL_NAME,
    MEMO_SCHEMA,
    MemoStore,
    code_fingerprint,
    variant_key,
)
from repro.service.protocol import (
    DEFAULT_HOST,
    MAX_LINE_BYTES,
    OPS,
    SERVICE_SCHEMA,
    SUBMISSION_EVENTS,
    decode_line,
    encode_line,
    error_response,
    read_message,
    validate_request,
    write_message,
)
from repro.service.scheduler import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_UNIT_SIZE,
    Scheduler,
    Submission,
)

__all__ = [
    "CampaignDaemon",
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_HOST",
    "DEFAULT_TIMEOUT_S",
    "DEFAULT_UNIT_SIZE",
    "JOURNAL_NAME",
    "MAX_LINE_BYTES",
    "MEMO_SCHEMA",
    "MemoStore",
    "OPS",
    "SERVICE_SCHEMA",
    "SUBMISSION_EVENTS",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "Submission",
    "code_fingerprint",
    "decode_line",
    "encode_line",
    "error_response",
    "read_message",
    "validate_request",
    "variant_key",
    "write_message",
]
