"""``ServiceClient`` -- the blocking client of the campaign daemon.

One method call == one connection == one request: the client connects,
sends a single JSON line, and consumes the response line(s).  Simple
operations (:meth:`ServiceClient.ping`, :meth:`~ServiceClient.status`,
:meth:`~ServiceClient.cancel`, :meth:`~ServiceClient.shutdown`) return
one decoded response; :meth:`~ServiceClient.submit_stream` yields
incrementally -- each variant's :class:`~repro.engine.campaign.
VariantOutcome` the moment the daemon streams it -- and
:meth:`~ServiceClient.submit` collects the stream into submission order.

Anything that goes wrong on the wire (daemon not running, daemon-side
error response, truncated stream) surfaces as :class:`ServiceError`, a
normal :class:`~repro.errors.ReproError` subclass, so CLI and tests
handle service failures like any other library error.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.engine.campaign import VariantOutcome
from repro.engine.spec import VariantSpec
from repro.errors import ReproError, ValidationError
from repro.faults import fault_point
from repro.runtime import RetryPolicy
from repro.service.protocol import (
    DEFAULT_HOST,
    SUBMISSION_EVENTS,
    read_message,
    write_message,
)

#: Seconds a client waits on one response line before giving up.  Long:
#: a single uncached heavyweight variant can take seconds to execute.
DEFAULT_TIMEOUT_S = 300.0


class ServiceError(ReproError):
    """A campaign-service request failed (connection, wire, or daemon).

    Attributes:
        submission_id: The daemon-assigned id of the submission the
            failure interrupted (empty before acceptance).
        outcomes_received: Outcomes consumed off the stream before it
            broke -- together with ``submission_id`` this tells a caller
            exactly how far the campaign got.
        resumable: True when resubmitting is safe and cheap: the daemon
            memoises completed variants, so a resumed submit re-serves
            the finished work from cache and only executes the rest.
    """

    def __init__(
        self,
        message: str,
        *,
        submission_id: str = "",
        outcomes_received: int = 0,
        resumable: bool = False,
    ) -> None:
        super().__init__(message)
        self.submission_id = submission_id
        self.outcomes_received = outcomes_received
        self.resumable = resumable


class ServiceClient:
    """Blocking JSON-lines client for one daemon address.

    Args:
        port: The daemon's TCP port (see ``--port-file`` for discovery).
        host: The daemon's host (loopback by default).
        timeout: Per-read socket timeout in seconds.
        retry: Optional :class:`~repro.runtime.RetryPolicy` enabling
            reconnect-with-backoff (transient connect failures are
            retried with the policy's deterministic delays) and resumable
            submits (:meth:`submit` resubmits after a mid-stream drop;
            the daemon's memo store serves the finished prefix from
            cache).  ``None`` keeps the fail-fast behaviour.
    """

    def __init__(
        self,
        port: int,
        host: str = DEFAULT_HOST,
        *,
        timeout: float = DEFAULT_TIMEOUT_S,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry

    @classmethod
    def from_port_file(
        cls,
        path: str | Path,
        host: str = DEFAULT_HOST,
        *,
        timeout: float = DEFAULT_TIMEOUT_S,
    ) -> "ServiceClient":
        """A client for the port a daemon published via ``--port-file``.

        Raises:
            ServiceError: when the file is missing or not a port number.
        """
        try:
            text = Path(path).read_text(encoding="utf-8").strip()
            port = int(text)
        except (OSError, ValueError) as exc:
            raise ServiceError(f"unreadable port file {path}: {exc}") from exc
        return cls(port, host, timeout=timeout)

    # -- wire --------------------------------------------------------------

    def _connect(self) -> socket.socket:
        """One connection, retried with backoff under a retry policy."""
        attempt = 1
        while True:
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                if self.retry is None or not self.retry.should_retry(
                    type(exc).__name__, attempt
                ):
                    raise ServiceError(
                        f"cannot reach campaign daemon at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
                self.retry.wait(attempt, "connect", self.host, self.port)
                attempt += 1

    def _responses(self, request: Mapping[str, Any]) -> Iterator[dict[str, Any]]:
        """Send one request; yield response messages until EOF."""
        conn = self._connect()
        try:
            with conn, conn.makefile("rwb") as stream:
                write_message(stream, request)
                conn.shutdown(socket.SHUT_WR)  # one request per connection
                while True:
                    try:
                        message = read_message(stream)
                    except ReproError as exc:
                        raise ServiceError(f"bad wire line: {exc}") from exc
                    if message is None:
                        return
                    yield message
        except OSError as exc:
            raise ServiceError(
                f"connection to {self.host}:{self.port} failed mid-request: {exc}"
            ) from exc

    def _roundtrip(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """One request, exactly one response; raise on daemon errors."""
        for message in self._responses(request):
            return self._checked(message)
        raise ServiceError(
            f"daemon at {self.host}:{self.port} closed the connection "
            "without responding"
        )

    @staticmethod
    def _checked(message: dict[str, Any]) -> dict[str, Any]:
        if message.get("ok"):
            return message
        error = message.get("error") or {}
        raise ServiceError(
            f"daemon error: {error.get('type', 'Error')}: "
            f"{error.get('message', 'unknown failure')}"
        )

    # -- simple operations -------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Liveness probe; returns the daemon's response (with its pid)."""
        return self._roundtrip({"op": "ping"})

    def status(self) -> dict[str, Any]:
        """Scheduler + memo store health (see the daemon's ``status`` op)."""
        return self._roundtrip({"op": "status"})

    def cancel(self, submission_id: str) -> dict[str, Any]:
        """Cancel one submission by id; returns its final summary."""
        return self._roundtrip({"op": "cancel", "id": submission_id})

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to stop serving and exit."""
        return self._roundtrip({"op": "shutdown"})

    # -- submission --------------------------------------------------------

    def submit_stream(
        self,
        variants: Sequence[VariantSpec] | None = None,
        *,
        select: Mapping[str, Any] | None = None,
    ) -> Iterator[tuple[str, Any, Any]]:
        """Submit and stream: yields ``("accepted", id, total)`` first,
        then ``("outcome", index, outcome)`` per variant as the daemon
        delivers it, then ``("done", id, summary)``.

        Pass either explicit ``variants`` (shipped as payloads) or a
        ``select`` filter the daemon resolves against its registry.
        """
        if (variants is None) == (select is None):
            raise ValidationError("pass exactly one of variants= or select=")
        request: dict[str, Any] = {"op": "submit"}
        if variants is not None:
            request["variants"] = [v.to_payload() for v in variants]
        else:
            request["select"] = dict(select or {})
        done = False
        submission_id = ""
        outcomes_received = 0
        try:
            for message in self._responses(request):
                message = self._checked(message)
                if message.get("op") == "submit":
                    submission_id = str(message.get("id", ""))
                    yield "accepted", submission_id, message.get("total", 0)
                elif message.get("event") == "outcome":
                    fault_point("client-outcome")
                    outcomes_received += 1
                    yield (
                        "outcome",
                        int(message["index"]),
                        VariantOutcome.from_payload(message["outcome"]),
                    )
                elif message.get("event") == "done":
                    done = True
                    yield "done", submission_id, message.get("summary", {})
                else:
                    raise ServiceError(
                        f"unexpected stream message (not one of "
                        f"{SUBMISSION_EVENTS}): {message}",
                        submission_id=submission_id,
                        outcomes_received=outcomes_received,
                    )
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise self._dropped(exc, submission_id, outcomes_received) from exc
        except ServiceError as exc:
            cause = exc.__cause__
            if isinstance(cause, (ConnectionResetError, BrokenPipeError)):
                raise self._dropped(
                    cause, submission_id, outcomes_received
                ) from cause
            raise
        if not done:
            raise ServiceError(
                f"submission {submission_id or '<unacknowledged>'} stream "
                "ended before its final summary (daemon died mid-campaign?)",
                submission_id=submission_id,
                outcomes_received=outcomes_received,
                resumable=bool(submission_id),
            )

    @staticmethod
    def _dropped(
        exc: OSError, submission_id: str, outcomes_received: int
    ) -> ServiceError:
        """The enriched error for a connection lost mid-stream."""
        return ServiceError(
            f"connection dropped mid-stream on submission "
            f"{submission_id or '<unacknowledged>'} after "
            f"{outcomes_received} outcome(s): {type(exc).__name__}: {exc}",
            submission_id=submission_id,
            outcomes_received=outcomes_received,
            resumable=True,
        )

    def submit(
        self,
        variants: Sequence[VariantSpec] | None = None,
        *,
        select: Mapping[str, Any] | None = None,
    ) -> tuple[tuple[VariantOutcome, ...], dict[str, Any]]:
        """Submit and collect: outcomes in submission order + summary.

        Under a retry policy, a resumable mid-stream failure (dropped
        connection) resubmits after the policy's backoff: the daemon's
        memo store serves already-completed variants from cache, so a
        resume costs only the unfinished remainder.
        """
        attempt = 1
        while True:
            indexed: list[tuple[int, VariantOutcome]] = []
            summary: dict[str, Any] = {}
            try:
                for kind, key, payload in self.submit_stream(
                    variants, select=select
                ):
                    if kind == "outcome":
                        indexed.append((int(key), payload))
                    elif kind == "done":
                        summary = payload
            except ServiceError as exc:
                if (
                    self.retry is None
                    or not exc.resumable
                    or attempt >= self.retry.max_attempts
                ):
                    raise
                self.retry.wait(
                    attempt, "resume", exc.submission_id or "submit"
                )
                attempt += 1
                continue
            indexed.sort(key=lambda pair: pair[0])
            return tuple(outcome for _index, outcome in indexed), summary


__all__ = [
    "DEFAULT_TIMEOUT_S",
    "ServiceClient",
    "ServiceError",
]
