"""The sharded, work-stealing scheduler behind the campaign daemon.

A :class:`Scheduler` owns a small pool of worker threads and a fixed
number of **shards** (independent work deques).  Each accepted
:class:`Submission` is split into :class:`~repro.engine.batch.BatchPlan`
-derived work units (same-``(scenario, family)`` variants stay together,
preserving the batching locality PR 6 built) which are dealt round-robin
across the shards; every worker drains its home shard first and
**steals** from the richest other shard when home runs dry, so one huge
submission cannot starve a small one that landed on another shard.

Results stream: each executed (or memo-served) variant is pushed onto
its submission's event queue the moment it lands, so the daemon can
forward outcomes to a waiting client incrementally.  Execution is
memo-aware -- every variant consults the scheduler's
:class:`~repro.service.memo.MemoStore` (when configured) before running
and records its fresh outcome after -- and failure-proof: a variant
whose execution raises becomes a tagged ``ERROR`` outcome via
:func:`~repro.engine.campaign.error_outcome`, never a dead worker.

Shards carry **health**: every fresh execution feeds its shard's
consecutive-failure counter, and a shard that fails ``failure_threshold``
times in a row is marked unhealthy -- its queued units are redistributed
to the healthy shards and new submissions stop dealing to it until a
success on that shard heals it.  The last healthy shard is never marked,
so the scheduler always keeps accepting work.

Cancellation composes through :meth:`~repro.runtime.CancelToken.child`:
each submission gets a child of the scheduler's token, so cancelling one
submission (client disconnect, explicit ``cancel`` op) skips its
remaining variants while the daemon and its other submissions keep
running, and scheduler shutdown cancels everything at once.
"""

from __future__ import annotations

import collections
import itertools
import logging
import queue
import threading
import time
from typing import Any, Iterable, Sequence

from repro.engine.batch import BatchPlan
from repro.engine.campaign import (
    CAMPAIGN_TRACE_MODE,
    CampaignMemo,
    VariantOutcome,
    _execute_checked,
    error_outcome,
)
from repro.engine.registry import ScenarioRegistry, default_registry
from repro.engine.spec import VariantSpec
from repro.errors import ValidationError
from repro.runtime import CancelToken, JobError

_log = logging.getLogger("repro.service")

#: Default variants per work unit (the stealing granularity).
DEFAULT_UNIT_SIZE = 4

#: Consecutive fresh failures before a shard is marked unhealthy.
DEFAULT_FAILURE_THRESHOLD = 3


class Submission:
    """One accepted batch of variants, with streaming result delivery.

    Consumers read :meth:`events`: ``("outcome", index, outcome)`` per
    variant as it lands (input index, so clients can restore submission
    order), then one final ``("done", summary)``.  All counters are
    monotonic and lock-guarded; :meth:`wait` blocks until the final
    event has been emitted.
    """

    def __init__(
        self,
        submission_id: str,
        variants: Sequence[VariantSpec],
        cancel: CancelToken,
    ) -> None:
        self.id = submission_id
        self.variants = tuple(variants)
        self.cancel = cancel
        self.created_s = time.time()
        self.queue: "queue.Queue[tuple[str, Any, Any]]" = queue.Queue()
        self._lock = threading.Lock()
        self._done = threading.Event()
        self.completed = 0
        self.cached = 0
        self.errors = 0
        self.skipped = 0

    @property
    def total(self) -> int:
        """Number of variants in this submission."""
        return len(self.variants)

    @property
    def done(self) -> bool:
        """True once every variant is accounted for."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the submission finishes; True when it did."""
        return self._done.wait(timeout)

    def events(self) -> Iterable[tuple[str, Any, Any]]:
        """Yield streamed events until (and including) the ``done`` one."""
        while True:
            event = self.queue.get()
            yield event
            if event[0] == "done":
                return

    def summary(self) -> dict[str, Any]:
        """Plain-data progress/result summary for status and ``done``."""
        with self._lock:
            return {
                "id": self.id,
                "total": self.total,
                "completed": self.completed,
                "cached": self.cached,
                "errors": self.errors,
                "skipped": self.skipped,
                "cancelled": self.cancel.cancelled,
                "done": self._done.is_set(),
            }

    # -- scheduler-side delivery -------------------------------------------

    def _deliver(self, index: int, outcome: VariantOutcome) -> None:
        with self._lock:
            self.completed += 1
            if outcome.from_cache:
                self.cached += 1
            if outcome.is_error:
                self.errors += 1
            finished = self.completed + self.skipped >= self.total
        self.queue.put(("outcome", index, outcome))
        if finished:
            self._finish()

    def _skip(self, count: int) -> None:
        if count <= 0:
            return
        with self._lock:
            self.skipped += count
            finished = self.completed + self.skipped >= self.total
        if finished:
            self._finish()

    def _finish(self) -> None:
        if self._done.is_set():
            return
        self._done.set()
        self.queue.put(("done", None, self.summary()))


class Scheduler:
    """Shard-and-steal executor for daemon submissions.

    Args:
        memo: Optional :class:`~repro.engine.campaign.CampaignMemo`
            consulted before and fed after every execution.
        shards: Number of independent work deques (>= 1).
        workers: Worker threads (default: one per shard).
        unit_size: Variants per stealable work unit; units are carved
            from :class:`~repro.engine.batch.BatchPlan` batches so
            same-family locality survives the split.
        registry: Scenario registry variants resolve against.
        trace_mode: Trace mode every execution runs under.
        cancel: Scheduler-wide cancellation token; each submission gets
            a :meth:`~repro.runtime.CancelToken.child` of it.
        failure_threshold: Consecutive fresh (non-memo) failures after
            which a shard is marked unhealthy and its queued units are
            redistributed to healthy shards.  The last healthy shard is
            never marked; a later success heals the shard.
        deadline_s: Scheduler-level wall-clock budget per variant; a
            variant's own ``deadline_s`` takes precedence.
    """

    def __init__(
        self,
        memo: CampaignMemo | None = None,
        *,
        shards: int = 2,
        workers: int | None = None,
        unit_size: int = DEFAULT_UNIT_SIZE,
        registry: ScenarioRegistry | None = None,
        trace_mode: str = CAMPAIGN_TRACE_MODE,
        cancel: CancelToken | None = None,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        deadline_s: float | None = None,
    ) -> None:
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if unit_size < 1:
            raise ValidationError(f"unit_size must be >= 1, got {unit_size}")
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValidationError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        self.memo = memo
        self.shards = shards
        self.workers = workers if workers is not None else shards
        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        self.unit_size = unit_size
        self.registry = registry or default_registry()
        self.trace_mode = trace_mode
        self.cancel = cancel if cancel is not None else CancelToken()
        self.failure_threshold = failure_threshold
        self.deadline_s = deadline_s
        self._deques: list[collections.deque] = [
            collections.deque() for _ in range(shards)
        ]
        self._cond = threading.Condition()
        self._ids = itertools.count(1)
        self._shard_rr = itertools.count()
        self._submissions: "collections.OrderedDict[str, Submission]" = (
            collections.OrderedDict()
        )
        self._stolen = 0
        self._executed = 0
        self._consecutive_failures = [0] * shards
        self._unhealthy: set[int] = set()
        self._redistributed = 0
        self._stopping = False
        self._threads = [
            threading.Thread(
                target=self._worker, args=(i,), name=f"repro-sched-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        self.cancel.on_cancel(self._wake_all)

    # -- submission --------------------------------------------------------

    def submit(self, variants: Iterable[VariantSpec]) -> Submission:
        """Accept a batch of variants; return its live :class:`Submission`.

        Work units are enqueued immediately (round-robin over shards);
        outcomes stream onto the submission's queue as workers get to
        them.  An empty batch finishes instantly.
        """
        variant_list = list(variants)
        submission = Submission(
            f"sub-{next(self._ids):04d}", variant_list, self.cancel.child()
        )
        with self._cond:
            if self._stopping:
                raise ValidationError("scheduler is shut down")
            self._submissions[submission.id] = submission
        if not variant_list:
            submission._finish()
            return submission
        units: list[tuple[Submission, tuple[tuple[int, VariantSpec], ...]]] = []
        for batch in BatchPlan.plan(variant_list, self.unit_size):
            jobs = tuple(batch.jobs())
            for start in range(0, len(jobs), self.unit_size):
                units.append((submission, jobs[start : start + self.unit_size]))
        with self._cond:
            healthy = [
                i for i in range(self.shards) if i not in self._unhealthy
            ] or list(range(self.shards))
            for unit in units:
                self._deques[
                    healthy[next(self._shard_rr) % len(healthy)]
                ].append(unit)
            self._cond.notify_all()
        return submission

    def get(self, submission_id: str) -> Submission:
        """Look up a live (or finished) submission by id.

        Raises:
            ValidationError: for an unknown id.
        """
        with self._cond:
            submission = self._submissions.get(submission_id)
        if submission is None:
            raise ValidationError(f"unknown submission {submission_id!r}")
        return submission

    def cancel_submission(self, submission_id: str) -> Submission:
        """Cancel one submission; its unexecuted variants are skipped."""
        submission = self.get(submission_id)
        submission.cancel.cancel()
        with self._cond:
            self._cond.notify_all()
        return submission

    # -- workers -----------------------------------------------------------

    def _wake_all(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _take_unit(self, home: int):
        """One unit from the home shard, else stolen from the richest.

        Returns ``None`` when the scheduler is cancelled, or when it is
        stopping and every shard is empty (a graceful shutdown drains
        queued units first).  Must be called with the condition held.
        """
        while True:
            if self.cancel.cancelled:
                return None
            if self._deques[home]:
                return self._deques[home].popleft()
            richest = max(
                (i for i in range(self.shards) if i != home),
                key=lambda i: len(self._deques[i]),
                default=None,
            )
            if richest is not None and self._deques[richest]:
                self._stolen += 1
                # Steal from the tail: the head is what the victim's own
                # worker touches next, so tail-stealing minimises contention
                # on the hot end of the deque.
                return self._deques[richest].pop()
            if self._stopping:
                return None
            self._cond.wait(timeout=0.5)

    def _worker(self, home: int) -> None:
        home %= self.shards
        while True:
            with self._cond:
                unit = self._take_unit(home)
            if unit is None:
                return
            submission, jobs = unit
            if submission.cancel.cancelled:
                submission._skip(len(jobs))
                continue
            for index, variant in jobs:
                if submission.cancel.cancelled:
                    submission._skip(1)
                    continue
                submission._deliver(index, self._run_one(variant, home))

    def _run_one(self, variant: VariantSpec, shard: int) -> VariantOutcome:
        """Memo lookup -> execute -> memo record, error-proofed.

        Every fresh execution feeds the owning shard's health counter:
        memo hits are neutral, successes heal, failures accumulate
        towards :attr:`failure_threshold` (see :meth:`_note_result`).
        """
        if self.memo is not None:
            hit = self.memo.lookup(variant, self.trace_mode)
            if hit is not None:
                return hit
        started = time.perf_counter()
        try:
            outcome = _execute_checked(
                variant,
                self.registry,
                trace_mode=self.trace_mode,
                default_deadline_s=self.deadline_s,
            )
        except Exception as exc:  # noqa: BLE001 - the daemon must survive
            _log.warning(
                "variant %s raised %s: %s",
                variant.variant_id,
                type(exc).__name__,
                exc,
            )
            self._note_result(shard, failed=True)
            return error_outcome(
                variant,
                JobError.from_exception(exc),
                time.perf_counter() - started,
            )
        with self._cond:
            self._executed += 1
        self._note_result(shard, failed=False)
        if self.memo is not None:
            self.memo.record(variant, outcome, self.trace_mode)
        return outcome

    def _note_result(self, shard: int, *, failed: bool) -> None:
        """Track one fresh execution against ``shard``'s health.

        ``failure_threshold`` consecutive failures mark the shard
        unhealthy: its queued units move to healthy shards (so work never
        strands behind a poisoned queue) and :meth:`submit` stops dealing
        to it.  The *last* healthy shard is never marked -- somebody has
        to keep accepting work -- and any later success heals the shard.
        """
        with self._cond:
            if not failed:
                self._consecutive_failures[shard] = 0
                if shard in self._unhealthy:
                    self._unhealthy.discard(shard)
                    _log.info("shard %d healed; dealing resumes", shard)
                return
            self._consecutive_failures[shard] += 1
            if (
                shard in self._unhealthy
                or self._consecutive_failures[shard] < self.failure_threshold
            ):
                return
            healthy = [
                i
                for i in range(self.shards)
                if i != shard and i not in self._unhealthy
            ]
            if not healthy:
                return
            self._unhealthy.add(shard)
            moved = 0
            while self._deques[shard]:
                unit = self._deques[shard].popleft()
                self._deques[healthy[moved % len(healthy)]].append(unit)
                moved += 1
            self._redistributed += moved
            _log.warning(
                "shard %d unhealthy after %d consecutive failures; "
                "redistributed %d queued unit(s)",
                shard,
                self._consecutive_failures[shard],
                moved,
            )
            self._cond.notify_all()

    # -- reporting / lifecycle ---------------------------------------------

    def status(self) -> dict[str, Any]:
        """Plain-data scheduler health for the ``status`` op and benches."""
        with self._cond:
            queued = sum(len(d) for d in self._deques)
            submissions = [s.summary() for s in self._submissions.values()]
            stolen = self._stolen
            executed = self._executed
            unhealthy = sorted(self._unhealthy)
            redistributed = self._redistributed
        active = sum(1 for s in submissions if not s["done"])
        return {
            "shards": self.shards,
            "workers": self.workers,
            "queued_units": queued,
            "active_submissions": active,
            "total_submissions": len(submissions),
            "executed": executed,
            "stolen_units": stolen,
            "unhealthy_shards": unhealthy,
            "redistributed_units": redistributed,
            "submissions": submissions,
        }

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every accepted submission finished; True if all did."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            submissions = list(self._submissions.values())
        for submission in submissions:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not submission.wait(remaining):
                return False
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers (idempotent).  ``wait=False`` abandons queued
        units; in-flight variants still finish (threads are daemonic)."""
        with self._cond:
            self._stopping = True
            if not wait:
                for shard in self._deques:
                    shard.clear()
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


__all__ = [
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_UNIT_SIZE",
    "Scheduler",
    "Submission",
]
