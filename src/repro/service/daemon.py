"""``CampaignDaemon`` -- the persistent socket server behind ``repro serve``.

One daemon process owns one :class:`~repro.service.scheduler.Scheduler`
and one :class:`~repro.service.memo.MemoStore` and serves any number of
clients over a loopback TCP socket speaking the JSON-lines protocol of
:mod:`repro.service.protocol`.  Each connection carries exactly one
request; ``submit`` responses stream (accepted, one outcome per variant,
final summary) so clients see verdicts as they land.

The daemon is crash-tolerant by construction: every executed variant is
journalled by the memo store before its outcome reaches the client, so a
killed daemon restarted against the same ``--memo-dir`` serves completed
variants from cache and re-executes only the remainder.  A client that
disconnects mid-stream cancels its own submission (and only its own).

This module -- with the rest of :mod:`repro.service` -- is the only
place in the repository allowed to import socket machinery (REP009).
"""

from __future__ import annotations

import logging
import os
import socketserver
import threading
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Mapping

from repro.engine.registry import ScenarioRegistry, default_registry
from repro.engine.spec import VariantSpec
from repro.errors import ReproError, ValidationError
from repro.service.memo import MemoStore
from repro.service.protocol import (
    DEFAULT_HOST,
    error_response,
    read_message,
    validate_request,
    write_message,
)
from repro.service.scheduler import Scheduler, Submission

_log = logging.getLogger("repro.service")


class _ServiceServer(socketserver.ThreadingTCPServer):
    """Loopback TCP server with a back-reference to its daemon."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], daemon: "CampaignDaemon") -> None:
        super().__init__(address, _RequestHandler)
        self.campaign_daemon = daemon

    def handle_error(self, request: Any, client_address: Any) -> None:
        # The stock implementation prints a traceback to stderr; a daemon
        # logs instead (and REP008 keeps stdout for the CLI alone).
        _log.exception("error handling connection from %s", client_address)


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection == one request; ``submit`` streams its response."""

    server: _ServiceServer

    def handle(self) -> None:
        daemon = self.server.campaign_daemon
        try:
            request = read_message(self.rfile)
        except ReproError as exc:
            write_message(self.wfile, error_response(exc))
            return
        if request is None:
            return
        try:
            op = validate_request(request)
            handler = getattr(daemon, f"_op_{op}")
            handler(request, self.wfile)
        except (BrokenPipeError, ConnectionError):
            _log.warning("client %s disconnected mid-response", self.client_address)
        except ReproError as exc:
            self._respond_error(exc)
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            _log.exception("unhandled error serving %s", request.get("op"))
            self._respond_error(exc)

    def _respond_error(self, exc: BaseException) -> None:
        try:
            write_message(self.wfile, error_response(exc))
        except (BrokenPipeError, ConnectionError, OSError):
            _log.warning("client gone before error response could be sent")


class CampaignDaemon:
    """The long-lived campaign service process.

    Args:
        host: Bind address (loopback by default; the service plane is
            deliberately local).
        port: TCP port; ``0`` (default) picks an ephemeral port --
            publish it with ``port_file`` so clients can find it.
        memo_dir: Journal directory for the content-addressed
            :class:`~repro.service.memo.MemoStore`; ``None`` memoises
            in-memory only (no crash recovery).
        shards / workers / unit_size: Scheduler geometry (see
            :class:`~repro.service.scheduler.Scheduler`).
        registry: Scenario registry submissions resolve against.
        port_file: Path the bound port is written to after binding.
        failure_threshold: Consecutive failures before the scheduler
            marks a shard unhealthy and redistributes its queue
            (``None``: the scheduler's default).
        deadline_s: Service-wide wall-clock budget per variant
            (``None``: no deadline; a variant's own takes precedence).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = 0,
        *,
        memo_dir: str | Path | None = None,
        shards: int = 2,
        workers: int | None = None,
        unit_size: int | None = None,
        registry: ScenarioRegistry | None = None,
        port_file: str | Path | None = None,
        failure_threshold: int | None = None,
        deadline_s: float | None = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.memo = MemoStore(memo_dir, registry=self.registry)
        scheduler_args: dict[str, Any] = {"shards": shards, "workers": workers}
        if unit_size is not None:
            scheduler_args["unit_size"] = unit_size
        if failure_threshold is not None:
            scheduler_args["failure_threshold"] = failure_threshold
        if deadline_s is not None:
            scheduler_args["deadline_s"] = deadline_s
        self.scheduler = Scheduler(
            self.memo, registry=self.registry, **scheduler_args
        )
        self._server = _ServiceServer((host, port), self)
        self.host, self.port = self._server.server_address[:2]
        self.started_s = time.time()
        self._serve_thread: threading.Thread | None = None
        if port_file is not None:
            Path(port_file).write_text(f"{self.port}\n", encoding="utf-8")
        _log.info(
            "campaign daemon listening on %s:%d (memo: %s)",
            self.host,
            self.port,
            self.memo.journal_path or "in-memory",
        )

    # -- lifecycle ---------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`stop` (blocking; the ``repro serve`` path)."""
        try:
            self._server.serve_forever(poll_interval=0.2)
        finally:
            self._close()

    def start(self) -> "CampaignDaemon":
        """Serve on a background thread (the in-process/test path)."""
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-daemon",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release everything (idempotent)."""
        self._server.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        self._close()

    def _close(self) -> None:
        self._server.server_close()
        self.scheduler.shutdown(wait=False)
        self.memo.close()

    def __enter__(self) -> "CampaignDaemon":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- operations --------------------------------------------------------

    def _op_ping(self, request: Mapping[str, Any], stream: Any) -> None:
        write_message(
            stream, {"ok": True, "op": "ping", "pid": os.getpid()}
        )

    def _op_status(self, request: Mapping[str, Any], stream: Any) -> None:
        write_message(
            stream,
            {
                "ok": True,
                "op": "status",
                "pid": os.getpid(),
                "uptime_s": round(time.time() - self.started_s, 3),
                "scheduler": self.scheduler.status(),
                "memo": self.memo.status(),
            },
        )

    def _op_cancel(self, request: Mapping[str, Any], stream: Any) -> None:
        submission_id = request.get("id")
        if not isinstance(submission_id, str):
            raise ValidationError("cancel requires a submission 'id'")
        submission = self.scheduler.cancel_submission(submission_id)
        write_message(
            stream, {"ok": True, "op": "cancel", "summary": submission.summary()}
        )

    def _op_shutdown(self, request: Mapping[str, Any], stream: Any) -> None:
        write_message(stream, {"ok": True, "op": "shutdown"})
        _log.info("shutdown requested over the wire")
        # serve_forever cannot be stopped from a handler thread it owns;
        # hand the stop to a helper thread and let this handler return.
        threading.Thread(target=self.stop, name="repro-daemon-stop").start()

    def _resolve_variants(
        self, request: Mapping[str, Any]
    ) -> tuple[VariantSpec, ...]:
        """The variants a ``submit`` request names.

        Either explicit ``variants`` payloads (client-built specs) or a
        server-side ``select`` filter over the daemon's registry --
        exactly the filters ``CampaignRunner.select`` takes.
        """
        payloads = request.get("variants")
        selector = request.get("select")
        if payloads is not None and selector is not None:
            raise ValidationError("pass either 'variants' or 'select', not both")
        if payloads is not None:
            if not isinstance(payloads, list):
                raise ValidationError("'variants' must be a list of payloads")
            return tuple(VariantSpec.from_payload(p) for p in payloads)
        if selector is None:
            raise ValidationError("submit requires 'variants' or 'select'")
        if not isinstance(selector, Mapping):
            raise ValidationError("'select' must be an object of filters")
        allowed = {"scenario", "family", "attack", "limit", "use_case"}
        unknown = set(selector) - allowed
        if unknown:
            raise ValidationError(
                f"unknown select filters: {', '.join(sorted(unknown))}"
            )
        return self.registry.variants(**dict(selector))

    def _op_submit(self, request: Mapping[str, Any], stream: Any) -> None:
        variants = self._resolve_variants(request)
        submission = self.scheduler.submit(variants)
        _log.info(
            "accepted %s: %d variant(s)", submission.id, submission.total
        )
        try:
            write_message(
                stream,
                {
                    "ok": True,
                    "op": "submit",
                    "id": submission.id,
                    "total": submission.total,
                },
            )
            for kind, index, payload in submission.events():
                if kind == "outcome":
                    write_message(
                        stream,
                        {
                            "ok": True,
                            "event": "outcome",
                            "id": submission.id,
                            "index": index,
                            "outcome": asdict(payload),
                        },
                    )
                else:
                    write_message(
                        stream,
                        {"ok": True, "event": "done", "summary": payload},
                    )
        except (BrokenPipeError, ConnectionError, OSError):
            # The client went away mid-stream: its submission must not
            # keep burning workers, but nobody else's may be touched.
            _log.warning(
                "client disconnected; cancelling %s", submission.id
            )
            self.scheduler.cancel_submission(submission.id)


__all__ = [
    "CampaignDaemon",
]
