"""Attack descriptions -- the primary output artifact of SaSeVAL (§III-C).

An attack description "operates on the concept level": it is a structured,
natural-language specification that names the safety goal(s) and threat
scenario addressed and gives a tester everything needed to later implement
the attack.  Tables VI and VII of the paper show two complete instances
(AD20 -- packet flooding against the OBU/RSU interface; AD08 -- modified
keys against the keyless-entry gateway); :class:`AttackDescription` mirrors
their row structure field by field.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ValidationError
from repro.model.identifiers import (
    require_attack_id,
    require_safety_goal_id,
    require_threat_scenario_id,
)
from repro.model.threat import AttackType, StrideType


class AttackCategory(enum.Enum):
    """Impact category of an attack description.

    The paper's UC II found "27 possible attacks with safety critical
    impact and additionally two attacks, which deal with privacy issues",
    so the category distinguishes safety-impacting from privacy-impacting
    attacks (the proposed future extension).
    """

    SAFETY = "safety"
    PRIVACY = "privacy"


@dataclasses.dataclass(frozen=True)
class ThreatLink:
    """The explicit trace from an attack description into the threat library.

    Table VI renders this as "Link to Threat Library -- Threat scenario
    2.1.4: An attacker alters the functioning of the Vehicle Gateway ...".

    Attributes:
        threat_scenario_id: Dotted identifier of the linked threat scenario.
        text: The threat-scenario statement, repeated for self-containment.
    """

    threat_scenario_id: str
    text: str = ""

    def __post_init__(self) -> None:
        require_threat_scenario_id(self.threat_scenario_id)


@dataclasses.dataclass(frozen=True)
class AttackDescription:
    """A concept-level attack specification (Tables VI / VII).

    Field-by-field correspondence with the paper's attack-description
    template (§III-C):

    ==========================  =============================================
    Paper row                   Attribute
    ==========================  =============================================
    Attack Description          ``identifier`` + ``description``
    SG IDs / SG ID and Name     ``safety_goal_ids``
    Interface / ECU             ``interface``
    Link to Threat Library      ``threat_link``
    Types                       ``stride`` (threat type) + ``attack_type``
    Precondition                ``precondition``
    Expected Measures           ``expected_measures``
    Attack Success              ``attack_success``
    Attack Fails                ``attack_fails``
    Attack impl. comments       ``implementation_comments``
    ==========================  =============================================

    Attributes:
        identifier: ``ADnn``.
        description: Attack story, optionally including attacker motivation
            and pursued goal.
        safety_goal_ids: Safety goals whose violation the attack targets.
            An attack may threaten several goals at once (AD20 targets
            SG01, SG02 and SG03).  Privacy attacks may target none.
        interface: The asset interface / ECU under attack ("OBU RSU",
            "ECU_GW").
        threat_link: Trace into the threat library.
        stride: STRIDE threat type of the attack.
        attack_type: The manifestation (Table IV attack type) applied.
        precondition: "The situation in which the attack can get started" --
            environment state or vehicle operational mode.
        expected_measures: Security controls or safety fallbacks assumed to
            react ("Message counter for broken messages").
        attack_success: Criteria under which the attack succeeded -- this
            "usually indicates how the safety goal is violated".
        attack_fails: How a failed attack is detected -- "indicates a
            non-vulnerable system".
        implementation_comments: Guidance for the later executable
            implementation.
        category: Safety- or privacy-impacting.
    """

    identifier: str
    description: str
    safety_goal_ids: tuple[str, ...]
    interface: str
    threat_link: ThreatLink
    stride: StrideType
    attack_type: AttackType
    precondition: str
    expected_measures: str
    attack_success: str
    attack_fails: str
    implementation_comments: str = ""
    category: AttackCategory = AttackCategory.SAFETY

    def __post_init__(self) -> None:
        require_attack_id(self.identifier)
        for goal_id in self.safety_goal_ids:
            require_safety_goal_id(goal_id)
        if len(set(self.safety_goal_ids)) != len(self.safety_goal_ids):
            raise ValidationError(
                f"{self.identifier}: duplicate safety goal reference"
            )
        if self.category is AttackCategory.SAFETY and not self.safety_goal_ids:
            raise ValidationError(
                f"{self.identifier}: a safety-impacting attack must name at "
                "least one safety goal (this is the explicit safety trace "
                "SaSeVAL exists to provide)"
            )
        if not self.description:
            raise ValidationError(f"{self.identifier}: description is empty")
        if self.attack_type.stride is not self.stride:
            raise ValidationError(
                f"{self.identifier}: attack type {self.attack_type.name!r} "
                f"manifests {self.attack_type.stride.value}, but the attack "
                f"declares threat type {self.stride.value} (Step 1.4 mapping "
                "violated)"
            )
        for field_name in (
            "precondition",
            "expected_measures",
            "attack_success",
            "attack_fails",
        ):
            if not getattr(self, field_name):
                raise ValidationError(
                    f"{self.identifier}: {field_name} must be specified for "
                    "reproducibility (RQ3)"
                )

    @property
    def is_privacy_attack(self) -> bool:
        """True for the privacy-impact attacks of §IV-B."""
        return self.category is AttackCategory.PRIVACY

    def targets_goal(self, safety_goal_id: str) -> bool:
        """True when this attack targets the given safety goal."""
        return safety_goal_id in self.safety_goal_ids

    def summary(self) -> str:
        """One-line summary: id, attack type, targeted goals."""
        goals = ", ".join(self.safety_goal_ids) or "privacy"
        return (
            f"{self.identifier} [{self.attack_type.name} / "
            f"{self.stride.value}] -> {goals}"
        )


__all__ = [
    "AttackCategory",
    "AttackDescription",
    "ThreatLink",
]
