"""Driving scenarios and sub-scenarios (paper §III-A1, Table I).

A *scenario* is a high-level operational story ("Road intersection", "Keep
car secure for the whole vehicle product lifetime", "Advanced access to
vehicle").  Each scenario is refined into *sub-scenarios* -- concrete
situations an analysis can reason about (e.g. "An intersection with traffic
lights is approached by a hijacked automated vehicle that has no intention
to stop").

Scenarios are the entry point of threat-library creation: Step 1.1 selects
the useful ones, Step 1.2 studies them (with their assets) to enumerate
threat scenarios.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ValidationError


@dataclasses.dataclass(frozen=True)
class SubScenario:
    """A concrete situation within a scenario.

    Attributes:
        name: Short unique-within-scenario handle.
        description: The natural-language situation text, as it would
            appear in a scenario catalog row.
    """

    name: str
    description: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("sub-scenario name must not be empty")
        if not self.description:
            raise ValidationError(f"sub-scenario {self.name!r} needs a description")


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A high-level driving/ownership scenario (one row group of Table I).

    Attributes:
        name: Unique scenario name, e.g. ``"Road intersection"``.
        description: Optional summary of the scenario's intent.
        sub_scenarios: The concrete situations refining this scenario.
        domain: Application domain; the paper works in ``"automotive"`` but
            states the approach generalises to other safety-critical
            domains, so the field is free-form.
    """

    name: str
    description: str = ""
    sub_scenarios: tuple[SubScenario, ...] = ()
    domain: str = "automotive"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("scenario name must not be empty")
        seen: set[str] = set()
        for sub in self.sub_scenarios:
            if sub.name in seen:
                raise ValidationError(
                    f"scenario {self.name!r} has duplicate sub-scenario {sub.name!r}"
                )
            seen.add(sub.name)

    def sub_scenario(self, name: str) -> SubScenario:
        """Return the named sub-scenario.

        Raises:
            ValidationError: if no sub-scenario has that name.
        """
        for sub in self.sub_scenarios:
            if sub.name == name:
                return sub
        raise ValidationError(
            f"scenario {self.name!r} has no sub-scenario {name!r}"
        )

    def with_sub_scenario(self, sub: SubScenario) -> "Scenario":
        """Return a copy of this scenario with ``sub`` appended."""
        return dataclasses.replace(
            self, sub_scenarios=self.sub_scenarios + (sub,)
        )


__all__ = [
    "Scenario",
    "SubScenario",
]
