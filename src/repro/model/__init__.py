"""Core data model of the SaSeVAL reproduction.

This package defines the value types every other subpackage builds on:
scenarios, assets, threat scenarios, STRIDE threat types, attack types,
HARA ratings, safety goals/concerns and attack descriptions -- plus typed
identifier helpers and JSON serialization.

The model layer has no dependencies beyond :mod:`repro.errors`; analysis
logic (ASIL determination, STRIDE mappings, risk matrices) lives in the
dedicated subpackages :mod:`repro.hara`, :mod:`repro.stride` and
:mod:`repro.tara`.
"""

from repro.model.asset import Asset, AssetGroup, AssetRelevance
from repro.model.attack import (
    AttackCategory,
    AttackDescription,
    ThreatLink,
)
from repro.model.identifiers import (
    attack_id,
    function_id,
    next_id,
    safety_goal_id,
    threat_scenario_id,
)
from repro.model.ratings import (
    Asil,
    CalLevel,
    Controllability,
    Exposure,
    FailureMode,
    FeasibilityRating,
    ImpactRating,
    RiskLevel,
    Severity,
)
from repro.model.safety import (
    HazardRating,
    SafetyConcern,
    SafetyGoal,
    VehicleFunction,
)
from repro.model.scenario import Scenario, SubScenario
from repro.model.threat import AttackType, StrideType, ThreatScenario

__all__ = [
    "Asset",
    "AssetGroup",
    "AssetRelevance",
    "AttackCategory",
    "AttackDescription",
    "AttackType",
    "Asil",
    "CalLevel",
    "Controllability",
    "Exposure",
    "FailureMode",
    "FeasibilityRating",
    "HazardRating",
    "ImpactRating",
    "RiskLevel",
    "SafetyConcern",
    "SafetyGoal",
    "Scenario",
    "Severity",
    "StrideType",
    "SubScenario",
    "ThreatLink",
    "ThreatScenario",
    "VehicleFunction",
    "attack_id",
    "function_id",
    "next_id",
    "safety_goal_id",
    "threat_scenario_id",
]
