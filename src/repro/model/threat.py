"""Threat scenarios, STRIDE threat types and attack types (§III-A2..A4).

The central chain of the threat library is::

    scenario -> asset -> ThreatScenario -> StrideType -> AttackType

A *threat scenario* is a natural-language statement of what could go wrong
for an asset ("Spoofing of messages by impersonation").  Each is mapped to
one (or more) *threat types* of the Microsoft STRIDE model, and each STRIDE
type has a fixed set of *attack types* -- the concrete manifestations a
tester can implement (Table IV).  This module holds the value types; the
normative STRIDE->attack-type table lives in :mod:`repro.stride.mapping`.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ValidationError
from repro.model.identifiers import require_threat_scenario_id


class StrideType(enum.Enum):
    """The six Microsoft STRIDE threat types (Swiderski & Snyder 2004)."""

    SPOOFING = "Spoofing"
    TAMPERING = "Tampering"
    REPUDIATION = "Repudiation"
    INFORMATION_DISCLOSURE = "Information disclosure"
    DENIAL_OF_SERVICE = "Denial of service"
    ELEVATION_OF_PRIVILEGE = "Elevation of privilege"

    @property
    def violated_property(self) -> str:
        """The security property each STRIDE type violates."""
        return _VIOLATED_PROPERTIES[self]

    @classmethod
    def from_label(cls, label: str) -> "StrideType":
        """Parse a threat-type label case-insensitively.

        Accepts the full name and common short forms ("DoS", "EoP",
        "Info disclosure").
        """
        normalized = label.strip().lower()
        aliases = {
            "dos": cls.DENIAL_OF_SERVICE,
            "eop": cls.ELEVATION_OF_PRIVILEGE,
            "info disclosure": cls.INFORMATION_DISCLOSURE,
            "information disclosure": cls.INFORMATION_DISCLOSURE,
            "elevation privilege": cls.ELEVATION_OF_PRIVILEGE,
        }
        if normalized in aliases:
            return aliases[normalized]
        for member in cls:
            if member.value.lower() == normalized:
                return member
        raise ValueError(f"unknown STRIDE threat type: {label!r}")


_VIOLATED_PROPERTIES = {
    StrideType.SPOOFING: "Authenticity",
    StrideType.TAMPERING: "Integrity",
    StrideType.REPUDIATION: "Non-repudiability",
    StrideType.INFORMATION_DISCLOSURE: "Confidentiality",
    StrideType.DENIAL_OF_SERVICE: "Availability",
    StrideType.ELEVATION_OF_PRIVILEGE: "Authorization",
}


@dataclasses.dataclass(frozen=True)
class AttackType:
    """A manifestation of a STRIDE threat type (one cell of Table IV).

    Attributes:
        name: The attack-type name, e.g. ``"Fake messages"``, ``"Disable"``.
        stride: The STRIDE threat type this attack type manifests.  A name
            may appear under several STRIDE types (Table IV lists "Config.
            change" under both Tampering and Information disclosure, and
            "Illegal acquisition" under both Information disclosure and
            Elevation of privilege); each (name, stride) pair is a distinct
            :class:`AttackType`.
    """

    name: str
    stride: StrideType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("attack type name must not be empty")

    def __str__(self) -> str:
        return f"{self.name} ({self.stride.value})"


@dataclasses.dataclass(frozen=True)
class ThreatScenario:
    """A natural-language threat statement for an asset (Table III row).

    Attributes:
        identifier: Dotted id as the paper uses ("2.1.4", "3.1.4").
        text: The threat statement, e.g. "Spoofing of messages (e.g.
            802.11p V2X) by impersonation".
        scenario: Name of the scenario this threat was found in.
        asset: Name of the targeted asset.
        stride: STRIDE threat types this scenario maps to (Step 1.3).
            Usually a single type; kept as a tuple because some statements
            legitimately map to more than one.
        attack_examples: Optional concrete example attacks (Table V's
            right-most column).
    """

    identifier: str
    text: str
    scenario: str
    asset: str
    stride: tuple[StrideType, ...]
    attack_examples: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require_threat_scenario_id(self.identifier)
        if not self.text:
            raise ValidationError(
                f"threat scenario {self.identifier} needs a text"
            )
        if not self.stride:
            raise ValidationError(
                f"threat scenario {self.identifier} must map to at least one "
                "STRIDE threat type (Step 1.3 of threat-library creation)"
            )
        if len(set(self.stride)) != len(self.stride):
            raise ValidationError(
                f"threat scenario {self.identifier} lists a STRIDE type twice"
            )

    @property
    def primary_stride(self) -> StrideType:
        """The first (primary) STRIDE classification."""
        return self.stride[0]

    def describes(self, stride: StrideType) -> bool:
        """True when this threat scenario maps to ``stride``."""
        return stride in self.stride


__all__ = [
    "AttackType",
    "StrideType",
    "ThreatScenario",
]
