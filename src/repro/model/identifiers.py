"""Typed identifier helpers for SaSeVAL artifacts.

The paper names its artifacts with short structured identifiers:

* safety goals: ``SG01`` .. ``SG06`` (per use case),
* attack descriptions: ``AD08``, ``AD20``,
* threat scenarios: ``2.1.4``, ``3.1.4`` (section-style dotted numbers,
  e.g. "Threat scenario 3.1.4: Spoofing of messages ... by impersonation"),
* HARA functions: ``Rat01`` ("Function (with ID) ... (Rat01)").

This module centralises creation and validation of those identifier forms so
that every subpackage produces identically shaped IDs and cross-references
can be checked mechanically (a prerequisite for the RQ1 traceability
arguments).
"""

from __future__ import annotations

import os
import re
import threading
from typing import Iterable

from repro.errors import ValidationError

_SG_RE = re.compile(r"^SG\d{2,}$")
_AD_RE = re.compile(r"^AD\d{2,}$")
_TS_RE = re.compile(r"^\d+(\.\d+)+$")
_FN_RE = re.compile(r"^Rat\d{2,}$")


def safety_goal_id(number: int) -> str:
    """Return the canonical safety-goal identifier, e.g. ``SG01``.

    >>> safety_goal_id(1)
    'SG01'
    """
    if number < 1:
        raise ValidationError(f"safety goal number must be >= 1, got {number}")
    return f"SG{number:02d}"


def attack_id(number: int) -> str:
    """Return the canonical attack-description identifier, e.g. ``AD20``.

    >>> attack_id(8)
    'AD08'
    """
    if number < 1:
        raise ValidationError(f"attack number must be >= 1, got {number}")
    return f"AD{number:02d}"


def threat_scenario_id(*parts: int) -> str:
    """Return a dotted threat-scenario identifier, e.g. ``3.1.4``.

    The paper numbers threat scenarios hierarchically:
    scenario index, asset index, threat index.

    >>> threat_scenario_id(3, 1, 4)
    '3.1.4'
    """
    if len(parts) < 2:
        raise ValidationError("threat scenario ids need at least two parts")
    if any(part < 0 for part in parts):
        raise ValidationError(f"threat scenario id parts must be >= 0: {parts}")
    return ".".join(str(part) for part in parts)


def function_id(number: int) -> str:
    """Return a HARA function identifier, e.g. ``Rat01``.

    >>> function_id(1)
    'Rat01'
    """
    if number < 1:
        raise ValidationError(f"function number must be >= 1, got {number}")
    return f"Rat{number:02d}"


def is_safety_goal_id(value: str) -> bool:
    """True when ``value`` has the canonical ``SGnn`` shape."""
    return bool(_SG_RE.match(value))


def is_attack_id(value: str) -> bool:
    """True when ``value`` has the canonical ``ADnn`` shape."""
    return bool(_AD_RE.match(value))


def is_threat_scenario_id(value: str) -> bool:
    """True when ``value`` has the dotted ``a.b[.c]`` shape."""
    return bool(_TS_RE.match(value))


def is_function_id(value: str) -> bool:
    """True when ``value`` has the canonical ``Ratnn`` shape."""
    return bool(_FN_RE.match(value))


def require_safety_goal_id(value: str) -> str:
    """Validate and return ``value`` or raise :class:`ValidationError`."""
    if not is_safety_goal_id(value):
        raise ValidationError(f"not a safety goal id: {value!r}")
    return value


def require_attack_id(value: str) -> str:
    """Validate and return ``value`` or raise :class:`ValidationError`."""
    if not is_attack_id(value):
        raise ValidationError(f"not an attack description id: {value!r}")
    return value


def require_threat_scenario_id(value: str) -> str:
    """Validate and return ``value`` or raise :class:`ValidationError`."""
    if not is_threat_scenario_id(value):
        raise ValidationError(f"not a threat scenario id: {value!r}")
    return value


def require_function_id(value: str) -> str:
    """Validate and return ``value`` or raise :class:`ValidationError`."""
    if not is_function_id(value):
        raise ValidationError(f"not a HARA function id: {value!r}")
    return value


def next_id(existing: set[str], kind: str) -> str:
    """Return the next free sequential identifier of the given ``kind``.

    ``kind`` is one of ``"SG"``, ``"AD"`` or ``"Rat"``.  Gaps in the
    existing numbering are not reused; the generator always moves past the
    maximum so identifiers stay stable as artifacts are deleted.

    >>> next_id({'AD01', 'AD03'}, 'AD')
    'AD04'
    """
    factories = {"SG": safety_goal_id, "AD": attack_id, "Rat": function_id}
    if kind not in factories:
        raise ValidationError(f"unknown id kind: {kind!r}")
    highest = 0
    for value in existing:
        if value.startswith(kind):
            suffix = value[len(kind):]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
    return factories[kind](highest + 1)


class IdAllocator:
    """Stateful, process-safe sequential identifier allocation.

    :func:`next_id` is a pure function over an ``existing`` set and stays
    that way; this allocator is the *stateful* counterpart campaign
    workers use.  Three guarantees:

    * **thread-safe**: a lock guards the per-kind high-water marks, so
      concurrent claimers in one process never receive the same number;
    * **fork-safe**: the allocator remembers the PID it was last used in
      and discards state inherited across ``fork()``, so a child can
      never silently *continue* the parent's sequence from a stale copy;
    * **cross-worker collision-free**: ``reset(floor=...)`` gives each
      campaign worker a disjoint numbering block (worker *k* mints
      ``AD{k*1000+1}``, ``AD{k*1000+2}``, ...), so identifiers minted in
      parallel workers stay unique even after the results are merged.

    ``reset()`` restores a pristine allocator (tests, worker startup).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._highest: dict[str, int] = {}
        self._floor = 0
        self._pid = os.getpid()

    def _check_process(self) -> None:
        # Called under the lock.  After a fork the child sees the parent's
        # marks; treating them as authoritative would desynchronise the
        # siblings, so the child starts clean.
        pid = os.getpid()
        if pid != self._pid:
            self._highest.clear()
            self._floor = 0
            self._pid = pid

    def claim(self, kind: str, existing: Iterable[str] = ()) -> str:
        """Claim the next free identifier of ``kind``.

        The claimed number moves past the allocator's own high-water
        mark, its numbering floor, and anything in ``existing``, and is
        immediately recorded so concurrent claimers (other threads of
        this process) cannot receive it again.
        """
        factories = {"SG": safety_goal_id, "AD": attack_id, "Rat": function_id}
        if kind not in factories:
            raise ValidationError(f"unknown id kind: {kind!r}")
        with self._lock:
            self._check_process()
            highest = max(self._highest.get(kind, 0), self._floor)
            for value in existing:
                if value.startswith(kind):
                    suffix = value[len(kind):]
                    if suffix.isdigit():
                        highest = max(highest, int(suffix))
            number = highest + 1
            self._highest[kind] = number
        return factories[kind](number)

    def reset(self, kind: str | None = None, floor: int | None = None) -> None:
        """Forget the high-water marks (all kinds, or just one).

        ``floor`` additionally (re)bases every future claim: numbers are
        minted strictly above it.  Campaign workers use disjoint floors
        to keep parallel-minted identifiers collision-free.
        """
        if floor is not None and floor < 0:
            raise ValidationError(f"floor must be >= 0, got {floor}")
        with self._lock:
            self._check_process()
            if kind is None:
                self._highest.clear()
            else:
                self._highest.pop(kind, None)
            if floor is not None:
                self._floor = floor

    def high_water_mark(self, kind: str) -> int:
        """The highest number claimed so far for ``kind`` (0 when none)."""
        with self._lock:
            self._check_process()
            return self._highest.get(kind, 0)


#: The process-wide allocator campaign workers and interactive tooling use.
default_allocator = IdAllocator()


def claim_id(kind: str, existing: Iterable[str] = ()) -> str:
    """Claim the next identifier from the process-wide allocator."""
    return default_allocator.claim(kind, existing)


def reset_default_allocator(floor: int = 0) -> None:
    """Reset the process-wide allocator (campaign worker startup, tests).

    ``floor`` bases the worker's numbering block; see
    :meth:`IdAllocator.reset`.
    """
    default_allocator.reset(floor=floor)


__all__ = [
    "IdAllocator",
    "attack_id",
    "claim_id",
    "default_allocator",
    "function_id",
    "is_attack_id",
    "is_function_id",
    "is_safety_goal_id",
    "is_threat_scenario_id",
    "next_id",
    "require_attack_id",
    "require_function_id",
    "require_safety_goal_id",
    "require_threat_scenario_id",
    "reset_default_allocator",
    "safety_goal_id",
    "threat_scenario_id",
]
