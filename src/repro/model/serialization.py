"""JSON (de)serialization for every model artifact.

Attack descriptions, threat libraries and HARA results are process
*documents* in SaSeVAL -- they are reviewed, versioned and handed between
safety and security teams.  This module provides explicit, schema-stable
dict representations for all model types so those documents can be stored
as JSON and reloaded without loss.

Design choices:

* Explicit per-type functions rather than reflection magic: the wire format
  is an interface, and accidental field renames must not silently change it.
* Enums are stored by their *label* (the paper's vocabulary: ``"ASIL C"``,
  ``"Spoofing"``), not by Python enum name, so the files read like the
  paper's tables.
* ``from_dict`` functions raise :class:`~repro.errors.SerializationError`
  with the failing key path on malformed input.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SerializationError
from repro.model.asset import Asset, AssetGroup, AssetRelevance
from repro.model.attack import (
    AttackCategory,
    AttackDescription,
    ThreatLink,
)
from repro.model.ratings import (
    Asil,
    Controllability,
    Exposure,
    FailureMode,
    Severity,
)
from repro.model.safety import (
    HazardRating,
    SafetyConcern,
    SafetyGoal,
    VehicleFunction,
)
from repro.model.scenario import Scenario, SubScenario
from repro.model.threat import AttackType, StrideType, ThreatScenario


def _require(payload: dict[str, Any], key: str, context: str) -> Any:
    """Fetch a mandatory key or raise a descriptive SerializationError."""
    if key not in payload:
        raise SerializationError(f"{context}: missing key {key!r}")
    return payload[key]


def _decode_enum(factory: Any, label: str, context: str) -> Any:
    """Decode an enum label via its ``from_label``/value lookup."""
    try:
        if hasattr(factory, "from_label"):
            return factory.from_label(label)
        return factory(label)
    except (ValueError, KeyError) as exc:
        raise SerializationError(f"{context}: {exc}") from exc


# -- scenarios ---------------------------------------------------------------

def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Encode a :class:`Scenario` (with sub-scenarios) as a JSON dict."""
    return {
        "name": scenario.name,
        "description": scenario.description,
        "domain": scenario.domain,
        "sub_scenarios": [
            {"name": sub.name, "description": sub.description}
            for sub in scenario.sub_scenarios
        ],
    }


def scenario_from_dict(payload: dict[str, Any]) -> Scenario:
    """Decode a :class:`Scenario` from its JSON dict."""
    context = f"scenario {payload.get('name', '<unnamed>')!r}"
    subs = tuple(
        SubScenario(
            name=_require(sub, "name", context),
            description=_require(sub, "description", context),
        )
        for sub in payload.get("sub_scenarios", [])
    )
    return Scenario(
        name=_require(payload, "name", "scenario"),
        description=payload.get("description", ""),
        sub_scenarios=subs,
        domain=payload.get("domain", "automotive"),
    )


# -- assets ------------------------------------------------------------------

def asset_to_dict(asset: Asset) -> dict[str, Any]:
    """Encode an :class:`Asset` as a JSON dict (groups sorted for stability)."""
    ordered_groups = [g.value for g in AssetGroup if g in asset.groups]
    return {
        "name": asset.name,
        "groups": ordered_groups,
        "relevance": asset.relevance.value,
        "description": asset.description,
        "interfaces": list(asset.interfaces),
    }


def asset_from_dict(payload: dict[str, Any]) -> Asset:
    """Decode an :class:`Asset` from its JSON dict."""
    context = f"asset {payload.get('name', '<unnamed>')!r}"
    groups = frozenset(
        _decode_enum(AssetGroup, label, context)
        for label in _require(payload, "groups", context)
    )
    relevance_label = payload.get("relevance", AssetRelevance.GENERIC.value)
    relevance = next(
        (member for member in AssetRelevance if member.value == relevance_label),
        None,
    )
    if relevance is None:
        raise SerializationError(
            f"{context}: unknown relevance {relevance_label!r}"
        )
    return Asset(
        name=_require(payload, "name", "asset"),
        groups=groups,
        relevance=relevance,
        description=payload.get("description", ""),
        interfaces=tuple(payload.get("interfaces", [])),
    )


# -- threats -----------------------------------------------------------------

def threat_scenario_to_dict(threat: ThreatScenario) -> dict[str, Any]:
    """Encode a :class:`ThreatScenario` as a JSON dict."""
    return {
        "id": threat.identifier,
        "text": threat.text,
        "scenario": threat.scenario,
        "asset": threat.asset,
        "stride": [stride.value for stride in threat.stride],
        "attack_examples": list(threat.attack_examples),
    }


def threat_scenario_from_dict(payload: dict[str, Any]) -> ThreatScenario:
    """Decode a :class:`ThreatScenario` from its JSON dict."""
    context = f"threat scenario {payload.get('id', '<unnumbered>')}"
    stride = tuple(
        _decode_enum(StrideType, label, context)
        for label in _require(payload, "stride", context)
    )
    return ThreatScenario(
        identifier=_require(payload, "id", "threat scenario"),
        text=_require(payload, "text", context),
        scenario=payload.get("scenario", ""),
        asset=payload.get("asset", ""),
        stride=stride,
        attack_examples=tuple(payload.get("attack_examples", [])),
    )


def attack_type_to_dict(attack_type: AttackType) -> dict[str, Any]:
    """Encode an :class:`AttackType` as a JSON dict."""
    return {"name": attack_type.name, "stride": attack_type.stride.value}


def attack_type_from_dict(payload: dict[str, Any]) -> AttackType:
    """Decode an :class:`AttackType` from its JSON dict."""
    context = f"attack type {payload.get('name', '<unnamed>')!r}"
    return AttackType(
        name=_require(payload, "name", "attack type"),
        stride=_decode_enum(
            StrideType, _require(payload, "stride", context), context
        ),
    )


# -- safety ------------------------------------------------------------------

def vehicle_function_to_dict(function: VehicleFunction) -> dict[str, Any]:
    """Encode a :class:`VehicleFunction` as a JSON dict."""
    return {
        "id": function.identifier,
        "name": function.name,
        "description": function.description,
    }


def vehicle_function_from_dict(payload: dict[str, Any]) -> VehicleFunction:
    """Decode a :class:`VehicleFunction` from its JSON dict."""
    return VehicleFunction(
        identifier=_require(payload, "id", "vehicle function"),
        name=_require(payload, "name", "vehicle function"),
        description=payload.get("description", ""),
    )


def hazard_rating_to_dict(rating: HazardRating) -> dict[str, Any]:
    """Encode a :class:`HazardRating` as a JSON dict."""
    return {
        "function": vehicle_function_to_dict(rating.function),
        "failure_mode": rating.failure_mode.value,
        "hazard": rating.hazard,
        "hazardous_event": rating.hazardous_event,
        "severity": rating.severity.name if rating.severity else None,
        "exposure": rating.exposure.name if rating.exposure else None,
        "controllability": (
            rating.controllability.name if rating.controllability else None
        ),
        "asil": rating.asil.value,
        "rationale": rating.rationale,
    }


def hazard_rating_from_dict(payload: dict[str, Any]) -> HazardRating:
    """Decode a :class:`HazardRating` from its JSON dict."""
    context = "hazard rating"
    failure_label = _require(payload, "failure_mode", context)
    failure_mode = next(
        (mode for mode in FailureMode if mode.value == failure_label), None
    )
    if failure_mode is None:
        raise SerializationError(f"{context}: unknown guideword {failure_label!r}")

    def decode_scale(factory: Any, key: str) -> Any:
        label = payload.get(key)
        if label is None:
            return None
        try:
            return factory[label]
        except KeyError as exc:
            raise SerializationError(f"{context}: bad {key} {label!r}") from exc

    return HazardRating(
        function=vehicle_function_from_dict(_require(payload, "function", context)),
        failure_mode=failure_mode,
        hazard=_require(payload, "hazard", context),
        hazardous_event=payload.get("hazardous_event", ""),
        severity=decode_scale(Severity, "severity"),
        exposure=decode_scale(Exposure, "exposure"),
        controllability=decode_scale(Controllability, "controllability"),
        asil=_decode_enum(Asil, _require(payload, "asil", context), context),
        rationale=payload.get("rationale", ""),
    )


def safety_goal_to_dict(goal: SafetyGoal) -> dict[str, Any]:
    """Encode a :class:`SafetyGoal` as a JSON dict."""
    return {
        "id": goal.identifier,
        "name": goal.name,
        "asil": goal.asil.value,
        "safe_state": goal.safe_state,
        "ftti_ms": goal.ftti_ms,
        "hazard_refs": list(goal.hazard_refs),
    }


def safety_goal_from_dict(payload: dict[str, Any]) -> SafetyGoal:
    """Decode a :class:`SafetyGoal` from its JSON dict."""
    context = f"safety goal {payload.get('id', '<unnumbered>')}"
    return SafetyGoal(
        identifier=_require(payload, "id", "safety goal"),
        name=_require(payload, "name", context),
        asil=_decode_enum(Asil, _require(payload, "asil", context), context),
        safe_state=payload.get("safe_state", ""),
        ftti_ms=payload.get("ftti_ms"),
        hazard_refs=tuple(payload.get("hazard_refs", [])),
    )


def safety_concern_to_dict(concern: SafetyConcern) -> dict[str, Any]:
    """Encode a :class:`SafetyConcern` as a JSON dict."""
    return {
        "goal": safety_goal_to_dict(concern.goal),
        "accident": concern.accident,
        "critical_situation": concern.critical_situation,
        "expected_reaction": concern.expected_reaction,
    }


def safety_concern_from_dict(payload: dict[str, Any]) -> SafetyConcern:
    """Decode a :class:`SafetyConcern` from its JSON dict."""
    context = "safety concern"
    return SafetyConcern(
        goal=safety_goal_from_dict(_require(payload, "goal", context)),
        accident=_require(payload, "accident", context),
        critical_situation=payload.get("critical_situation", ""),
        expected_reaction=payload.get("expected_reaction", ""),
    )


# -- attack descriptions -----------------------------------------------------

def attack_description_to_dict(attack: AttackDescription) -> dict[str, Any]:
    """Encode an :class:`AttackDescription` as a JSON dict."""
    return {
        "id": attack.identifier,
        "description": attack.description,
        "safety_goal_ids": list(attack.safety_goal_ids),
        "interface": attack.interface,
        "threat_link": {
            "threat_scenario_id": attack.threat_link.threat_scenario_id,
            "text": attack.threat_link.text,
        },
        "stride": attack.stride.value,
        "attack_type": attack_type_to_dict(attack.attack_type),
        "precondition": attack.precondition,
        "expected_measures": attack.expected_measures,
        "attack_success": attack.attack_success,
        "attack_fails": attack.attack_fails,
        "implementation_comments": attack.implementation_comments,
        "category": attack.category.value,
    }


def attack_description_from_dict(payload: dict[str, Any]) -> AttackDescription:
    """Decode an :class:`AttackDescription` from its JSON dict."""
    context = f"attack description {payload.get('id', '<unnumbered>')}"
    link_payload = _require(payload, "threat_link", context)
    category_label = payload.get("category", AttackCategory.SAFETY.value)
    category = next(
        (member for member in AttackCategory if member.value == category_label),
        None,
    )
    if category is None:
        raise SerializationError(f"{context}: unknown category {category_label!r}")
    return AttackDescription(
        identifier=_require(payload, "id", "attack description"),
        description=_require(payload, "description", context),
        safety_goal_ids=tuple(payload.get("safety_goal_ids", [])),
        interface=_require(payload, "interface", context),
        threat_link=ThreatLink(
            threat_scenario_id=_require(
                link_payload, "threat_scenario_id", context
            ),
            text=link_payload.get("text", ""),
        ),
        stride=_decode_enum(
            StrideType, _require(payload, "stride", context), context
        ),
        attack_type=attack_type_from_dict(
            _require(payload, "attack_type", context)
        ),
        precondition=_require(payload, "precondition", context),
        expected_measures=_require(payload, "expected_measures", context),
        attack_success=_require(payload, "attack_success", context),
        attack_fails=_require(payload, "attack_fails", context),
        implementation_comments=payload.get("implementation_comments", ""),
        category=category,
    )


__all__ = [
    "asset_from_dict",
    "asset_to_dict",
    "attack_description_from_dict",
    "attack_description_to_dict",
    "attack_type_from_dict",
    "attack_type_to_dict",
    "hazard_rating_from_dict",
    "hazard_rating_to_dict",
    "safety_concern_from_dict",
    "safety_concern_to_dict",
    "safety_goal_from_dict",
    "safety_goal_to_dict",
    "scenario_from_dict",
    "scenario_to_dict",
    "threat_scenario_from_dict",
    "threat_scenario_to_dict",
    "vehicle_function_from_dict",
    "vehicle_function_to_dict",
]
