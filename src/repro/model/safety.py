"""Safety-side artifacts: hazardous events, safety goals, safety concerns.

A HARA (paper §II-C, §III-B) rates each *function x failure mode* pair as a
:class:`HazardRating`; safety-relevant ratings yield :class:`SafetyGoal`
objects with an ASIL.  A :class:`SafetyConcern` packages a safety goal with
the operational situation in which its violation has the highest impact --
it is the *test objective* the validation must address (Step 2 output).

The fault-tolerant time interval (FTTI) of ISO 26262 is attached to safety
goals: "the counter measures of the SUT have a maximum time span to react
and mitigate the imminent hazardous event".  The simulator's safety monitor
(:mod:`repro.sim.monitor`) enforces it.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ValidationError
from repro.model.identifiers import (
    require_function_id,
    require_safety_goal_id,
)
from repro.model.ratings import (
    Asil,
    Controllability,
    Exposure,
    FailureMode,
    Severity,
)


@dataclasses.dataclass(frozen=True)
class VehicleFunction:
    """A function considered by the HARA (e.g. "Road works warning").

    Attributes:
        identifier: HARA function id, e.g. ``Rat01``.
        name: The function name as the paper prints it, e.g.
            ``"Hazardous location notifications (Road works warning)"``.
        description: Optional behaviour summary.
    """

    identifier: str
    name: str
    description: str = ""

    def __post_init__(self) -> None:
        require_function_id(self.identifier)
        if not self.name:
            raise ValidationError(
                f"function {self.identifier} must have a name"
            )


@dataclasses.dataclass(frozen=True)
class HazardRating:
    """One HARA row: a function's failure mode with its E/S/C rating.

    ``asil`` is *derived* by :func:`repro.hara.asil.determine_asil`; the
    dataclass stores it so persisted analyses are self-contained, and the
    HARA engine verifies consistency on ingestion.  Rows the analysis
    deemed non-hazardous carry ``asil = Asil.NOT_APPLICABLE`` and no E/S/C.

    Attributes:
        function: The rated :class:`VehicleFunction`.
        failure_mode: The guideword applied.
        hazard: Natural-language hazard ("The driver can not be warned and
            the automated control is not returned.").
        hazardous_event: The event in traffic terms ("Crash into road
            works").
        severity/exposure/controllability: ISO 26262 ratings; ``None`` for
            N/A rows.
        asil: The resulting ASIL classification.
        rationale: Free-text justification (the paper records e.g. "see
            Statistics Road Works" for E=3).
    """

    function: VehicleFunction
    failure_mode: FailureMode
    hazard: str
    hazardous_event: str = ""
    severity: Severity | None = None
    exposure: Exposure | None = None
    controllability: Controllability | None = None
    asil: Asil = Asil.NOT_APPLICABLE
    rationale: str = ""

    def __post_init__(self) -> None:
        rated = (self.severity, self.exposure, self.controllability)
        if self.asil is Asil.NOT_APPLICABLE:
            if any(value is not None for value in rated):
                raise ValidationError(
                    "a N/A hazard rating must not carry S/E/C values "
                    f"({self.function.identifier}/{self.failure_mode.value})"
                )
        else:
            if any(value is None for value in rated):
                raise ValidationError(
                    "a rated hazard needs severity, exposure and "
                    f"controllability ({self.function.identifier}/"
                    f"{self.failure_mode.value})"
                )

    @property
    def is_rated(self) -> bool:
        """True when the row carries S/E/C values (i.e. is not N/A)."""
        return self.asil is not Asil.NOT_APPLICABLE


@dataclasses.dataclass(frozen=True)
class SafetyGoal:
    """A top-level safety requirement produced by the HARA.

    Example from the paper: "SG01. Avoid ineffective location notification
    without returning driving control to human (ASIL C)".

    Attributes:
        identifier: ``SGnn``.
        name: The goal statement.
        asil: The (highest) ASIL of the hazards this goal addresses.
        safe_state: The state the vehicle must reach on malfunction
            ("control returned to driver", "vehicle stays closed").
        ftti_ms: Fault-tolerant time interval in milliseconds; the
            maximum reaction time of counter-measures.  ``None`` when not
            yet allocated (the paper notes FTTIs "could be difficult to
            determine ... in practice").
        hazard_refs: Function identifiers of the HARA rows this goal
            covers, for traceability.
    """

    identifier: str
    name: str
    asil: Asil
    safe_state: str = ""
    ftti_ms: int | None = None
    hazard_refs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require_safety_goal_id(self.identifier)
        if not self.name:
            raise ValidationError(f"safety goal {self.identifier} needs a name")
        if not self.asil.is_safety_relevant:
            raise ValidationError(
                f"safety goal {self.identifier} must carry ASIL A-D, "
                f"got {self.asil.value} (QM/N-A hazards yield no safety goal)"
            )
        if self.ftti_ms is not None and self.ftti_ms <= 0:
            raise ValidationError(
                f"safety goal {self.identifier}: FTTI must be positive"
            )

    def __str__(self) -> str:
        return f"{self.identifier}. {self.name} ({self.asil.value})"


@dataclasses.dataclass(frozen=True)
class SafetyConcern:
    """A test objective: a safety goal paired with its critical situation.

    "The safety concern is determined via safety analysis.  It expresses
    which kind of accident may happen, if it is not fulfilled.  It serves
    as test objective that the validation should address." (§III-B)

    Attributes:
        goal: The safety goal whose violation the concern describes.
        accident: What happens if the goal is violated.
        critical_situation: The operational situation in which violation
            has the highest safety impact; feeds attack preconditions.
        expected_reaction: How the vehicle should react with appropriate
            security controls in place.
    """

    goal: SafetyGoal
    accident: str
    critical_situation: str = ""
    expected_reaction: str = ""

    def __post_init__(self) -> None:
        if not self.accident:
            raise ValidationError(
                f"safety concern for {self.goal.identifier} must state the "
                "accident that may happen"
            )

    @property
    def asil(self) -> Asil:
        """The ASIL inherited from the underlying safety goal."""
        return self.goal.asil


__all__ = [
    "HazardRating",
    "SafetyConcern",
    "SafetyGoal",
    "VehicleFunction",
]
