"""Rating scales used by the safety and security analyses.

The SaSeVAL process leans on two normative rating systems:

* **ISO 26262** (functional safety): a hazardous event is rated for
  *Severity* (S0-S3), *Exposure* (E0-E4) and *Controllability* (C0-C3);
  those three determine the *ASIL* (QM, A, B, C, D).  The failure-mode
  guidewords of the HARA (§II-C of the paper) are also defined here.
* **ISO/SAE 21434** (cybersecurity): threats are rated for *impact* and
  *attack feasibility*, which determine a risk level and a *CAL*
  (cybersecurity assurance level, §II-B item 3).

This module defines the *value types* only.  The determination tables
(S/E/C -> ASIL, impact x feasibility -> risk) live in :mod:`repro.hara.asil`
and :mod:`repro.tara.risk` respectively, keeping data and policy separate.
"""

from __future__ import annotations

import enum


class Severity(enum.IntEnum):
    """ISO 26262 severity of harm (S0 = no injuries .. S3 = fatal)."""

    S0 = 0
    S1 = 1
    S2 = 2
    S3 = 3

    @property
    def meaning(self) -> str:
        """Human-readable definition from ISO 26262-3 Table 1."""
        return _SEVERITY_MEANINGS[self]


class Exposure(enum.IntEnum):
    """ISO 26262 probability of exposure to the operational situation."""

    E0 = 0
    E1 = 1
    E2 = 2
    E3 = 3
    E4 = 4

    @property
    def meaning(self) -> str:
        """Human-readable definition from ISO 26262-3 Table 2."""
        return _EXPOSURE_MEANINGS[self]


class Controllability(enum.IntEnum):
    """ISO 26262 controllability of the hazardous event by the driver."""

    C0 = 0
    C1 = 1
    C2 = 2
    C3 = 3

    @property
    def meaning(self) -> str:
        """Human-readable definition from ISO 26262-3 Table 3."""
        return _CONTROLLABILITY_MEANINGS[self]


_SEVERITY_MEANINGS = {
    Severity.S0: "No injuries",
    Severity.S1: "Light and moderate injuries",
    Severity.S2: "Severe and life-threatening injuries (survival probable)",
    Severity.S3: "Life-threatening injuries (survival uncertain), fatal injuries",
}

_EXPOSURE_MEANINGS = {
    Exposure.E0: "Incredible",
    Exposure.E1: "Very low probability",
    Exposure.E2: "Low probability",
    Exposure.E3: "Medium probability",
    Exposure.E4: "High probability",
}

_CONTROLLABILITY_MEANINGS = {
    Controllability.C0: "Controllable in general",
    Controllability.C1: "Simply controllable",
    Controllability.C2: "Normally controllable",
    Controllability.C3: "Difficult to control or uncontrollable",
}


class Asil(enum.Enum):
    """Automotive Safety Integrity Level, ordered QM < A < B < C < D.

    ``NOT_APPLICABLE`` covers HARA rows the paper reports as "N/A" --
    failure-mode/function combinations that do not produce a hazardous
    event at all (e.g. "inverted" applied to a one-shot notification).
    It is not an ISO 26262 level; it exists so the reproduction can report
    the same rating distributions as §IV of the paper.
    """

    NOT_APPLICABLE = "N/A"
    QM = "QM"
    A = "ASIL A"
    B = "ASIL B"
    C = "ASIL C"
    D = "ASIL D"

    @property
    def rank(self) -> int:
        """Ordering key: N/A=-1, QM=0, A=1 .. D=4."""
        return _ASIL_RANKS[self]

    @property
    def is_safety_relevant(self) -> bool:
        """True for ASIL A-D; False for QM and N/A rows."""
        return self.rank >= 1

    def __lt__(self, other: "Asil") -> bool:
        if not isinstance(other, Asil):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "Asil") -> bool:
        if not isinstance(other, Asil):
            return NotImplemented
        return self.rank <= other.rank

    def __gt__(self, other: "Asil") -> bool:
        if not isinstance(other, Asil):
            return NotImplemented
        return self.rank > other.rank

    def __ge__(self, other: "Asil") -> bool:
        if not isinstance(other, Asil):
            return NotImplemented
        return self.rank >= other.rank

    @classmethod
    def from_label(cls, label: str) -> "Asil":
        """Parse labels as they appear in the paper ("ASIL C", "C", "QM", "N/A", "No ASIL")."""
        normalized = label.strip().upper()
        if normalized in ("N/A", "NA", "NOT APPLICABLE"):
            return cls.NOT_APPLICABLE
        if normalized in ("QM", "NO ASIL", "NO-ASIL"):
            return cls.QM
        normalized = normalized.removeprefix("ASIL").strip()
        for member in (cls.A, cls.B, cls.C, cls.D):
            if normalized == member.name:
                return member
        raise ValueError(f"unknown ASIL label: {label!r}")


_ASIL_RANKS = {
    Asil.NOT_APPLICABLE: -1,
    Asil.QM: 0,
    Asil.A: 1,
    Asil.B: 2,
    Asil.C: 3,
    Asil.D: 4,
}


class FailureMode(enum.Enum):
    """HARA guidewords applied to each function (paper §II-C).

    "The identified functions are rated for the failure modes No,
    Unintended, too Early, too Late, Less, More, Inverted and
    Intermittent."
    """

    NO = "No"
    UNINTENDED = "Unintended"
    TOO_EARLY = "too Early"
    TOO_LATE = "too Late"
    LESS = "Less"
    MORE = "More"
    INVERTED = "Inverted"
    INTERMITTENT = "Intermittent"

    @property
    def guide_question(self) -> str:
        """The analysis prompt each guideword poses for a function."""
        return _GUIDE_QUESTIONS[self]


_GUIDE_QUESTIONS = {
    FailureMode.NO: "What if the function is not provided at all?",
    FailureMode.UNINTENDED: "What if the function activates without demand?",
    FailureMode.TOO_EARLY: "What if the function acts before it is needed?",
    FailureMode.TOO_LATE: "What if the function acts after it is needed?",
    FailureMode.LESS: "What if the function under-delivers (magnitude/extent)?",
    FailureMode.MORE: "What if the function over-delivers (magnitude/extent)?",
    FailureMode.INVERTED: "What if the function acts in the opposite direction?",
    FailureMode.INTERMITTENT: "What if the function drops in and out?",
}


class ImpactRating(enum.IntEnum):
    """ISO/SAE 21434 impact of a damage scenario (per impact category)."""

    NEGLIGIBLE = 0
    MODERATE = 1
    MAJOR = 2
    SEVERE = 3


class FeasibilityRating(enum.IntEnum):
    """ISO/SAE 21434 attack feasibility (attack-potential based), aggregated."""

    VERY_LOW = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3


class RiskLevel(enum.IntEnum):
    """Cybersecurity risk value 1 (lowest) .. 5 (highest)."""

    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5


class CalLevel(enum.IntEnum):
    """Cybersecurity Assurance Level (ISO/SAE 21434 annex E), CAL1..CAL4.

    The paper (§II-B item 3) uses the CAL to set "the necessary level of
    testing"; :mod:`repro.core.prioritization` consumes it for RQ2.
    """

    CAL1 = 1
    CAL2 = 2
    CAL3 = 3
    CAL4 = 4


__all__ = [
    "Asil",
    "CalLevel",
    "Controllability",
    "Exposure",
    "FailureMode",
    "FeasibilityRating",
    "ImpactRating",
    "RiskLevel",
    "Severity",
]
