"""Assets, asset groups and asset types (paper §III-A1, Tables II & V).

The number of assets per scenario "could be significant", so the paper
classifies them two ways:

* **Asset groups** -- coarse kinds with common properties ("cloud services,
  devices, hardware, software, information, person, server, service").
  An asset may belong to several groups: Table II lists "ECU" as
  "Hardware / Software" and "V2X communications" as "Information /
  Hardware".
* **Asset types** -- relevance classes used for test-space reduction (RQ2):
  generic assets, use-case-specific assets, assets generic for current
  vehicles (highest priority), generic for ADAS/AD vehicles, generic for
  connected vehicles.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ValidationError


class AssetGroup(enum.Enum):
    """Coarse classification of assets (paper §III-A1)."""

    CLOUD_SERVICE = "Cloud service"
    DEVICE = "Device"
    HARDWARE = "Hardware"
    SOFTWARE = "Software"
    INFORMATION = "Information"
    PERSON = "Person"
    SERVER = "Server"
    SERVICE = "Service"

    @classmethod
    def from_label(cls, label: str) -> "AssetGroup":
        """Parse a group label case-insensitively ("hardware" -> HARDWARE)."""
        normalized = label.strip().lower()
        for member in cls:
            if member.value.lower() == normalized:
                return member
        raise ValueError(f"unknown asset group: {label!r}")


class AssetRelevance(enum.Enum):
    """Asset types used to limit threat analysis scope (§III-A2, RQ2).

    Ordered by the priority the paper assigns: assets generic for all
    current vehicles have "the highest priority".
    """

    GENERIC = "Generic asset"
    USE_CASE = "Interesting from a certain use case's perspective"
    GENERIC_CURRENT_VEHICLE = "Generic for current vehicles"
    GENERIC_ADAS_AD = "Generic for ADAS/AD vehicles"
    GENERIC_CONNECTED = "Generic for connected vehicles"

    @property
    def priority(self) -> int:
        """Analysis priority, higher = analysed first (RQ2)."""
        return _RELEVANCE_PRIORITY[self]


_RELEVANCE_PRIORITY = {
    AssetRelevance.GENERIC_CURRENT_VEHICLE: 5,
    AssetRelevance.GENERIC_ADAS_AD: 4,
    AssetRelevance.GENERIC_CONNECTED: 3,
    AssetRelevance.GENERIC: 2,
    AssetRelevance.USE_CASE: 1,
}


@dataclasses.dataclass(frozen=True)
class Asset:
    """Something of value an attacker may target (one row of Table II).

    Attributes:
        name: Unique asset name within a scenario, e.g. ``"Gateway"``.
        groups: One or more :class:`AssetGroup` classifications.
        relevance: The :class:`AssetRelevance` type used for scoping (RQ2).
        description: Optional free text.
        interfaces: Names of the interfaces through which the asset can be
            reached (e.g. ``("OBU", "RSU")`` for V2X communications).  The
            attack description names the interface to attack (§III-C).
    """

    name: str
    groups: frozenset[AssetGroup]
    relevance: AssetRelevance = AssetRelevance.GENERIC
    description: str = ""
    interfaces: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("asset name must not be empty")
        if not self.groups:
            raise ValidationError(
                f"asset {self.name!r} must belong to at least one asset group"
            )

    @classmethod
    def of(
        cls,
        name: str,
        *groups: AssetGroup,
        relevance: AssetRelevance = AssetRelevance.GENERIC,
        description: str = "",
        interfaces: tuple[str, ...] = (),
    ) -> "Asset":
        """Convenience constructor taking groups as varargs.

        >>> Asset.of("Gateway", AssetGroup.HARDWARE).group_label
        'Hardware'
        """
        return cls(
            name=name,
            groups=frozenset(groups),
            relevance=relevance,
            description=description,
            interfaces=interfaces,
        )

    @property
    def group_label(self) -> str:
        """Groups rendered as in Table II, e.g. ``"Hardware/ Software"``.

        Groups are joined with ``"/ "`` in enum-definition order so output
        is deterministic.
        """
        ordered = [group for group in AssetGroup if group in self.groups]
        return "/ ".join(group.value for group in ordered)

    @property
    def priority(self) -> int:
        """Shortcut to the relevance priority (RQ2 ordering key)."""
        return self.relevance.priority


__all__ = [
    "Asset",
    "AssetGroup",
    "AssetRelevance",
]
