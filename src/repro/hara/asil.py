"""ASIL determination per ISO 26262-3:2018, Table 4.

The HARA rates each hazardous event for Severity (S), Exposure (E) and
Controllability (C); the three together determine the ASIL.  The normative
table follows a regular structure: with all three classes at least 1, the
ASIL depends only on the *sum* S+E+C::

    sum <= 6 -> QM      sum == 7 -> ASIL A    sum == 8 -> ASIL B
    sum == 9 -> ASIL C  sum == 10 -> ASIL D

and any class of 0 (S0 "no injuries", E0 "incredible", C0 "controllable in
general") yields QM directly.  We build the explicit 3x4x3 table from that
rule once at import time and expose both the table and the function, so
tests can cross-check spot values from the standard against the rule.
"""

from __future__ import annotations

from repro.model.ratings import Asil, Controllability, Exposure, Severity

_SUM_TO_ASIL = {7: Asil.A, 8: Asil.B, 9: Asil.C, 10: Asil.D}


def determine_asil(
    severity: Severity,
    exposure: Exposure,
    controllability: Controllability,
) -> Asil:
    """Return the ASIL for an (S, E, C) rating per ISO 26262-3 Table 4.

    >>> determine_asil(Severity.S3, Exposure.E3, Controllability.C3)
    <Asil.C: 'ASIL C'>
    >>> determine_asil(Severity.S3, Exposure.E4, Controllability.C3)
    <Asil.D: 'ASIL D'>
    """
    if severity is Severity.S0:
        return Asil.QM
    if exposure is Exposure.E0:
        return Asil.QM
    if controllability is Controllability.C0:
        return Asil.QM
    total = int(severity) + int(exposure) + int(controllability)
    return _SUM_TO_ASIL.get(total, Asil.QM)


#: The explicit determination table, keyed by (S, E, C), covering S1-S3,
#: E1-E4, C1-C3 -- the cells ISO 26262-3 Table 4 prints.
ASIL_TABLE: dict[tuple[Severity, Exposure, Controllability], Asil] = {
    (severity, exposure, controllability): determine_asil(
        severity, exposure, controllability
    )
    for severity in (Severity.S1, Severity.S2, Severity.S3)
    for exposure in (Exposure.E1, Exposure.E2, Exposure.E3, Exposure.E4)
    for controllability in (
        Controllability.C1,
        Controllability.C2,
        Controllability.C3,
    )
}


def highest_asil(values: list[Asil]) -> Asil:
    """The most demanding ASIL in ``values`` (QM when the list is empty).

    Used when one safety goal covers several hazard ratings: the goal
    inherits the highest ASIL among them.
    """
    result = Asil.QM
    for value in values:
        if value > result:
            result = value
    return result


def decompose(asil: Asil) -> tuple[tuple[Asil, Asil], ...]:
    """ASIL decomposition pairs per ISO 26262-9 clause 5.

    Returns the permitted decompositions of ``asil`` into two redundant
    requirements (order-insensitive, listed once with the higher first).
    QM and N/A decompose to nothing.

    >>> decompose(Asil.D)
    ((<Asil.C: 'ASIL C'>, <Asil.A: 'ASIL A'>), (<Asil.B: 'ASIL B'>, <Asil.B: 'ASIL B'>), (<Asil.D: 'ASIL D'>, <Asil.QM: 'QM'>))
    """
    table: dict[Asil, tuple[tuple[Asil, Asil], ...]] = {
        Asil.D: ((Asil.C, Asil.A), (Asil.B, Asil.B), (Asil.D, Asil.QM)),
        Asil.C: ((Asil.B, Asil.A), (Asil.C, Asil.QM)),
        Asil.B: ((Asil.A, Asil.A), (Asil.B, Asil.QM)),
        Asil.A: ((Asil.A, Asil.QM),),
    }
    return table.get(asil, ())


__all__ = [
    "ASIL_TABLE",
    "decompose",
    "determine_asil",
    "highest_asil",
]
