"""JSON persistence for HARA documents.

A HARA is a reviewed, versioned work product; like the threat library it
must survive round trips through a text format.  The document layout::

    {
      "name": "...",
      "functions": [...],
      "ratings": [...],
      "safety_goals": [...]
    }

On load, every rated row's stored ASIL is re-derived from its S/E/C
values and must match -- a tampered or hand-edited document that breaks
the ISO 26262 determination is rejected, not silently accepted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import SerializationError
from repro.hara.analysis import Hara
from repro.hara.asil import determine_asil
from repro.model.serialization import (
    hazard_rating_from_dict,
    hazard_rating_to_dict,
    safety_goal_from_dict,
    safety_goal_to_dict,
    vehicle_function_to_dict,
)


def hara_to_dict(hara: Hara) -> dict[str, Any]:
    """Encode a HARA as a JSON-compatible document."""
    return {
        "name": hara.name,
        "functions": [
            vehicle_function_to_dict(function) for function in hara.functions
        ],
        "ratings": [
            hazard_rating_to_dict(rating) for rating in hara.ratings
        ],
        "safety_goals": [
            safety_goal_to_dict(goal) for goal in hara.safety_goals
        ],
    }


def hara_from_dict(payload: dict[str, Any]) -> Hara:
    """Decode a HARA document, re-validating every derived ASIL.

    Raises:
        SerializationError: on malformed documents or when a stored ASIL
            disagrees with the ISO 26262 determination of its S/E/C row.
    """
    if "name" not in payload:
        raise SerializationError("HARA document: missing 'name'")
    hara = Hara(name=payload["name"])
    for function_payload in payload.get("functions", []):
        hara.add_function(
            identifier=function_payload.get("id", ""),
            name=function_payload.get("name", ""),
            description=function_payload.get("description", ""),
        )
    for rating_payload in payload.get("ratings", []):
        rating = hazard_rating_from_dict(rating_payload)
        if rating.is_rated:
            assert rating.severity is not None
            assert rating.exposure is not None
            assert rating.controllability is not None
            derived = determine_asil(
                rating.severity, rating.exposure, rating.controllability
            )
            if derived is not rating.asil:
                raise SerializationError(
                    f"HARA {hara.name!r}: stored ASIL {rating.asil.value} "
                    f"contradicts the S/E/C determination "
                    f"({derived.value}) for "
                    f"{rating.function.identifier}/"
                    f"{rating.failure_mode.value}"
                )
            hara.rate(
                rating.function.identifier,
                rating.failure_mode,
                hazard=rating.hazard,
                severity=rating.severity,
                exposure=rating.exposure,
                controllability=rating.controllability,
                hazardous_event=rating.hazardous_event,
                rationale=rating.rationale,
            )
        else:
            hara.rate_not_applicable(
                rating.function.identifier,
                rating.failure_mode,
                reason=rating.rationale or rating.hazard,
            )
    for goal_payload in payload.get("safety_goals", []):
        hara.add_goal(safety_goal_from_dict(goal_payload))
    return hara


def save_hara(hara: Hara, path: str | Path) -> None:
    """Write a HARA to ``path`` as pretty-printed JSON."""
    document = json.dumps(hara_to_dict(hara), indent=2)
    Path(path).write_text(document + "\n", encoding="utf-8")


def load_hara(path: str | Path) -> Hara:
    """Read a HARA from a JSON file (re-deriving and checking ASILs)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise SerializationError(f"{path}: expected a JSON object")
    return hara_from_dict(payload)


__all__ = [
    "hara_from_dict",
    "hara_to_dict",
    "load_hara",
    "save_hara",
]
