"""The HARA engine: functions x guidewords -> ratings -> safety goals.

Reproduces the analysis of paper §II-C / §III-B: every function under
analysis is examined against the eight failure-mode guidewords; each
examination either yields a rated hazardous event (S/E/C -> ASIL) or is
recorded as not applicable.  Safety-relevant ratings (ASIL A-D) are then
grouped into safety goals.

The engine *derives* the ASIL itself (via :func:`repro.hara.asil
.determine_asil`); callers supply only S, E and C.  This is what makes the
reproduced use-case statistics (§IV) checkable: the paper's reported ASIL
distributions must fall out of the encoded S/E/C inputs, not be asserted.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.errors import ValidationError
from repro.hara.asil import determine_asil, highest_asil
from repro.model.identifiers import next_id
from repro.model.ratings import (
    Asil,
    Controllability,
    Exposure,
    FailureMode,
    Severity,
)
from repro.model.safety import (
    HazardRating,
    SafetyConcern,
    SafetyGoal,
    VehicleFunction,
)


@dataclasses.dataclass
class Hara:
    """A Hazard Analysis and Risk Assessment for one item/use case.

    Typical use::

        hara = Hara(name="Use Case I")
        fn = hara.add_function("Rat01", "Hazardous location notifications")
        hara.rate(
            fn, FailureMode.NO,
            hazard="The driver can not be warned ...",
            hazardous_event="Crash into road works",
            severity=Severity.S3, exposure=Exposure.E3,
            controllability=Controllability.C3,
        )
        goal = hara.derive_goal(
            "Avoid ineffective location notification ...",
            from_functions=["Rat01"],
        )

    Attributes:
        name: Analysis name, usually the use case.
    """

    name: str
    _functions: dict[str, VehicleFunction] = dataclasses.field(
        default_factory=dict
    )
    _ratings: list[HazardRating] = dataclasses.field(default_factory=list)
    _goals: dict[str, SafetyGoal] = dataclasses.field(default_factory=dict)

    # -- functions ------------------------------------------------------

    def add_function(
        self, identifier: str, name: str, description: str = ""
    ) -> VehicleFunction:
        """Register a function under analysis and return it.

        Raises:
            ValidationError: on duplicate function identifiers.
        """
        if identifier in self._functions:
            raise ValidationError(
                f"HARA {self.name!r}: function {identifier} already registered"
            )
        function = VehicleFunction(
            identifier=identifier, name=name, description=description
        )
        self._functions[identifier] = function
        return function

    def function(self, identifier: str) -> VehicleFunction:
        """Look up a registered function by identifier."""
        if identifier not in self._functions:
            raise ValidationError(
                f"HARA {self.name!r}: unknown function {identifier}"
            )
        return self._functions[identifier]

    @property
    def functions(self) -> tuple[VehicleFunction, ...]:
        """All registered functions, in registration order."""
        return tuple(self._functions.values())

    # -- ratings --------------------------------------------------------

    def rate(
        self,
        function: VehicleFunction | str,
        failure_mode: FailureMode,
        hazard: str,
        severity: Severity,
        exposure: Exposure,
        controllability: Controllability,
        hazardous_event: str = "",
        rationale: str = "",
    ) -> HazardRating:
        """Rate one hazardous event; the ASIL is computed, not supplied.

        A (function, guideword) pair may be rated several times -- the
        paper's UC I produced 29 ratings from 3 functions because "failure
        modes may lead to more than one failure".
        """
        resolved = self._resolve(function)
        rating = HazardRating(
            function=resolved,
            failure_mode=failure_mode,
            hazard=hazard,
            hazardous_event=hazardous_event,
            severity=severity,
            exposure=exposure,
            controllability=controllability,
            asil=determine_asil(severity, exposure, controllability),
            rationale=rationale,
        )
        self._ratings.append(rating)
        return rating

    def rate_not_applicable(
        self,
        function: VehicleFunction | str,
        failure_mode: FailureMode,
        reason: str,
    ) -> HazardRating:
        """Record that a guideword produces no hazardous event (an N/A row)."""
        resolved = self._resolve(function)
        rating = HazardRating(
            function=resolved,
            failure_mode=failure_mode,
            hazard=reason,
            asil=Asil.NOT_APPLICABLE,
            rationale=reason,
        )
        self._ratings.append(rating)
        return rating

    @property
    def ratings(self) -> tuple[HazardRating, ...]:
        """All ratings, in analysis order."""
        return tuple(self._ratings)

    def ratings_for(self, function: VehicleFunction | str) -> tuple[HazardRating, ...]:
        """The ratings recorded for one function."""
        resolved = self._resolve(function)
        return tuple(
            rating
            for rating in self._ratings
            if rating.function.identifier == resolved.identifier
        )

    def asil_distribution(self) -> dict[Asil, int]:
        """Count ratings per ASIL class -- the statistic §IV reports.

        Every ASIL class appears as a key (zero counts included) so the
        distribution always has the same shape.
        """
        counts = Counter(rating.asil for rating in self._ratings)
        return {asil: counts.get(asil, 0) for asil in Asil}

    def uncovered_guidewords(
        self, function: VehicleFunction | str
    ) -> tuple[FailureMode, ...]:
        """Guidewords not yet applied to a function (completeness aid, RQ1).

        The guideword approach argues completeness by examining *every*
        failure mode for every function; this reports what is still open.
        """
        resolved = self._resolve(function)
        applied = {
            rating.failure_mode
            for rating in self.ratings_for(resolved)
        }
        return tuple(mode for mode in FailureMode if mode not in applied)

    def is_guideword_complete(self) -> bool:
        """True when every function has every guideword examined."""
        return all(
            not self.uncovered_guidewords(function)
            for function in self._functions.values()
        )

    # -- safety goals ---------------------------------------------------

    def derive_goal(
        self,
        name: str,
        from_functions: list[str],
        safe_state: str = "",
        ftti_ms: int | None = None,
        identifier: str | None = None,
    ) -> SafetyGoal:
        """Create a safety goal covering the given functions' hazards.

        The goal's ASIL is the highest ASIL among the safety-relevant
        ratings of the referenced functions.

        Raises:
            ValidationError: when no referenced rating is safety-relevant
                (QM/N-A hazards yield no safety goal) or a function is
                unknown.
        """
        relevant: list[Asil] = []
        for function_id in from_functions:
            self.function(function_id)
            relevant.extend(
                rating.asil
                for rating in self.ratings_for(function_id)
                if rating.asil.is_safety_relevant
            )
        if not relevant:
            raise ValidationError(
                f"HARA {self.name!r}: no safety-relevant rating under "
                f"functions {from_functions}; cannot derive a safety goal"
            )
        goal = SafetyGoal(
            identifier=identifier or next_id(set(self._goals), "SG"),
            name=name,
            asil=highest_asil(relevant),
            safe_state=safe_state,
            ftti_ms=ftti_ms,
            hazard_refs=tuple(from_functions),
        )
        return self.add_goal(goal)

    def add_goal(self, goal: SafetyGoal) -> SafetyGoal:
        """Register an externally constructed safety goal.

        Used when encoding published analyses whose goal ASILs are given
        directly (e.g. the paper's SG01..SG06 for UC I).
        """
        if goal.identifier in self._goals:
            raise ValidationError(
                f"HARA {self.name!r}: safety goal {goal.identifier} exists"
            )
        self._goals[goal.identifier] = goal
        return goal

    def goal(self, identifier: str) -> SafetyGoal:
        """Look up a safety goal by identifier."""
        if identifier not in self._goals:
            raise ValidationError(
                f"HARA {self.name!r}: unknown safety goal {identifier}"
            )
        return self._goals[identifier]

    @property
    def safety_goals(self) -> tuple[SafetyGoal, ...]:
        """All safety goals, in creation order."""
        return tuple(self._goals.values())

    def concerns(self) -> tuple[SafetyConcern, ...]:
        """Derive one safety concern (test objective) per safety goal.

        The concern's accident text is synthesised from the hazards of the
        ratings the goal references; the critical situation is left to the
        use case to refine.
        """
        results: list[SafetyConcern] = []
        for goal in self._goals.values():
            hazards = [
                rating.hazardous_event or rating.hazard
                for function_id in goal.hazard_refs
                for rating in self.ratings_for(function_id)
                if rating.asil.is_safety_relevant
            ]
            accident = "; ".join(dict.fromkeys(hazard for hazard in hazards if hazard))
            results.append(
                SafetyConcern(
                    goal=goal,
                    accident=accident or f"Violation of {goal.identifier}",
                )
            )
        return tuple(results)

    # -- internals ------------------------------------------------------

    def _resolve(self, function: VehicleFunction | str) -> VehicleFunction:
        """Accept a function object or identifier; return the registered one."""
        if isinstance(function, VehicleFunction):
            return self.function(function.identifier)
        return self.function(function)


__all__ = [
    "Hara",
]
