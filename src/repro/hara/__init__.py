"""ISO 26262 Hazard Analysis and Risk Assessment (paper §II-C, §III-B).

The package provides:

* :func:`~repro.hara.asil.determine_asil` and the explicit
  :data:`~repro.hara.asil.ASIL_TABLE` (ISO 26262-3 Table 4),
* ASIL utilities (:func:`~repro.hara.asil.highest_asil`,
  :func:`~repro.hara.asil.decompose`),
* the :class:`~repro.hara.analysis.Hara` engine that applies the
  failure-mode guidewords, derives ASILs from S/E/C inputs and groups
  safety-relevant hazards into safety goals.

Rating value types (:class:`~repro.model.ratings.Severity` etc.) are
re-exported for convenience.
"""

from repro.hara.analysis import Hara
from repro.hara.asil import (
    ASIL_TABLE,
    decompose,
    determine_asil,
    highest_asil,
)
from repro.hara.persistence import (
    hara_from_dict,
    hara_to_dict,
    load_hara,
    save_hara,
)
from repro.model.ratings import (
    Asil,
    Controllability,
    Exposure,
    FailureMode,
    Severity,
)

__all__ = [
    "ASIL_TABLE",
    "Asil",
    "Controllability",
    "Exposure",
    "FailureMode",
    "Hara",
    "Severity",
    "decompose",
    "determine_asil",
    "hara_from_dict",
    "hara_to_dict",
    "highest_asil",
    "load_hara",
    "save_hara",
]
