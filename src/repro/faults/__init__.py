"""``repro.faults`` -- deterministic fault injection for the execution plane.

Chaos testing with reproducibility guarantees: a :class:`FaultPlan` is
*compiled from a seed* (same seed, same faults, same positions), carried
to every process through the ``REPRO_FAULT_PLAN`` environment variable,
and fired **exactly once** per fault via a shared state directory -- a
re-enqueued job or respawned worker never re-triggers a consumed fault.

Five fault kinds cover the failure modes the fault-tolerant execution
plane must survive:

* ``kill-worker`` -- hard-exit a process worker at its k-th job
  (exercises :class:`~repro.runtime.ProcessBackend` supervision);
* ``delay-job`` -- stall one job by a fixed amount (exercises
  deadlines);
* ``raise-transient`` -- raise a
  :class:`~repro.errors.TransientError` from one job (exercises
  :class:`~repro.runtime.RetryPolicy`);
* ``drop-connection`` -- reset the client socket mid-outcome-stream
  (exercises :class:`~repro.service.ServiceClient` resume);
* ``torn-journal`` -- truncate one memo journal append mid-line
  (exercises the journal loader's corrupt-tail tolerance).

Production code stays fault-free by construction: every hook is a call
to :func:`fault_point`, which is a single dictionary check when no plan
is armed.  The ``repro chaos`` CLI subcommand runs a campaign under a
plan and asserts verdict parity against the clean run.
"""

from repro.faults.inject import (
    active_plan,
    fault_point,
    reset_fault_state,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FAULT_PLAN_SCHEMA,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    SITE_BY_KIND,
    compile_plan,
    load_plan_from_env,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_PLAN_SCHEMA",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "SITE_BY_KIND",
    "active_plan",
    "compile_plan",
    "fault_point",
    "load_plan_from_env",
    "reset_fault_state",
]
