"""Fault plans: seed-compiled, serialisable schedules of injected faults.

A plan is plain data.  Compiling one never arms anything; injection only
happens when the plan travels through ``REPRO_FAULT_PLAN`` (see
:mod:`repro.faults.inject`) to the processes that execute jobs.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Sequence

from repro.errors import ValidationError
from repro.runtime import derive_seed

#: Environment variable carrying the armed plan: either the plan's JSON
#: text, or ``@/path/to/plan.json``.  Workers inherit it under both
#: ``fork`` and ``spawn``, so one variable arms a whole process tree.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Schema tag embedded in serialised plans.
FAULT_PLAN_SCHEMA = "repro.faults/v1"

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "kill-worker",
    "delay-job",
    "raise-transient",
    "drop-connection",
    "torn-journal",
)

#: Which :func:`~repro.faults.inject.fault_point` site each kind fires
#: at.  The first three hit job execution; the socket and journal kinds
#: hit the service plane.
SITE_BY_KIND = {
    "kill-worker": "job-start",
    "delay-job": "job-start",
    "raise-transient": "job-start",
    "drop-connection": "client-outcome",
    "torn-journal": "journal-append",
}

#: All sites, for validation at the hook.
FAULT_SITES = tuple(sorted(set(SITE_BY_KIND.values())))


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at the site's ``at``-th call.

    ``at`` counts calls to the fault's site *within one process*
    (1-based); the first process to reach the count claims the fault.
    ``param`` parameterises kinds that need it (the delay in seconds for
    ``delay-job``); others ignore it.
    """

    kind: str
    at: int
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})"
            )
        if self.at < 1:
            raise ValidationError(f"fault position is 1-based, got {self.at}")
        if self.param < 0:
            raise ValidationError(f"fault param must be >= 0, got {self.param}")

    @property
    def site(self) -> str:
        """The injection site this fault fires at."""
        return SITE_BY_KIND[self.kind]


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A full injection schedule plus its exactly-once bookkeeping dir.

    ``state_dir`` holds one marker file per consumed fault, shared by
    every process under the plan; an empty string degrades to
    once-per-process semantics (fine for single-process tests).
    """

    seed: int
    faults: tuple[FaultSpec, ...]
    state_dir: str = ""

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        """The scheduled faults firing at ``site``."""
        return tuple(spec for spec in self.faults if spec.site == site)

    def to_payload(self) -> dict[str, Any]:
        """The plan as JSON-ready plain data."""
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "state_dir": self.state_dir,
            "faults": [dataclasses.asdict(spec) for spec in self.faults],
        }

    def to_json(self) -> str:
        """The plan serialised for ``REPRO_FAULT_PLAN``."""
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_payload` data."""
        schema = payload.get("schema")
        if schema != FAULT_PLAN_SCHEMA:
            raise ValidationError(
                f"fault plan schema mismatch: {schema!r} != "
                f"{FAULT_PLAN_SCHEMA!r}"
            )
        return cls(
            seed=int(payload["seed"]),
            state_dir=str(payload.get("state_dir", "")),
            faults=tuple(
                FaultSpec(**spec) for spec in payload.get("faults", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from its JSON form."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ValidationError("fault plan JSON must be an object")
        return cls.from_payload(payload)


def compile_plan(
    seed: int,
    kinds: Sequence[str] = FAULT_KINDS,
    *,
    total_jobs: int = 12,
    delay_s: float = 0.05,
    state_dir: str = "",
) -> FaultPlan:
    """Compile a deterministic plan: one fault per requested kind.

    Each fault's position derives from ``(seed, kind)`` over
    ``[1, total_jobs]``, so the same seed always schedules the same
    faults at the same points -- the property that makes a chaos run
    debuggable and replayable.
    """
    if total_jobs < 1:
        raise ValidationError(f"total_jobs must be >= 1, got {total_jobs}")
    unknown = [kind for kind in kinds if kind not in FAULT_KINDS]
    if unknown:
        raise ValidationError(
            f"unknown fault kind(s) {unknown} (known: {FAULT_KINDS})"
        )
    # Positions are deduplicated per site (linear probing) so a plan may
    # schedule the same kind several times -- "inject two transients" --
    # and every fault keeps a distinct, exactly-once identity.
    faults = []
    taken: dict[str, set[int]] = {}
    for occurrence, kind in enumerate(kinds):
        site = SITE_BY_KIND[kind]
        used = taken.setdefault(site, set())
        if len(used) >= total_jobs:
            raise ValidationError(
                f"more faults at site {site!r} than positions "
                f"({total_jobs}); raise total_jobs"
            )
        at = 1 + derive_seed(seed, "fault-at", kind, occurrence) % total_jobs
        while at in used:
            at = 1 + (at % total_jobs)
        used.add(at)
        faults.append(
            FaultSpec(
                kind=kind,
                at=at,
                param=delay_s if kind == "delay-job" else 0.0,
            )
        )
    return FaultPlan(seed=seed, faults=tuple(faults), state_dir=state_dir)


def load_plan_from_env(environ: dict[str, str] | None = None) -> FaultPlan | None:
    """The plan armed via ``REPRO_FAULT_PLAN``, or ``None``.

    The value is the plan's JSON, or ``@path`` pointing at a JSON file.
    A present-but-malformed plan raises: silently running *without*
    faults when the caller asked for them would invert a chaos test.
    """
    value = (environ if environ is not None else os.environ).get(
        FAULT_PLAN_ENV, ""
    ).strip()
    if not value:
        return None
    if value.startswith("@"):
        path = value[1:]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                value = handle.read()
        except OSError as exc:
            raise ValidationError(
                f"cannot read fault plan file {path!r}: {exc}"
            )
    return FaultPlan.from_json(value)


__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_PLAN_SCHEMA",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "SITE_BY_KIND",
    "compile_plan",
    "load_plan_from_env",
]
