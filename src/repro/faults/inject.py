"""The injection hook: where armed fault plans actually fire.

Production call sites sprinkle ``fault_point("<site>")`` at the spots a
real fault would strike -- job execution, the client's outcome stream,
the memo journal's append.  With no plan armed the hook is one global
check; with a plan it counts calls per site and fires each scheduled
fault exactly once across the whole process tree (marker files in the
plan's ``state_dir`` arbitrate between processes).

Kind semantics at the hook:

* ``kill-worker`` hard-exits the process -- but only inside a pool
  worker (:func:`~repro.runtime.in_worker_process`), never the driver
  or daemon, so a chaos plan can at worst cost a respawn;
* ``delay-job`` sleeps ``param`` seconds before the job runs;
* ``raise-transient`` raises :class:`~repro.errors.TransientError`;
* ``drop-connection`` raises :class:`ConnectionResetError`;
* ``torn-journal`` does nothing here -- the spec is *returned* and the
  journal writer enacts the torn write itself.
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import TransientError, ValidationError
from repro.faults.plan import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    load_plan_from_env,
)
from repro.runtime import in_worker_process

_lock = threading.Lock()
_loaded = False
_plan: FaultPlan | None = None
_counters: dict[str, int] = {}
_fired: set[tuple[str, int]] = set()


def reset_fault_state() -> None:
    """Forget the cached plan and counters (the env is re-read lazily).

    Call between phases that re-arm ``REPRO_FAULT_PLAN`` with different
    plans in one process (the chaos driver does).
    """
    global _loaded, _plan
    with _lock:
        _loaded = False
        _plan = None
        _counters.clear()
        _fired.clear()


def active_plan() -> FaultPlan | None:
    """The plan this process is running under, if any (loads lazily)."""
    global _loaded, _plan
    with _lock:
        if not _loaded:
            _plan = load_plan_from_env()
            _loaded = True
        return _plan


def _claim(plan: FaultPlan, spec: FaultSpec) -> bool:
    """Consume ``spec`` exactly once across every process on the plan."""
    if not plan.state_dir:
        key = (spec.kind, spec.at)
        if key in _fired:
            return False
        _fired.add(key)
        return True
    os.makedirs(plan.state_dir, exist_ok=True)
    marker = os.path.join(plan.state_dir, f"{spec.kind}-{spec.at}.fired")
    try:
        handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(handle)
    return True


def fault_point(site: str) -> FaultSpec | None:
    """Fire any fault scheduled for this call of ``site``.

    Returns the claimed spec for kinds the *caller* enacts
    (``torn-journal``); action kinds raise or exit here.  No plan armed
    means no counter bookkeeping at all.
    """
    if site not in FAULT_SITES:
        raise ValidationError(
            f"unknown fault site {site!r} (known: {FAULT_SITES})"
        )
    plan = active_plan()
    if plan is None:
        return None
    matched: FaultSpec | None = None
    with _lock:
        count = _counters.get(site, 0) + 1
        _counters[site] = count
        for spec in plan.for_site(site):
            if spec.at != count:
                continue
            if spec.kind == "kill-worker" and not in_worker_process():
                # Never kill the driver, a scheduler thread, or the
                # daemon; the fault stays unclaimed for a real worker.
                continue
            if _claim(plan, spec):
                matched = spec
                break
    if matched is None:
        return None
    if matched.kind == "kill-worker":
        os._exit(1)
    if matched.kind == "delay-job":
        time.sleep(matched.param)
        return matched
    if matched.kind == "raise-transient":
        raise TransientError(
            f"injected transient fault ({site} call {matched.at})"
        )
    if matched.kind == "drop-connection":
        raise ConnectionResetError(
            f"injected connection drop ({site} call {matched.at})"
        )
    return matched


__all__ = [
    "active_plan",
    "fault_point",
    "reset_fault_state",
]
