"""Executable test cases compiled from attack descriptions (Step 4).

A :class:`TestCase` binds an attack description to the simulator: a
scenario factory (establishing the *precondition*), an attack arming
function (the *implementation comments* made executable), and two oracles
evaluating the *Attack Success* and *Attack Fails* criteria after the run.

Verdict semantics follow §III-C: "the success case usually indicates how
the safety goal is violated, while the failing case indicates a
non-vulnerable system".  From the validation perspective, an attack that
*succeeds* means the SUT failed the test.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable

from repro.errors import ValidationError
from repro.model.identifiers import require_attack_id
from repro.results import SOURCE_PIPELINE, RunRecord, freeze_items
from repro.testing.oracles import Oracle


class Verdict(enum.Enum):
    """Outcome of executing one attack test case."""

    ATTACK_SUCCEEDED = "attack succeeded (SUT vulnerable)"
    ATTACK_FAILED = "attack failed (SUT withstood)"
    INCONCLUSIVE = "inconclusive"

    @property
    def sut_passed(self) -> bool:
        """True when the SUT withstood the attack."""
        return self is Verdict.ATTACK_FAILED


#: Builds a fresh scenario satisfying the attack's precondition.
ScenarioFactory = Callable[[], Any]

#: Arms the attack on a built scenario; returns the injector (or None for
#: passive setups baked into the scenario).
AttackArmer = Callable[[Any], Any]


@dataclasses.dataclass(frozen=True)
class TestCase:
    """One executable security test.

    (``__test__ = False`` keeps pytest from trying to collect this class
    when it is imported into test modules.)

    Attributes:
        attack_id: The attack description this test implements (``ADnn``).
        title: Human-readable name.
        build_scenario: Factory establishing the precondition.
        arm_attack: Hook attaching/scheduling the attack injector.
        duration_ms: Simulated run length.
        success_oracle: Evaluates the *Attack Success* criteria.
        failure_oracle: Evaluates the *Attack Fails* criteria.
        safety_goal_ids: Goals whose violation the attack targets
            (propagated from the description for reporting).
    """

    __test__ = False

    attack_id: str
    title: str
    build_scenario: ScenarioFactory
    arm_attack: AttackArmer
    duration_ms: float
    success_oracle: Oracle
    failure_oracle: Oracle
    safety_goal_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require_attack_id(self.attack_id)
        if self.duration_ms <= 0:
            raise ValidationError(
                f"test case {self.attack_id}: duration must be positive"
            )
        if not self.title:
            raise ValidationError(
                f"test case {self.attack_id}: title must not be empty"
            )


@dataclasses.dataclass(frozen=True)
class TestExecution:
    """The record of one executed test case.

    Attributes:
        test: The executed test case.
        verdict: The derived verdict.
        success_observed: What the success oracle reported.
        failure_observed: What the failure oracle reported.
        scenario_result: The raw scenario result for deeper inspection.
        notes: Explanation of the verdict derivation.
    """

    test: TestCase
    verdict: Verdict
    success_observed: bool
    failure_observed: bool
    scenario_result: Any
    notes: str = ""

    @property
    def sut_passed(self) -> bool:
        """True when the SUT withstood the attack."""
        return self.verdict.sut_passed

    def summary(self) -> str:
        """One-line result summary."""
        return f"{self.test.attack_id} [{self.test.title}]: {self.verdict.value}"

    def to_record(self, use_case: str = "") -> RunRecord:
        """This execution as a uniform :class:`~repro.results.RunRecord`."""
        attrs = {
            "title": self.test.title,
            "success_observed": str(self.success_observed).lower(),
            "failure_observed": str(self.failure_observed).lower(),
        }
        violated = getattr(self.scenario_result, "violated_goals", None)
        if callable(violated):
            violated_goals = tuple(violated())
            if violated_goals:
                attrs["violated"] = ";".join(violated_goals)
        return RunRecord(
            source=SOURCE_PIPELINE,
            subject=self.test.attack_id,
            verdict=self.verdict.name,
            passed=self.sut_passed,
            use_case=use_case,
            family="bound-attack",
            goals=self.test.safety_goal_ids,
            metrics=freeze_items({"duration_ms": self.test.duration_ms}),
            attrs=freeze_items(attrs),
            notes=self.notes,
        )


__all__ = [
    "AttackArmer",
    "ScenarioFactory",
    "TestCase",
    "TestExecution",
    "Verdict",
]
