"""Test execution layer: test cases, oracles, harness (Step 4).

The :mod:`repro.dsl` compiler emits :class:`~repro.testing.testcase
.TestCase` objects; the :class:`~repro.testing.harness.TestHarness`
executes them against the simulator and derives attack verdicts.
"""

from repro.testing import oracles
from repro.testing.harness import CampaignReport, TestHarness
from repro.testing.testcase import TestCase, TestExecution, Verdict

__all__ = [
    "CampaignReport",
    "TestCase",
    "TestExecution",
    "TestHarness",
    "Verdict",
    "oracles",
]
