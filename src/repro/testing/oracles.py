"""Test oracles: executable Attack-Success / Attack-Fails criteria.

An oracle inspects a finished scenario (and its
:class:`~repro.sim.scenarios.ScenarioResult`) and reports whether its
criterion held.  Oracles are small composable objects so a test case's
pass/fail criteria read like the attack description's prose:

    success = goal_violated("SG01")
    fails   = all_of(not_(goal_violated("SG01")),
                     detection_logged("OBU", "flooding-detector"))
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

#: An oracle predicate over (scenario, scenario_result).
OracleFn = Callable[[Any, Any], bool]


@dataclasses.dataclass(frozen=True)
class Oracle:
    """A named predicate over a finished scenario run."""

    description: str
    check: OracleFn

    def evaluate(self, scenario: Any, result: Any) -> bool:
        """Evaluate the criterion on a finished run."""
        return bool(self.check(scenario, result))


def predicate(description: str, check: OracleFn) -> Oracle:
    """Wrap an arbitrary predicate as an oracle."""
    return Oracle(description=description, check=check)


def goal_violated(goal_id: str) -> Oracle:
    """The named safety goal was violated during the run."""
    return Oracle(
        description=f"safety goal {goal_id} violated",
        check=lambda scenario, result: result.violated(goal_id),
    )


def any_goal_violated(*goal_ids: str) -> Oracle:
    """At least one of the named goals was violated."""
    names = ", ".join(goal_ids)
    return Oracle(
        description=f"any of {names} violated",
        check=lambda scenario, result: any(
            result.violated(goal_id) for goal_id in goal_ids
        ),
    )


def no_goal_violated(*goal_ids: str) -> Oracle:
    """None of the named goals was violated (empty = no violation at all)."""
    names = ", ".join(goal_ids) or "any goal"
    return Oracle(
        description=f"no violation of {names}",
        check=lambda scenario, result: (
            not result.violations
            if not goal_ids
            else not any(result.violated(goal_id) for goal_id in goal_ids)
        ),
    )


def detection_logged(
    ecu: str, control: str | None = None, min_count: int = 1
) -> Oracle:
    """The named ECU's intrusion log recorded at least ``min_count`` denials."""
    what = f"{ecu}/{control}" if control else ecu
    return Oracle(
        description=f"detection log of {what} has >= {min_count} entries",
        check=lambda scenario, result: (
            result.detections_of(ecu, control) >= min_count
        ),
    )


def event_occurred(topic: str, min_count: int = 1) -> Oracle:
    """At least ``min_count`` events under ``topic`` were published."""
    return Oracle(
        description=f">= {min_count} events under {topic!r}",
        check=lambda scenario, result: scenario.bus.count(topic) >= min_count,
    )


def no_event(topic: str) -> Oracle:
    """No event under ``topic`` was published."""
    return Oracle(
        description=f"no event under {topic!r}",
        check=lambda scenario, result: scenario.bus.count(topic) == 0,
    )


def service_shut_down(ecu_attr: str) -> Oracle:
    """The named scenario ECU attribute reports a shutdown (AD20 success)."""
    return Oracle(
        description=f"{ecu_attr} shut down",
        check=lambda scenario, result: getattr(scenario, ecu_attr).is_shut_down,
    )


def door_open() -> Oracle:
    """The vehicle's door ended the run open (UC II)."""
    return Oracle(
        description="door is open",
        check=lambda scenario, result: (
            result.stats["door"]["state"] == "open"
        ),
    )


def door_closed() -> Oracle:
    """The vehicle's door ended the run closed (UC II)."""
    return Oracle(
        description="door is closed",
        check=lambda scenario, result: (
            result.stats["door"]["state"] == "closed"
        ),
    )


def all_of(*oracles: Oracle) -> Oracle:
    """Conjunction of oracles."""
    return Oracle(
        description=" AND ".join(oracle.description for oracle in oracles),
        check=lambda scenario, result: all(
            oracle.evaluate(scenario, result) for oracle in oracles
        ),
    )


def any_of(*oracles: Oracle) -> Oracle:
    """Disjunction of oracles."""
    return Oracle(
        description=" OR ".join(oracle.description for oracle in oracles),
        check=lambda scenario, result: any(
            oracle.evaluate(scenario, result) for oracle in oracles
        ),
    )


def not_(oracle: Oracle) -> Oracle:
    """Negation of an oracle."""
    return Oracle(
        description=f"NOT ({oracle.description})",
        check=lambda scenario, result: not oracle.evaluate(scenario, result),
    )


__all__ = [
    "Oracle",
    "OracleFn",
    "all_of",
    "any_goal_violated",
    "any_of",
    "detection_logged",
    "door_closed",
    "door_open",
    "event_occurred",
    "goal_violated",
    "no_event",
    "no_goal_violated",
    "not_",
    "predicate",
    "service_shut_down",
]
