"""The test harness: executes compiled test cases and derives verdicts.

Verdict derivation from the two oracle observations:

=================  =================  ============================
success criterion  fails criterion    verdict
=================  =================  ============================
holds              does not hold      ATTACK_SUCCEEDED (SUT fails)
does not hold      holds              ATTACK_FAILED (SUT passes)
holds              holds              INCONCLUSIVE (contradictory)
does not hold      does not hold      INCONCLUSIVE (nothing observed)
=================  =================  ============================

Inconclusive outcomes are first-class: §III-C demands that a failed attack
be *detectable*, so a run where neither criterion fires means the test
case's criteria are underspecified -- the harness surfaces that instead of
guessing.
"""

from __future__ import annotations

import dataclasses

from repro.errors import HarnessError
from repro.results import ResultSet
from repro.testing.testcase import TestCase, TestExecution, Verdict


class TestHarness:
    """Executes test cases against fresh scenario instances."""

    def execute(self, test: TestCase) -> TestExecution:
        """Run one test case end to end and derive the verdict."""
        scenario = test.build_scenario()
        if scenario is None:
            raise HarnessError(
                f"{test.attack_id}: scenario factory returned None"
            )
        test.arm_attack(scenario)
        result = scenario.run(test.duration_ms)
        success = test.success_oracle.evaluate(scenario, result)
        failure = test.failure_oracle.evaluate(scenario, result)
        verdict, notes = self._derive(test, success, failure)
        return TestExecution(
            test=test,
            verdict=verdict,
            success_observed=success,
            failure_observed=failure,
            scenario_result=result,
            notes=notes,
        )

    def execute_all(self, tests: list[TestCase]) -> "CampaignReport":
        """Run a list of test cases and aggregate a campaign report."""
        executions = tuple(self.execute(test) for test in tests)
        return CampaignReport(executions=executions)

    def execute_variant(self, variant, registry=None):
        """Execute one registry :class:`~repro.engine.spec.VariantSpec`.

        The scenario is built from the declarative registry entry (spec
        factory + variant parameter overrides) instead of a hard-coded
        class; bound attack descriptions run through their Step-4 binding
        and published oracles.  Returns a
        :class:`~repro.engine.campaign.VariantOutcome`.
        """
        # Imported lazily: the engine depends on this module's TestCase
        # execution, not the other way around.
        from repro.engine.campaign import execute_variant

        return execute_variant(variant, registry=registry)

    @staticmethod
    def _derive(
        test: TestCase, success: bool, failure: bool
    ) -> tuple[Verdict, str]:
        if success and not failure:
            return (
                Verdict.ATTACK_SUCCEEDED,
                f"success criterion held ({test.success_oracle.description})",
            )
        if failure and not success:
            return (
                Verdict.ATTACK_FAILED,
                f"fails criterion held ({test.failure_oracle.description})",
            )
        if success and failure:
            return (
                Verdict.INCONCLUSIVE,
                "both criteria held -- criteria are contradictory",
            )
        return (
            Verdict.INCONCLUSIVE,
            "neither criterion held -- criteria are underspecified",
        )


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """Aggregated result of a test campaign."""

    executions: tuple[TestExecution, ...]

    @property
    def total(self) -> int:
        """Number of executed test cases."""
        return len(self.executions)

    @property
    def sut_passed(self) -> tuple[TestExecution, ...]:
        """Executions where the SUT withstood the attack."""
        return tuple(
            execution for execution in self.executions if execution.sut_passed
        )

    @property
    def sut_failed(self) -> tuple[TestExecution, ...]:
        """Executions where the attack succeeded."""
        return tuple(
            execution
            for execution in self.executions
            if execution.verdict is Verdict.ATTACK_SUCCEEDED
        )

    @property
    def inconclusive(self) -> tuple[TestExecution, ...]:
        """Executions with no clear verdict."""
        return tuple(
            execution
            for execution in self.executions
            if execution.verdict is Verdict.INCONCLUSIVE
        )

    def by_goal(self, goal_id: str) -> tuple[TestExecution, ...]:
        """Executions of tests targeting one safety goal."""
        return tuple(
            execution
            for execution in self.executions
            if goal_id in execution.test.safety_goal_ids
        )

    def summary(self) -> dict[str, int]:
        """Counts for reporting."""
        return {
            "total": self.total,
            "sut_passed": len(self.sut_passed),
            "attack_succeeded": len(self.sut_failed),
            "inconclusive": len(self.inconclusive),
        }

    def to_result_set(self, use_case: str = "") -> ResultSet:
        """Every execution as a :class:`~repro.results.RunRecord` set."""
        return ResultSet.of(
            execution.to_record(use_case=use_case)
            for execution in self.executions
        )

    def to_text(self) -> str:
        """Render the campaign as a plain-text report."""
        lines = ["Security test campaign"]
        counts = self.summary()
        lines.append(
            f"  {counts['total']} tests: "
            f"{counts['sut_passed']} withstood, "
            f"{counts['attack_succeeded']} vulnerable, "
            f"{counts['inconclusive']} inconclusive"
        )
        for execution in self.executions:
            marker = {
                Verdict.ATTACK_FAILED: "PASS",
                Verdict.ATTACK_SUCCEEDED: "FAIL",
                Verdict.INCONCLUSIVE: "????",
            }[execution.verdict]
            lines.append(f"  [{marker}] {execution.summary()}")
            if execution.notes:
                lines.append(f"         {execution.notes}")
        return "\n".join(lines)


__all__ = [
    "CampaignReport",
    "TestHarness",
]
