"""Command-line interface to the SaSeVAL reproduction.

Usage (also via ``python -m repro``)::

    repro report uc1              # HARA summary + goals + attack counts
    repro report uc2
    repro attack AD20 --usecase uc1   # render one attack (Table VI style)
    repro export uc2 attacks.dsl      # write all attacks as DSL
    repro validate attacks.dsl --usecase uc2   # parse + semantic check
    repro run AD08 --usecase uc2      # execute a bound attack, print verdict
    repro trace uc1                   # goal/attack/threat matrix (Markdown)
    repro campaign --backend process --jobs 4   # parallel fan-out
    repro campaign --family control-ablation --verbose
    repro campaign --usecase uc1 --family fleet --fleet 4   # convoy runs
    repro campaign --family coverage --rsu-range 200        # range sweep
    repro campaign --list             # enumerate variants without running
    repro campaign --list-families    # enumerate the variant families
    repro campaign --export out.csv   # export outcomes (json/csv/md)
    repro campaign --batch-size 8 --backend process --jobs 4  # batched tier
    repro bench --json                # machine-readable benchmark records
    repro bench backends --json       # serial vs thread vs process speedup
    repro bench --suite rq1 --out .   # write BENCH_rq1.json
    repro bench --compare BENCH_rq1.json --threshold 15   # perf gate
    repro bench --history BENCH_HISTORY.jsonl   # append-only perf trajectory
    repro bench --compare BENCH_HISTORY.jsonl   # gate vs the latest entry
    repro serve --port-file daemon.port --memo-dir .memo  # campaign daemon
    repro submit --port-file daemon.port --family coverage  # stream verdicts
    repro status --port-file daemon.port        # scheduler + memo health
    repro lint                        # static verification plane (src + registry + DSL)
    repro lint --json --out lint-out  # schema-stable LINT.json for CI
    repro lint --list-rules           # the codified invariant catalog
    repro lint --diff LINT.json       # gate on *new* findings only
    repro chaos --family coverage     # fault-injection parity gate
    repro chaos --kinds kill-worker,drop-connection --out chaos-out

The CLI is a thin shell over the :mod:`repro.api` facade; every command
returns a proper exit code (0 ok, 1 user error, 2 validation/semantic
failure) so it can gate CI pipelines on completeness or verdicts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.reporting import (
    render_asil_distribution,
    render_attack_description,
)
from repro.dsl import analyze, format_attacks, parse
from repro.errors import ReproError
from repro.results import SCHEMA as RESULTS_SCHEMA, ResultSet
from repro.threatlib.catalog import build_catalog
from repro.usecases import uc1, uc2

_USE_CASES = {"uc1": uc1, "uc2": uc2}


def _module_for(name: str):
    if name not in _USE_CASES:
        raise SystemExit(f"unknown use case {name!r} (choose uc1 or uc2)")
    return _USE_CASES[name]


def cmd_report(args: argparse.Namespace) -> int:
    """Print the use case's analysis summary."""
    module = _module_for(args.usecase)
    hara = module.build_hara()
    attacks = module.build_attacks()
    print(module.USE_CASE_NAME)
    print(f"  functions : {len(hara.functions)}")
    print(f"  ratings   : {len(hara.ratings)}")
    print(
        "  asil      : "
        + render_asil_distribution(hara.asil_distribution())
    )
    print(f"  goals     : {len(hara.safety_goals)}")
    for goal in hara.safety_goals:
        print(f"    - {goal}")
    safety = len(attacks.safety_attacks())
    privacy = len(attacks.privacy_attacks())
    print(f"  attacks   : {safety} safety + {privacy} privacy")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    """Render one attack description in the paper's table layout."""
    module = _module_for(args.usecase)
    attacks = module.build_attacks()
    if args.attack_id not in attacks:
        print(
            f"no attack {args.attack_id} in {module.USE_CASE_NAME}",
            file=sys.stderr,
        )
        return 1
    print(render_attack_description(attacks.get(args.attack_id)))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Write a use case's attack descriptions as a DSL document."""
    module = _module_for(args.usecase)
    document = format_attacks(list(module.build_attacks()))
    Path(args.output).write_text(document, encoding="utf-8")
    print(f"wrote {len(document.splitlines())} lines to {args.output}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Parse + semantically validate a DSL document."""
    module = _module_for(args.usecase)
    source = Path(args.file).read_text(encoding="utf-8")
    try:
        attacks = analyze(
            parse(source),
            build_catalog(),
            list(module.build_hara().safety_goals),
        )
    except ReproError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 2
    print(f"OK: {len(attacks)} attack description(s) validated")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Execute one bound attack against the simulator."""
    from repro.api import Workspace

    try:
        execution = Workspace().run(args.attack_id, args.usecase)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(execution.summary())
    print(f"  {execution.notes}")
    return 0 if execution.sut_passed else 2


def _export_records(records: ResultSet, target: str) -> None:
    """Write a result set to ``target`` (format from the extension)."""
    path = Path(target)
    suffix = path.suffix.lower()
    if suffix == ".json":
        document = records.to_json()
    elif suffix == ".csv":
        document = records.to_csv()
    elif suffix in (".md", ".markdown"):
        document = records.to_markdown()
    else:
        raise ReproError(
            f"cannot infer export format from {target!r} "
            "(use .json, .csv or .md)"
        )
    path.write_text(document, encoding="utf-8")


def _campaign_execution(
    args: argparse.Namespace,
) -> tuple[str, int, int | None]:
    """Resolve ``--backend``/``--jobs``/``--batch-size``/legacy ``--workers``."""
    from repro.errors import ValidationError

    jobs = args.jobs if args.jobs is not None else args.workers
    if jobs is not None and jobs < 1:
        raise ValidationError(f"jobs/workers must be >= 1, got {jobs}")
    batch_size = getattr(args, "batch_size", None)
    if batch_size is not None and batch_size < 1:
        raise ValidationError(f"batch size must be >= 1, got {batch_size}")
    backend = args.backend
    if backend is None:
        backend = "process" if jobs is not None and jobs > 1 else "serial"
    if jobs is None:
        jobs = 1
    return backend, jobs, batch_size


def _print_families(registry, args: argparse.Namespace) -> int:
    """Enumerate the variant families, honouring the selection filters."""
    rows = []
    for scenario in registry.names():
        if args.scenario is not None and scenario != args.scenario:
            continue
        if (
            args.usecase is not None
            and registry.get(scenario).use_case != args.usecase
        ):
            continue
        for family in registry.families(scenario):
            if args.family is not None and family != args.family:
                continue
            rows.append(
                {
                    "scenario": scenario,
                    "family": family,
                    "variants": len(
                        registry.variants(scenario=scenario, family=family)
                    ),
                }
            )
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    if not rows:
        print("no families match the given filters", file=sys.stderr)
        return 1
    for row in rows:
        print(
            f"{row['scenario']:25s} {row['family']:20s} "
            f"{row['variants']:4d} variant(s)"
        )
    print(f"{len(rows)} famil{'y' if len(rows) == 1 else 'ies'}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run (or list) the scenario registry's variant families."""
    # Imported here so the light report/export commands keep their fast
    # startup; the engine pulls in the whole simulator stack.
    from repro.api import Workspace
    from repro.engine.campaign import CampaignRunner
    from repro.engine.registry import apply_topology_overrides

    try:
        backend, jobs, batch_size = _campaign_execution(args)
        # Selection needs only the registry; the execution backend is
        # resolved once, inside Workspace.campaign below.
        runner = CampaignRunner()
        if args.list_families:
            return _print_families(runner.registry, args)
        variants = runner.select(
            scenario=args.scenario,
            family=args.family,
            attack=args.attack,
            limit=args.limit,
            use_case=args.usecase,
        )
        if args.fleet is not None or args.rsu_range is not None:
            variants = apply_topology_overrides(
                variants,
                runner.registry,
                fleet_size=args.fleet,
                rsu_range_m=args.rsu_range,
            )
    except ReproError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if not variants:
        print("no variants match the given filters", file=sys.stderr)
        return 1
    if args.list:
        if args.json:
            print(json.dumps(
                [
                    {
                        "variant_id": variant.variant_id,
                        "scenario": variant.scenario,
                        "family": variant.family,
                        "attack": variant.attack,
                        "description": variant.description,
                    }
                    for variant in variants
                ],
                indent=2,
            ))
            return 0
        for variant in variants:
            attack = variant.attack or "-"
            print(f"{variant.variant_id:50s} {attack:10s} {variant.description}")
        print(f"{len(variants)} variant(s)")
        return 0
    workspace = Workspace()
    try:
        retry = None
        if args.retries is not None:
            from repro.runtime import RetryPolicy

            retry = RetryPolicy(max_attempts=args.retries)
        result = workspace.campaign(
            variants=variants,
            backend=backend,
            jobs=jobs,
            batch_size=batch_size,
            retry=retry,
            deadline_s=args.deadline_s,
            # Fault-tolerant runs record failures as tagged outcomes
            # (quarantine) instead of failing the whole campaign.
            on_error="record" if (retry or args.deadline_s) else "raise",
        )
    except ReproError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    records = workspace.results()
    if args.export:
        try:
            _export_records(records, args.export)
        except (ReproError, OSError) as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            return 1
        print(f"exported {len(records)} record(s) to {args.export}")
    if args.json:
        print(json.dumps(
            {
                "schema": RESULTS_SCHEMA,
                "summary": result.summary(),
                "outcomes": [record.to_payload() for record in records],
            },
            indent=2,
        ))
    elif not args.export:
        print(result.to_text(verbose=args.verbose))
    inconclusive = result.counts().get("INCONCLUSIVE", 0)
    return 2 if inconclusive else 0


def _bench_compare(args: argparse.Namespace) -> int:
    """``repro bench --compare``: gate a fresh run against a baseline."""
    from repro.bench import compare_against_baseline

    try:
        deltas, _fresh = compare_against_baseline(
            args.compare, threshold_pct=args.threshold, out_dir=None
        )
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    for delta in deltas:
        print(delta.render())
    regressed = [delta for delta in deltas if delta.regressed]
    if regressed:
        print(
            f"{len(regressed)} throughput metric(s) regressed more than "
            f"{args.threshold:g}% below {args.compare}",
            file=sys.stderr,
        )
        return 2
    print(
        f"{len(deltas)} throughput metric(s) within {args.threshold:g}% "
        f"of {args.compare}"
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the built-in bench suites; write BENCH_<suite>.json records."""
    from repro.bench import BENCH_SCHEMA, BENCH_SUITES, run_suites

    if args.list:
        for name in BENCH_SUITES:
            print(name)
        return 0
    if args.compare is not None:
        return _bench_compare(args)
    selected = list(
        dict.fromkeys(list(args.suites) + list(args.suite or ()))
    )
    if args.profile and args.history is not None:
        print(
            "ERROR: --profile numbers are inflated by the profiler; "
            "refusing to append them to the history",
            file=sys.stderr,
        )
        return 1
    try:
        results, paths = run_suites(
            selected or None, out_dir=args.out, profile=args.profile
        )
        if args.history is not None:
            from repro.bench import append_history

            history_path = append_history(args.history, results)
    except (ReproError, OSError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(
            {
                "schema": BENCH_SCHEMA,
                "suites": {
                    name: [record.to_payload() for record in records]
                    for name, records in results.items()
                },
            },
            indent=2,
        ))
    else:
        for name, records in results.items():
            for record in records:
                metrics = ", ".join(
                    f"{key}={value:.4g}" if isinstance(value, float)
                    else f"{key}={value}"
                    for key, value in record.metrics
                )
                print(f"[{record.status:6s}] {name}/{record.name}  {metrics}")
        for path in paths:
            print(f"wrote {path}")
        if args.history is not None:
            print(f"appended history entry to {history_path}")
    failed = any(
        not record.ok for records in results.values() for record in records
    )
    return 2 if failed else 0


def _lint_findings(args: argparse.Namespace):
    """Collect lint + spec findings; returns (findings, checked_files)."""
    from repro.analysis import check_all, lint_paths, rules_by_code

    codes = (
        [code.strip() for code in args.rules.split(",") if code.strip()]
        if args.rules
        else None
    )
    if args.paths:
        paths = list(args.paths)
    else:
        import repro

        paths = [Path(repro.__file__).parent]
    findings, checked = lint_paths(
        paths, rules=rules_by_code(codes), root=Path.cwd()
    )
    if not args.no_spec:
        findings = findings + check_all()
    return findings, checked


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static verification plane (AST rules + registry/DSL)."""
    from repro.analysis import (
        build_report,
        diff_findings,
        load_report,
        render_report,
        rule_catalog,
        sort_findings,
        write_report,
    )

    if args.list_rules:
        for rule in rule_catalog():
            print(f"{rule['code']}  {rule['name']:28s} {rule['summary']}")
        return 0
    try:
        findings, checked = _lint_findings(args)
        if args.diff is not None:
            findings = diff_findings(findings, load_report(args.diff))
        payload = build_report(
            sort_findings(findings),
            checked_files=checked,
            rules=rule_catalog(),
        )
        if args.out is not None:
            path = write_report(payload, args.out)
    except (ReproError, OSError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        if args.diff is not None and not findings:
            print(f"no new findings relative to {args.diff}")
        else:
            print(render_report(payload))
        if args.out is not None:
            print(f"wrote {path}")
    return 2 if findings else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent campaign daemon (blocks until stopped)."""
    import logging

    from repro.service import CampaignDaemon

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    try:
        daemon = CampaignDaemon(
            host=args.host,
            port=args.port,
            memo_dir=args.memo_dir,
            shards=args.shards,
            workers=args.workers,
            port_file=args.port_file,
            failure_threshold=args.failure_threshold,
            deadline_s=args.deadline_s,
        )
    except (ReproError, OSError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(f"serving on {daemon.host}:{daemon.port} (ctrl-c to stop)")
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.stop()
    return 0


def _service_client(args: argparse.Namespace):
    """A ``ServiceClient`` from ``--port``/``--port-file`` arguments."""
    from repro.service import ServiceClient

    if args.port_file is not None:
        return ServiceClient.from_port_file(args.port_file, args.host)
    if args.port is not None:
        return ServiceClient(args.port, args.host)
    raise SystemExit("pass --port or --port-file to find the daemon")


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a variant selection to a running daemon; stream verdicts."""
    from repro.service import ServiceError

    select = {
        key: value
        for key, value in {
            "scenario": args.scenario,
            "family": args.family,
            "attack": args.attack,
            "limit": args.limit,
            "use_case": args.usecase,
        }.items()
        if value is not None
    }
    outcomes = []
    summary = {}
    try:
        client = _service_client(args)
        for kind, key, payload in client.submit_stream(select=select):
            if kind == "accepted":
                print(f"accepted {key}: {payload} variant(s)")
            elif kind == "outcome":
                outcomes.append(payload)
                marker = (
                    "ERR!" if payload.is_error
                    else "PASS" if payload.sut_passed
                    else "FAIL"
                )
                cached = " (cached)" if payload.from_cache else ""
                print(f"  [{marker}] {payload.variant_id}{cached}")
            else:
                summary = payload
    except ServiceError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if args.json:
        import dataclasses

        print(json.dumps(
            {
                "summary": summary,
                "outcomes": [dataclasses.asdict(o) for o in outcomes],
            },
            indent=2,
        ))
    else:
        print(
            f"done: {summary.get('completed', 0)}/{summary.get('total', 0)} "
            f"completed, {summary.get('cached', 0)} cached, "
            f"{summary.get('errors', 0)} error(s)"
        )
    return 2 if summary.get("errors") else 0


def cmd_status(args: argparse.Namespace) -> int:
    """Query a running daemon's scheduler + memo store health."""
    from repro.service import ServiceError

    try:
        status = _service_client(args).status()
    except ServiceError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    scheduler = status.get("scheduler", {})
    memo = status.get("memo", {})
    print(
        f"daemon pid {status.get('pid')}, up {status.get('uptime_s', 0):.0f}s"
    )
    print(
        f"  scheduler: {scheduler.get('workers')} worker(s) over "
        f"{scheduler.get('shards')} shard(s), "
        f"{scheduler.get('queued_units')} unit(s) queued, "
        f"{scheduler.get('executed')} executed, "
        f"{scheduler.get('stolen_units')} stolen"
    )
    print(
        f"  submissions: {scheduler.get('active_submissions')} active / "
        f"{scheduler.get('total_submissions')} total"
    )
    print(
        f"  memo: {memo.get('entries')} entries, {memo.get('hits')} hits / "
        f"{memo.get('misses')} misses ({memo.get('path') or 'in-memory'})"
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Deterministic chaos gate: faulted runs must reproduce clean verdicts.

    Two phases, each against the same variant selection:

    * **engine** -- job-site faults (``kill-worker``, ``delay-job``,
      ``raise-transient``) on a process backend with a retry policy;
    * **service** -- wire/journal faults (``drop-connection``,
      ``torn-journal``) through an in-process daemon and a resuming
      client.

    A phase passes when its verdicts (and violated-goal sets) are
    bit-identical to the clean serial run -- and to ``--golden`` when
    given -- with zero quarantined variants.  Exit 0 on full parity,
    2 on any divergence.
    """
    import dataclasses
    import os
    import tempfile

    from repro.engine.campaign import run_campaign
    from repro.engine.registry import default_registry
    from repro.faults import (
        FAULT_PLAN_ENV,
        SITE_BY_KIND,
        compile_plan,
        reset_fault_state,
    )
    from repro.runtime import ProcessBackend, RetryPolicy

    registry = default_registry()
    select = {
        key: value
        for key, value in {
            "scenario": args.scenario,
            "family": args.family,
            "limit": args.limit,
        }.items()
        if value is not None
    }
    variants = registry.variants(**select)
    if not variants:
        print("ERROR: selection matched no variants", file=sys.stderr)
        return 1
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    unknown = [k for k in kinds if k not in SITE_BY_KIND]
    if unknown:
        print(
            f"ERROR: unknown fault kind(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(SITE_BY_KIND))})",
            file=sys.stderr,
        )
        return 1
    engine_kinds = tuple(k for k in kinds if SITE_BY_KIND[k] == "job-start")
    service_kinds = tuple(k for k in kinds if SITE_BY_KIND[k] != "job-start")

    golden = None
    if args.golden:
        golden = json.loads(Path(args.golden).read_text(encoding="utf-8"))

    def signature(outcomes):
        return [
            (o.variant_id, o.verdict, list(o.violated_goals))
            for o in outcomes
        ]

    print(
        f"chaos: {len(variants)} variant(s), seed {args.seed}, "
        f"kinds: {', '.join(kinds) or '(none)'}"
    )
    os.environ.pop(FAULT_PLAN_ENV, None)
    reset_fault_state()
    clean = run_campaign(variants, registry=registry, backend="serial")
    reference = signature(clean.outcomes)
    report: dict = {
        "variants": len(variants),
        "seed": args.seed,
        "kinds": list(kinds),
        "phases": [],
    }
    failures = 0
    if golden is not None:
        mismatched = [
            vid
            for vid, verdict, goals in reference
            if vid not in golden or golden[vid] != [verdict, goals]
        ]
        ok = not mismatched
        report["golden"] = {"path": str(args.golden), "parity": ok}
        print(f"  [{'ok' if ok else 'FAIL'}] clean run vs golden capture")
        if not ok:
            print(f"    diverged: {', '.join(mismatched[:5])}", file=sys.stderr)
            failures += 1

    retry = RetryPolicy(seed=args.seed)
    state_root = tempfile.mkdtemp(prefix="repro-chaos-")

    def run_phase(phase, plan, execute):
        os.environ[FAULT_PLAN_ENV] = plan.to_json()
        reset_fault_state()
        try:
            outcomes, extra = execute()
        finally:
            os.environ.pop(FAULT_PLAN_ENV, None)
            reset_fault_state()
        quarantined = sum(1 for o in outcomes if o.stats.get("quarantined"))
        parity = signature(outcomes) == reference
        entry = {
            "phase": phase,
            "parity": parity,
            "quarantined": quarantined,
            "errors": sum(1 for o in outcomes if o.is_error),
            "faults": [dataclasses.asdict(f) for f in plan.faults],
            **extra,
        }
        report["phases"].append(entry)
        ok = parity and quarantined == 0
        print(
            f"  [{'ok' if ok else 'FAIL'}] {phase} phase: parity={parity}, "
            f"quarantined={quarantined}, "
            f"faults={[(f.kind, f.at) for f in plan.faults]}"
        )
        return ok

    if engine_kinds:
        plan = compile_plan(
            args.seed,
            engine_kinds,
            total_jobs=len(variants),
            state_dir=os.path.join(state_root, "engine"),
        )

        def execute_engine():
            backend = ProcessBackend(jobs=args.jobs)
            try:
                result = run_campaign(
                    variants,
                    backend=backend,
                    on_error="record",
                    retry=retry,
                )
            finally:
                respawns = backend.respawns
                backend.shutdown()
            return result.outcomes, {"backend": "process", "respawns": respawns}

        if not run_phase("engine", plan, execute_engine):
            failures += 1

    if service_kinds:
        from repro.service import CampaignDaemon, ServiceClient

        plan = compile_plan(
            args.seed,
            service_kinds,
            total_jobs=len(variants),
            state_dir=os.path.join(state_root, "service"),
        )

        def execute_service():
            with CampaignDaemon(
                memo_dir=os.path.join(state_root, "memo"), shards=2
            ).start() as daemon:
                client = ServiceClient(daemon.port, retry=retry)
                outcomes, summary = client.submit(variants)
            return outcomes, {
                "backend": "service",
                "cached": summary.get("cached", 0),
            }

        if not run_phase("service", plan, execute_service):
            failures += 1

    report["parity"] = failures == 0
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        path = out / "CHAOS.json"
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {path}")
    if args.json:
        print(json.dumps(report, indent=2))
    if failures:
        print(
            f"CHAOS FAILED: {failures} phase(s)/gate(s) diverged",
            file=sys.stderr,
        )
        return 2
    print("chaos parity holds: every faulted run matched the clean verdicts")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Print the goal/attack/threat traceability matrix."""
    from repro.api import Workspace

    pipeline = Workspace().pipeline(args.usecase)
    print(pipeline.trace_matrix().to_markdown())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SaSeVAL safety/security validation tooling",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="use-case analysis summary")
    report.add_argument("usecase", choices=sorted(_USE_CASES))
    report.set_defaults(handler=cmd_report)

    attack = commands.add_parser("attack", help="render one attack")
    attack.add_argument("attack_id")
    attack.add_argument("--usecase", default="uc1", choices=sorted(_USE_CASES))
    attack.set_defaults(handler=cmd_attack)

    export = commands.add_parser("export", help="export attacks as DSL")
    export.add_argument("usecase", choices=sorted(_USE_CASES))
    export.add_argument("output")
    export.set_defaults(handler=cmd_export)

    validate = commands.add_parser("validate", help="validate a DSL file")
    validate.add_argument("file")
    validate.add_argument(
        "--usecase", default="uc1", choices=sorted(_USE_CASES)
    )
    validate.set_defaults(handler=cmd_validate)

    run = commands.add_parser("run", help="execute a bound attack")
    run.add_argument("attack_id")
    run.add_argument("--usecase", default="uc1", choices=sorted(_USE_CASES))
    run.set_defaults(handler=cmd_run)

    trace = commands.add_parser("trace", help="traceability matrix")
    trace.add_argument("usecase", choices=sorted(_USE_CASES))
    trace.set_defaults(handler=cmd_trace)

    campaign = commands.add_parser(
        "campaign",
        help="run the scenario registry's variant families",
    )
    campaign.add_argument(
        "--scenario",
        help="only this scenario (e.g. uc1-construction-site)",
    )
    campaign.add_argument(
        "--usecase", choices=("uc1", "uc2"), default=None,
        help="only scenarios of this use case",
    )
    campaign.add_argument(
        "--family",
        help="only this variant family (e.g. control-ablation, fleet)",
    )
    campaign.add_argument(
        "--attack",
        help="only variants of this attack (AD id or catalog key)",
    )
    campaign.add_argument(
        "--fleet", type=int, default=None, metavar="N",
        help="convoy size override for fleet-capable variants",
    )
    campaign.add_argument(
        "--rsu-range", type=float, default=None, metavar="METERS",
        help="RSU transmit-range override for topology-capable variants",
    )
    campaign.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="execution backend (default: serial, or process when "
        "--jobs > 1)",
    )
    campaign.add_argument(
        "--jobs", type=int, default=None,
        help="concurrent jobs on the chosen backend (default 1)",
    )
    campaign.add_argument(
        "--workers", type=int, default=None,
        help="legacy alias for --jobs with the process backend",
    )
    campaign.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="ship same-family variants as shared-setup batches of up "
        "to N (amortises topology/key/factory setup; verdicts are "
        "batching-independent)",
    )
    campaign.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of variants run",
    )
    campaign.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry transiently-failing variants up to N total attempts "
        "(deterministic seeded backoff; exhaustion quarantines the "
        "variant instead of failing the campaign)",
    )
    campaign.add_argument(
        "--deadline-s", type=float, default=None, metavar="SECONDS",
        help="per-variant wall-clock budget (a variant's own deadline_s "
        "takes precedence); a breach records a DeadlineExceededError "
        "outcome",
    )
    campaign.add_argument(
        "--list", action="store_true",
        help="enumerate matching variants without running them",
    )
    campaign.add_argument(
        "--list-families", action="store_true",
        help="enumerate the registered variant families and exit",
    )
    campaign.add_argument(
        "--verbose", action="store_true",
        help="per-variant outcome lines in the report",
    )
    campaign.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    campaign.add_argument(
        "--export", metavar="PATH",
        help="write outcome records to PATH (.json, .csv or .md)",
    )
    campaign.set_defaults(handler=cmd_campaign)

    bench = commands.add_parser(
        "bench",
        help="run the built-in bench suites (BENCH_<suite>.json records)",
    )
    bench.add_argument(
        "suites", nargs="*", metavar="SUITE",
        help="suites to run positionally (e.g. `repro bench backends`)",
    )
    bench.add_argument(
        "--suite", action="append", metavar="NAME",
        help="suite to run (repeatable; default: all; see --list)",
    )
    bench.add_argument(
        "--out", default=".",
        help="directory for BENCH_<suite>.json files (default: cwd)",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="print all records as one JSON document",
    )
    bench.add_argument(
        "--list", action="store_true", help="enumerate the known suites"
    )
    bench.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="re-run the baseline's suite(s) and exit non-zero when any "
        "throughput metric regresses past --threshold; BASELINE is a "
        "BENCH_<suite>.json file or a .jsonl history (latest entry)",
    )
    bench.add_argument(
        "--threshold", type=float, default=20.0, metavar="PCT",
        help="allowed throughput regression in percent (default 20)",
    )
    bench.add_argument(
        "--history", metavar="HISTORY.jsonl", default=None,
        help="append this run's records to an append-only JSONL history "
        "(the commit-over-commit perf trajectory)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="run each suite under cProfile and print its top-20 "
        "cumulative rows (no bench files are written: profiled "
        "wall-clock numbers are inflated)",
    )
    bench.set_defaults(handler=cmd_bench)

    serve = commands.add_parser(
        "serve",
        help="run the persistent campaign daemon (memoised, sharded)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (loopback only by design; default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick an ephemeral port; publish it "
        "with --port-file)",
    )
    serve.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound port here so clients can find the daemon",
    )
    serve.add_argument(
        "--memo-dir", metavar="DIR", default=None,
        help="journal directory for the content-addressed memo store "
        "(enables crash recovery; default: in-memory only)",
    )
    serve.add_argument(
        "--shards", type=int, default=2,
        help="scheduler work shards (default 2)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker threads (default: one per shard)",
    )
    serve.add_argument(
        "--deadline-s", type=float, default=None, metavar="SECONDS",
        help="per-variant wall-clock budget for scheduled work (a "
        "variant's own deadline_s takes precedence)",
    )
    serve.add_argument(
        "--failure-threshold", type=int, default=None, metavar="N",
        help="consecutive fresh failures before a scheduler shard is "
        "marked unhealthy and its queue redistributed (default 3)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="debug-level daemon logs"
    )
    serve.set_defaults(handler=cmd_serve)

    submit = commands.add_parser(
        "submit",
        help="submit a variant selection to a running daemon",
    )
    submit.add_argument(
        "--port", type=int, default=None, help="the daemon's TCP port"
    )
    submit.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="read the daemon's port from this file (see serve)",
    )
    submit.add_argument(
        "--host", default="127.0.0.1", help="the daemon's host"
    )
    submit.add_argument(
        "--scenario", help="only this scenario (e.g. uc1-construction-site)"
    )
    submit.add_argument(
        "--usecase", choices=("uc1", "uc2"), default=None,
        help="only scenarios of this use case",
    )
    submit.add_argument(
        "--family", help="only this variant family (e.g. coverage)"
    )
    submit.add_argument(
        "--attack", help="only variants of this attack"
    )
    submit.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of variants submitted",
    )
    submit.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    submit.set_defaults(handler=cmd_submit)

    status = commands.add_parser(
        "status",
        help="query a running daemon's scheduler + memo health",
    )
    status.add_argument(
        "--port", type=int, default=None, help="the daemon's TCP port"
    )
    status.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="read the daemon's port from this file (see serve)",
    )
    status.add_argument(
        "--host", default="127.0.0.1", help="the daemon's host"
    )
    status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    status.set_defaults(handler=cmd_status)

    lint = commands.add_parser(
        "lint",
        help="static verification plane: AST invariant rules + "
        "registry/DSL spec checks (LINT.json records)",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: the installed repro "
        "package)",
    )
    lint.add_argument(
        "--rules", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all; see "
        "--list-rules)",
    )
    lint.add_argument(
        "--no-spec", action="store_true",
        help="skip the registry/DSL spec checks (AST rules only)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="enumerate the codified invariant rules and exit",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="print the schema-stable lint document",
    )
    lint.add_argument(
        "--out", metavar="DIR", default=None,
        help="write LINT.json under DIR (the CI artifact)",
    )
    lint.add_argument(
        "--diff", metavar="BASELINE.json", default=None,
        help="report only findings absent from the baseline document "
        "(gate on new debt, like `repro bench --compare`)",
    )
    lint.set_defaults(handler=cmd_lint)

    chaos = commands.add_parser(
        "chaos",
        help="fault-injection parity gate (faulted runs must reproduce "
        "clean verdicts)",
    )
    chaos.add_argument(
        "--scenario", help="only this scenario (e.g. uc1-fleet-convoy)"
    )
    chaos.add_argument(
        "--family", default="coverage",
        help="variant family to run under faults (default: coverage)",
    )
    chaos.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of variants run",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan seed (same seed, same faults, same positions; "
        "default 0)",
    )
    chaos.add_argument(
        "--kinds", default="kill-worker,raise-transient,delay-job",
        help="comma-separated fault kinds to inject (job-site kinds run "
        "the engine phase, wire/journal kinds the service phase; "
        "default: kill-worker,raise-transient,delay-job)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=2,
        help="process-backend workers for the engine phase (default 2)",
    )
    chaos.add_argument(
        "--golden", metavar="GOLDEN.json", default=None,
        help="also gate the clean run against a golden-verdict capture "
        "(tests/data/golden_verdicts.json format)",
    )
    chaos.add_argument(
        "--out", metavar="DIR", default=None,
        help="write the CHAOS.json report under DIR (the CI artifact)",
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="print the machine-readable chaos report",
    )
    chaos.set_defaults(handler=cmd_chaos)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


__all__ = [
    "build_parser",
    "cmd_attack",
    "cmd_bench",
    "cmd_campaign",
    "cmd_chaos",
    "cmd_export",
    "cmd_lint",
    "cmd_report",
    "cmd_run",
    "cmd_serve",
    "cmd_status",
    "cmd_submit",
    "cmd_trace",
    "cmd_validate",
    "main",
]


if __name__ == "__main__":
    raise SystemExit(main())
