"""Command-line interface to the SaSeVAL reproduction.

Usage (also via ``python -m repro``)::

    repro report uc1              # HARA summary + goals + attack counts
    repro report uc2
    repro attack AD20 --usecase uc1   # render one attack (Table VI style)
    repro export uc2 attacks.dsl      # write all attacks as DSL
    repro validate attacks.dsl --usecase uc2   # parse + semantic check
    repro run AD08 --usecase uc2      # execute a bound attack, print verdict
    repro trace uc1                   # goal/attack/threat matrix (Markdown)
    repro campaign --workers 4        # run every registry variant in parallel
    repro campaign --family control-ablation --verbose
    repro campaign --list             # enumerate variants without running

The CLI is a thin shell over the library; every command returns a proper
exit code (0 ok, 1 user error, 2 validation/semantic failure) so it can
gate CI pipelines on completeness or verdicts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.reporting import (
    render_asil_distribution,
    render_attack_description,
)
from repro.dsl import analyze, format_attacks, parse
from repro.errors import ReproError
from repro.testing import TestHarness
from repro.threatlib.catalog import build_catalog
from repro.usecases import uc1, uc2

_USE_CASES = {"uc1": uc1, "uc2": uc2}


def _module_for(name: str):
    if name not in _USE_CASES:
        raise SystemExit(f"unknown use case {name!r} (choose uc1 or uc2)")
    return _USE_CASES[name]


def cmd_report(args: argparse.Namespace) -> int:
    """Print the use case's analysis summary."""
    module = _module_for(args.usecase)
    hara = module.build_hara()
    attacks = module.build_attacks()
    print(module.USE_CASE_NAME)
    print(f"  functions : {len(hara.functions)}")
    print(f"  ratings   : {len(hara.ratings)}")
    print(
        "  asil      : "
        + render_asil_distribution(hara.asil_distribution())
    )
    print(f"  goals     : {len(hara.safety_goals)}")
    for goal in hara.safety_goals:
        print(f"    - {goal}")
    safety = len(attacks.safety_attacks())
    privacy = len(attacks.privacy_attacks())
    print(f"  attacks   : {safety} safety + {privacy} privacy")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    """Render one attack description in the paper's table layout."""
    module = _module_for(args.usecase)
    attacks = module.build_attacks()
    if args.attack_id not in attacks:
        print(
            f"no attack {args.attack_id} in {module.USE_CASE_NAME}",
            file=sys.stderr,
        )
        return 1
    print(render_attack_description(attacks.get(args.attack_id)))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Write a use case's attack descriptions as a DSL document."""
    module = _module_for(args.usecase)
    document = format_attacks(list(module.build_attacks()))
    Path(args.output).write_text(document, encoding="utf-8")
    print(f"wrote {len(document.splitlines())} lines to {args.output}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Parse + semantically validate a DSL document."""
    module = _module_for(args.usecase)
    source = Path(args.file).read_text(encoding="utf-8")
    try:
        attacks = analyze(
            parse(source),
            build_catalog(),
            list(module.build_hara().safety_goals),
        )
    except ReproError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 2
    print(f"OK: {len(attacks)} attack description(s) validated")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Execute one bound attack against the simulator."""
    module = _module_for(args.usecase)
    attacks = module.build_attacks()
    if args.attack_id not in attacks:
        print(f"no attack {args.attack_id}", file=sys.stderr)
        return 1
    registry = module.build_bindings()
    attack = attacks.get(args.attack_id)
    if not registry.can_compile(attack):
        print(
            f"{args.attack_id} has no executable binding (concept-level "
            "only; see Step 4 of the process)",
            file=sys.stderr,
        )
        return 1
    execution = TestHarness().execute(registry.compile(attack))
    print(execution.summary())
    print(f"  {execution.notes}")
    return 0 if execution.sut_passed else 2


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run (or list) the scenario registry's variant families."""
    # Imported here so the light report/export commands keep their fast
    # startup; the engine pulls in the whole simulator stack.
    from repro.engine.campaign import CampaignRunner

    runner = CampaignRunner(workers=args.workers)
    try:
        variants = runner.select(
            scenario=args.scenario,
            family=args.family,
            attack=args.attack,
            limit=args.limit,
        )
    except ReproError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if not variants:
        print("no variants match the given filters", file=sys.stderr)
        return 1
    if args.list:
        if args.json:
            print(json.dumps(
                [
                    {
                        "variant_id": variant.variant_id,
                        "scenario": variant.scenario,
                        "family": variant.family,
                        "attack": variant.attack,
                        "description": variant.description,
                    }
                    for variant in variants
                ],
                indent=2,
            ))
            return 0
        for variant in variants:
            attack = variant.attack or "-"
            print(f"{variant.variant_id:50s} {attack:10s} {variant.description}")
        print(f"{len(variants)} variant(s)")
        return 0
    try:
        result = runner.run(variants)
    except ReproError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(
            {
                "summary": result.summary(),
                "outcomes": [
                    {
                        "variant_id": outcome.variant_id,
                        "family": outcome.family,
                        "attack": outcome.attack,
                        "verdict": outcome.verdict,
                        "violated_goals": list(outcome.violated_goals),
                        "wall_time_s": round(outcome.wall_time_s, 4),
                    }
                    for outcome in result.outcomes
                ],
            },
            indent=2,
        ))
    else:
        print(result.to_text(verbose=args.verbose))
    inconclusive = result.counts().get("INCONCLUSIVE", 0)
    return 2 if inconclusive else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Print the goal/attack/threat traceability matrix."""
    module = _module_for(args.usecase)
    pipeline = module.build_pipeline()
    print(pipeline.trace_matrix().to_markdown())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SaSeVAL safety/security validation tooling",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="use-case analysis summary")
    report.add_argument("usecase", choices=sorted(_USE_CASES))
    report.set_defaults(handler=cmd_report)

    attack = commands.add_parser("attack", help="render one attack")
    attack.add_argument("attack_id")
    attack.add_argument("--usecase", default="uc1", choices=sorted(_USE_CASES))
    attack.set_defaults(handler=cmd_attack)

    export = commands.add_parser("export", help="export attacks as DSL")
    export.add_argument("usecase", choices=sorted(_USE_CASES))
    export.add_argument("output")
    export.set_defaults(handler=cmd_export)

    validate = commands.add_parser("validate", help="validate a DSL file")
    validate.add_argument("file")
    validate.add_argument(
        "--usecase", default="uc1", choices=sorted(_USE_CASES)
    )
    validate.set_defaults(handler=cmd_validate)

    run = commands.add_parser("run", help="execute a bound attack")
    run.add_argument("attack_id")
    run.add_argument("--usecase", default="uc1", choices=sorted(_USE_CASES))
    run.set_defaults(handler=cmd_run)

    trace = commands.add_parser("trace", help="traceability matrix")
    trace.add_argument("usecase", choices=sorted(_USE_CASES))
    trace.set_defaults(handler=cmd_trace)

    campaign = commands.add_parser(
        "campaign",
        help="run the scenario registry's variant families",
    )
    campaign.add_argument(
        "--scenario",
        help="only this scenario (e.g. uc1-construction-site)",
    )
    campaign.add_argument(
        "--family",
        help="only this variant family (e.g. control-ablation, parity)",
    )
    campaign.add_argument(
        "--attack",
        help="only variants of this attack (AD id or catalog key)",
    )
    campaign.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1 = serial)",
    )
    campaign.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of variants run",
    )
    campaign.add_argument(
        "--list", action="store_true",
        help="enumerate matching variants without running them",
    )
    campaign.add_argument(
        "--verbose", action="store_true",
        help="per-variant outcome lines in the report",
    )
    campaign.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    campaign.set_defaults(handler=cmd_campaign)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
