"""SaSeVAL core: the paper's primary contribution (§III).

* :mod:`repro.core.pipeline` -- the four-step process of Fig. 1,
* :mod:`repro.core.derivation` -- Step 3 attack-description derivation,
* :mod:`repro.core.completeness` -- the RQ1 deductive/inductive audits,
* :mod:`repro.core.prioritization` -- the RQ2 test-space reduction,
* :mod:`repro.core.traceability` -- goal/attack/threat trace matrix,
* :mod:`repro.core.reporting` -- review-ready rendering.
"""

from repro.core.completeness import (
    CompletenessAuditor,
    CompletenessReport,
    GoalCoverage,
    Justification,
    ThreatCoverage,
)
from repro.core.derivation import AttackDeriver, AttackDescriptionSet
from repro.core.pipeline import (
    INPUT_SAFETY_ANALYSIS,
    INPUT_SCENARIO_DESCRIPTION,
    INPUT_SECURITY_ANALYSIS,
    INPUT_SUT_IMPLEMENTATION,
    SaSeValPipeline,
    Step,
    stage_graph,
)
from repro.core.prioritization import (
    ASIL_WEIGHTS,
    PrioritizedAttack,
    Prioritizer,
    TestPlan,
    attack_asil,
)
from repro.core.reporting import (
    render_asil_distribution,
    render_attack_description,
    render_completeness,
    render_hara_rating,
    render_hara_summary,
)
from repro.core.traceability import GoalTrace, ThreatTrace, TraceMatrix

__all__ = [
    "ASIL_WEIGHTS",
    "AttackDeriver",
    "AttackDescriptionSet",
    "CompletenessAuditor",
    "CompletenessReport",
    "GoalCoverage",
    "GoalTrace",
    "INPUT_SAFETY_ANALYSIS",
    "INPUT_SCENARIO_DESCRIPTION",
    "INPUT_SECURITY_ANALYSIS",
    "INPUT_SUT_IMPLEMENTATION",
    "Justification",
    "PrioritizedAttack",
    "Prioritizer",
    "SaSeValPipeline",
    "Step",
    "TestPlan",
    "ThreatCoverage",
    "ThreatTrace",
    "TraceMatrix",
    "attack_asil",
    "render_asil_distribution",
    "render_attack_description",
    "render_completeness",
    "render_hara_rating",
    "render_hara_summary",
    "stage_graph",
]
