"""Traceability matrix: safety goals <-> attacks <-> threats.

"[SaSeVAL] traces safety goals to threats and to attacks explicitly.
Hence, the coverage of safety concerns by security testing is assured."
(abstract)

The :class:`TraceMatrix` materialises those links from an attack set and
answers both directions:

* forward -- from a safety goal to the attacks targeting it and the
  threats those attacks exploit,
* backward -- from a threat to the attacks using it and the goals they
  endanger.

It also renders the matrix as Markdown for review documents.
"""

from __future__ import annotations

import dataclasses

from repro.core.derivation import AttackDescriptionSet
from repro.errors import ValidationError
from repro.model.safety import SafetyGoal
from repro.threatlib.library import ThreatLibrary


@dataclasses.dataclass(frozen=True)
class GoalTrace:
    """Forward trace for one safety goal."""

    goal_id: str
    attack_ids: tuple[str, ...]
    threat_ids: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class ThreatTrace:
    """Backward trace for one threat scenario."""

    threat_id: str
    attack_ids: tuple[str, ...]
    goal_ids: tuple[str, ...]


class TraceMatrix:
    """Bidirectional goal/attack/threat traceability."""

    def __init__(
        self,
        goals: list[SafetyGoal],
        attacks: AttackDescriptionSet,
        library: ThreatLibrary | None = None,
    ) -> None:
        """Build the matrix; when ``library`` is given, threat references
        are validated against it (broken traces raise eagerly).
        """
        self._goals = {goal.identifier: goal for goal in goals}
        self._attacks = attacks
        if library is not None:
            for attack in attacks:
                library.threat(attack.threat_link.threat_scenario_id)
        for attack in attacks:
            for goal_id in attack.safety_goal_ids:
                if goal_id not in self._goals:
                    raise ValidationError(
                        f"attack {attack.identifier} references unknown "
                        f"safety goal {goal_id}"
                    )

    def trace_goal(self, goal_id: str) -> GoalTrace:
        """Attacks targeting a goal, and the threats they exploit."""
        if goal_id not in self._goals:
            raise ValidationError(f"unknown safety goal {goal_id}")
        attacks = self._attacks.by_goal(goal_id)
        threat_ids = tuple(
            dict.fromkeys(
                attack.threat_link.threat_scenario_id for attack in attacks
            )
        )
        return GoalTrace(
            goal_id=goal_id,
            attack_ids=tuple(attack.identifier for attack in attacks),
            threat_ids=threat_ids,
        )

    def trace_threat(self, threat_id: str) -> ThreatTrace:
        """Attacks exploiting a threat, and the goals they endanger."""
        attacks = self._attacks.by_threat(threat_id)
        goal_ids = tuple(
            dict.fromkeys(
                goal_id
                for attack in attacks
                for goal_id in attack.safety_goal_ids
            )
        )
        return ThreatTrace(
            threat_id=threat_id,
            attack_ids=tuple(attack.identifier for attack in attacks),
            goal_ids=goal_ids,
        )

    def goal_traces(self) -> tuple[GoalTrace, ...]:
        """Forward traces for every goal, in goal order."""
        return tuple(self.trace_goal(goal_id) for goal_id in self._goals)

    def to_markdown(self) -> str:
        """Render the goal x attack matrix as a Markdown table.

        Cells carry ``x`` where the attack targets the goal; the last
        column lists the threats reached from the goal.
        """
        attack_ids = self._attacks.identifiers
        header = (
            "| Safety goal | "
            + " | ".join(attack_ids)
            + " | Threats |"
        )
        separator = "|" + "---|" * (len(attack_ids) + 2)
        lines = [header, separator]
        for goal_id, goal in self._goals.items():
            trace = self.trace_goal(goal_id)
            cells = [
                "x" if attack_id in trace.attack_ids else ""
                for attack_id in attack_ids
            ]
            threats = ", ".join(trace.threat_ids) or "-"
            lines.append(
                f"| {goal_id} ({goal.asil.value}) | "
                + " | ".join(cells)
                + f" | {threats} |"
            )
        return "\n".join(lines)


__all__ = [
    "GoalTrace",
    "ThreatTrace",
    "TraceMatrix",
]
