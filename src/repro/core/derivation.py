"""Attack-description derivation (paper §III-C, Step 3).

The derivation step combines the two analysis strands:

* from **Step 2** the safety goals / concerns -- *what must not happen*,
* from **Step 1** the threat library -- *what an attacker can do*,

and produces validated :class:`~repro.model.attack.AttackDescription`
objects.  "For each combination of safety goal and attack type the
potential attacks and the safety and/or security measures to be active are
identified."

:class:`AttackDeriver` enforces the traces the paper's completeness
argument rests on:

* every referenced safety goal must exist in the Step 2 results,
* the linked threat scenario must exist in the threat library,
* the attack type must be a Table IV manifestation of one of the threat
  scenario's STRIDE types (Step 1.3 -> 1.4 chain).

:class:`AttackDescriptionSet` is the resulting container, queryable by
goal, threat and category -- the inputs to the RQ1 audits.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ValidationError
from repro.model.attack import (
    AttackCategory,
    AttackDescription,
    ThreatLink,
)
from repro.model.identifiers import next_id
from repro.model.safety import SafetyGoal
from repro.model.threat import StrideType
from repro.stride.mapping import resolve_attack_type, stride_types_for
from repro.threatlib.library import ThreatLibrary


@dataclasses.dataclass
class AttackDescriptionSet:
    """An ordered, id-unique collection of attack descriptions."""

    name: str = "attack descriptions"
    _attacks: dict[str, AttackDescription] = dataclasses.field(
        default_factory=dict
    )

    def add(self, attack: AttackDescription) -> AttackDescription:
        """Add an attack description.

        Raises:
            ValidationError: on duplicate identifiers.
        """
        if attack.identifier in self._attacks:
            raise ValidationError(
                f"{self.name}: attack {attack.identifier} already present"
            )
        self._attacks[attack.identifier] = attack
        return attack

    def get(self, identifier: str) -> AttackDescription:
        """Look up an attack description by id."""
        if identifier not in self._attacks:
            raise ValidationError(
                f"{self.name}: no attack description {identifier}"
            )
        return self._attacks[identifier]

    def __len__(self) -> int:
        return len(self._attacks)

    def __iter__(self):
        return iter(self._attacks.values())

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._attacks

    @property
    def attacks(self) -> tuple[AttackDescription, ...]:
        """All attack descriptions in derivation order."""
        return tuple(self._attacks.values())

    @property
    def identifiers(self) -> tuple[str, ...]:
        """All attack ids in derivation order."""
        return tuple(self._attacks)

    def by_goal(self, safety_goal_id: str) -> tuple[AttackDescription, ...]:
        """Attacks targeting one safety goal."""
        return tuple(
            attack
            for attack in self._attacks.values()
            if attack.targets_goal(safety_goal_id)
        )

    def by_threat(self, threat_id: str) -> tuple[AttackDescription, ...]:
        """Attacks linked to one threat scenario."""
        return tuple(
            attack
            for attack in self._attacks.values()
            if attack.threat_link.threat_scenario_id == threat_id
        )

    def by_category(
        self, category: AttackCategory
    ) -> tuple[AttackDescription, ...]:
        """Attacks of one impact category (safety vs privacy)."""
        return tuple(
            attack
            for attack in self._attacks.values()
            if attack.category is category
        )

    def safety_attacks(self) -> tuple[AttackDescription, ...]:
        """The safety-impacting attacks (§IV counts these separately)."""
        return self.by_category(AttackCategory.SAFETY)

    def privacy_attacks(self) -> tuple[AttackDescription, ...]:
        """The privacy-impacting attacks."""
        return self.by_category(AttackCategory.PRIVACY)


@dataclasses.dataclass
class AttackDeriver:
    """Derives attack descriptions against a library and a goal set.

    Attributes:
        library: The Step 1 threat library.
        goals: The Step 2 safety goals, keyed by identifier.
        results: The accumulating attack-description set.
    """

    library: ThreatLibrary
    goals: dict[str, SafetyGoal]
    results: AttackDescriptionSet

    @classmethod
    def create(
        cls,
        library: ThreatLibrary,
        goals: list[SafetyGoal],
        name: str = "attack descriptions",
    ) -> "AttackDeriver":
        """Build a deriver from a library and the Step 2 goal list."""
        goal_map: dict[str, SafetyGoal] = {}
        for goal in goals:
            if goal.identifier in goal_map:
                raise ValidationError(
                    f"duplicate safety goal {goal.identifier} in Step 2 input"
                )
            goal_map[goal.identifier] = goal
        return cls(
            library=library,
            goals=goal_map,
            results=AttackDescriptionSet(name=name),
        )

    def derive(
        self,
        description: str,
        safety_goal_ids: tuple[str, ...],
        threat_id: str,
        attack_type_name: str,
        interface: str,
        precondition: str,
        expected_measures: str,
        attack_success: str,
        attack_fails: str,
        implementation_comments: str = "",
        category: AttackCategory = AttackCategory.SAFETY,
        stride: StrideType | None = None,
        identifier: str | None = None,
    ) -> AttackDescription:
        """Derive one validated attack description.

        Args:
            description: Attack story ("Attacker tries to overload the ECU
                by packet flooding.").
            safety_goal_ids: Goals whose violation is targeted.
            threat_id: Threat-library scenario to link ("2.1.4").
            attack_type_name: A Table IV attack-type name ("Disable").
            interface: Interface / ECU under attack ("OBU RSU").
            precondition: Situation in which the attack starts.
            expected_measures: Controls/fallbacks assumed present.
            attack_success: Success criteria (how the goal gets violated).
            attack_fails: Detection criteria of a failed attack.
            implementation_comments: Notes for Step 4.
            category: SAFETY (default) or PRIVACY.
            stride: Optional STRIDE disambiguation for ambiguous attack
                types ("Illegal acquisition" appears under two types).
            identifier: Explicit ``ADnn``; auto-assigned when omitted.

        Raises:
            ValidationError: on any broken trace (unknown goal/threat,
                attack type not manifesting the threat's STRIDE types).
        """
        for goal_id in safety_goal_ids:
            if goal_id not in self.goals:
                raise ValidationError(
                    f"attack references unknown safety goal {goal_id} "
                    "(not part of the Step 2 results)"
                )
        threat = self.library.threat(threat_id)
        if stride is None:
            # Prefer a STRIDE type the threat actually maps to.
            candidates = [
                candidate
                for candidate in stride_types_for(attack_type_name)
                if threat.describes(candidate)
            ]
            if not candidates:
                raise ValidationError(
                    f"attack type {attack_type_name!r} manifests none of "
                    f"threat {threat_id}'s STRIDE types "
                    f"({', '.join(s.value for s in threat.stride)})"
                )
            stride = candidates[0]
        attack_type = resolve_attack_type(attack_type_name, stride)
        if not threat.describes(attack_type.stride):
            raise ValidationError(
                f"threat {threat_id} is not a {attack_type.stride.value} "
                f"threat; cannot apply attack type {attack_type.name!r}"
            )
        attack = AttackDescription(
            identifier=identifier
            or next_id(set(self.results.identifiers), "AD"),
            description=description,
            safety_goal_ids=safety_goal_ids,
            interface=interface,
            threat_link=ThreatLink(
                threat_scenario_id=threat_id, text=threat.text
            ),
            stride=attack_type.stride,
            attack_type=attack_type,
            precondition=precondition,
            expected_measures=expected_measures,
            attack_success=attack_success,
            attack_fails=attack_fails,
            implementation_comments=implementation_comments,
            category=category,
        )
        return self.results.add(attack)

    def applicable_attack_types(
        self, threat_id: str
    ) -> tuple[str, ...]:
        """The Table IV attack-type names applicable to a threat.

        A convenience for analysts working through "each combination of
        safety goal and attack type".
        """
        return tuple(
            attack_type.name
            for attack_type in self.library.attack_types_for_threat(threat_id)
        )


__all__ = [
    "AttackDeriver",
    "AttackDescriptionSet",
]
