"""The four-step SaSeVAL pipeline (paper Fig. 1).

The pipeline object sequences the process steps and enforces their data
dependencies:

* inputs: *Security analysis results* (e.g. TARA), *Scenario Description*,
  *Safety analysis results* (e.g. HARA), *SUT implementation* (for Step 4),
* **(1) Threat Library Creation** -> threat library,
* **(2) Safety Concern Identification** -> safety goals / concerns,
* **(3) Attack Description** -> attack descriptions (consuming 1 + 2),
* **(4) Implement Attack** -> executable test cases (consuming 3 + SUT).

Steps must complete in order (3 needs 1 and 2; 4 needs 3); the pipeline
tracks completion and hands each step the artifacts it needs.  The stage
graph of Fig. 1 is exposed as a :mod:`networkx` digraph for the figure
bench.
"""

from __future__ import annotations

import dataclasses
import enum

import networkx

from repro.core.completeness import CompletenessAuditor, CompletenessReport
from repro.core.derivation import AttackDeriver, AttackDescriptionSet
from repro.core.traceability import TraceMatrix
from repro.errors import ValidationError
from repro.hara.analysis import Hara
from repro.model.safety import SafetyGoal
from repro.threatlib.library import ThreatLibrary


class Step(enum.Enum):
    """The four process steps of Fig. 1."""

    THREAT_LIBRARY_CREATION = "(1) Threat Library Creation"
    SAFETY_CONCERN_IDENTIFICATION = "(2) Safety Concern Identification"
    ATTACK_DESCRIPTION = "(3) Attack Description"
    IMPLEMENT_ATTACK = "(4) Implement Attack"


#: Fig. 1 inputs (legend: "Input") feeding the process steps.
INPUT_SECURITY_ANALYSIS = "Security analysis results (e.g. TARA)"
INPUT_SCENARIO_DESCRIPTION = "Scenario Description"
INPUT_SAFETY_ANALYSIS = "Safety analysis results (e.g. HARA)"
INPUT_SUT_IMPLEMENTATION = "SUT Implementation"


def stage_graph() -> "networkx.DiGraph":
    """The Fig. 1 data-flow graph: inputs and steps as nodes.

    Node attribute ``kind`` is ``"input"`` or ``"step"``; edges follow the
    arrows of the figure.
    """
    graph = networkx.DiGraph()
    for name in (
        INPUT_SECURITY_ANALYSIS,
        INPUT_SCENARIO_DESCRIPTION,
        INPUT_SAFETY_ANALYSIS,
        INPUT_SUT_IMPLEMENTATION,
    ):
        graph.add_node(name, kind="input")
    for step in Step:
        graph.add_node(step.value, kind="step")
    graph.add_edge(INPUT_SECURITY_ANALYSIS, Step.THREAT_LIBRARY_CREATION.value)
    graph.add_edge(
        INPUT_SCENARIO_DESCRIPTION, Step.THREAT_LIBRARY_CREATION.value
    )
    graph.add_edge(
        INPUT_SAFETY_ANALYSIS, Step.SAFETY_CONCERN_IDENTIFICATION.value
    )
    graph.add_edge(
        Step.THREAT_LIBRARY_CREATION.value, Step.ATTACK_DESCRIPTION.value
    )
    graph.add_edge(
        Step.SAFETY_CONCERN_IDENTIFICATION.value,
        Step.ATTACK_DESCRIPTION.value,
    )
    graph.add_edge(Step.ATTACK_DESCRIPTION.value, Step.IMPLEMENT_ATTACK.value)
    graph.add_edge(INPUT_SUT_IMPLEMENTATION, Step.IMPLEMENT_ATTACK.value)
    return graph


@dataclasses.dataclass
class SaSeValPipeline:
    """Stateful orchestration of the four SaSeVAL steps.

    Typical use::

        pipeline = SaSeValPipeline(name="Use Case I")
        pipeline.provide_threat_library(library)       # Step 1
        pipeline.provide_safety_analysis(hara)         # Step 2
        deriver = pipeline.begin_attack_description()  # Step 3
        deriver.derive(...)
        report = pipeline.finish_attack_description()
    """

    name: str
    _library: ThreatLibrary | None = None
    _hara: Hara | None = None
    _goals: tuple[SafetyGoal, ...] = ()
    _deriver: AttackDeriver | None = None
    _auditor: CompletenessAuditor | None = None
    _completed: set[Step] = dataclasses.field(default_factory=set)

    # -- Step 1 ----------------------------------------------------------

    def provide_threat_library(self, library: ThreatLibrary) -> None:
        """Complete Step 1 by supplying the (built) threat library."""
        if not library.threats:
            raise ValidationError(
                f"pipeline {self.name!r}: threat library is empty"
            )
        self._library = library
        self._completed.add(Step.THREAT_LIBRARY_CREATION)

    # -- Step 2 ----------------------------------------------------------

    def provide_safety_analysis(self, hara: Hara) -> None:
        """Complete Step 2 by supplying the HARA with derived goals."""
        if not hara.safety_goals:
            raise ValidationError(
                f"pipeline {self.name!r}: HARA has no safety goals; derive "
                "them before Step 2 completes"
            )
        self._hara = hara
        self._goals = hara.safety_goals
        self._completed.add(Step.SAFETY_CONCERN_IDENTIFICATION)

    # -- Step 3 ----------------------------------------------------------

    def begin_attack_description(self) -> AttackDeriver:
        """Open Step 3; returns the deriver bound to Steps 1 + 2 output.

        Raises:
            ValidationError: when Step 1 or Step 2 is not complete.
        """
        self._require(Step.THREAT_LIBRARY_CREATION)
        self._require(Step.SAFETY_CONCERN_IDENTIFICATION)
        assert self._library is not None
        self._deriver = AttackDeriver.create(
            self._library, list(self._goals), name=f"{self.name} attacks"
        )
        self._auditor = CompletenessAuditor(
            library=self._library,
            goals=self._goals,
            attacks=self._deriver.results,
        )
        return self._deriver

    def justify(self, threat_id: str, reason: str, author: str = "") -> None:
        """Record an inductive-audit justification during Step 3."""
        if self._auditor is None:
            raise ValidationError(
                f"pipeline {self.name!r}: begin Step 3 before justifying"
            )
        self._auditor.justify(threat_id, reason, author=author)

    def finish_attack_description(
        self, require_complete: bool = True
    ) -> CompletenessReport:
        """Close Step 3, running the RQ1 audits.

        With ``require_complete`` (the default) an incomplete derivation
        raises :class:`~repro.errors.CoverageError`; otherwise the report
        is returned for inspection and the step still completes only if
        the audit passed.
        """
        if self._deriver is None or self._auditor is None:
            raise ValidationError(
                f"pipeline {self.name!r}: Step 3 was never begun"
            )
        if require_complete:
            report = self._auditor.assert_complete()
        else:
            report = self._auditor.audit()
        if report.complete:
            self._completed.add(Step.ATTACK_DESCRIPTION)
        return report

    # -- Step 4 ----------------------------------------------------------

    def mark_attacks_implemented(self) -> None:
        """Complete Step 4 (test cases exist; see :mod:`repro.dsl`).

        The pipeline itself does not compile tests -- that is the DSL
        compiler's job -- but it tracks that the step happened so process
        state can be reported.
        """
        self._require(Step.ATTACK_DESCRIPTION)
        self._completed.add(Step.IMPLEMENT_ATTACK)

    # -- accessors ---------------------------------------------------------

    @property
    def library(self) -> ThreatLibrary:
        """The Step 1 threat library."""
        if self._library is None:
            raise ValidationError(f"pipeline {self.name!r}: no threat library")
        return self._library

    @property
    def hara(self) -> Hara:
        """The Step 2 safety analysis."""
        if self._hara is None:
            raise ValidationError(f"pipeline {self.name!r}: no HARA")
        return self._hara

    @property
    def goals(self) -> tuple[SafetyGoal, ...]:
        """The Step 2 safety goals."""
        return self._goals

    @property
    def attacks(self) -> AttackDescriptionSet:
        """The Step 3 attack descriptions derived so far."""
        if self._deriver is None:
            raise ValidationError(
                f"pipeline {self.name!r}: Step 3 was never begun"
            )
        return self._deriver.results

    def trace_matrix(self) -> TraceMatrix:
        """The goal/attack/threat traceability matrix."""
        return TraceMatrix(
            goals=list(self._goals),
            attacks=self.attacks,
            library=self._library,
        )

    def completed_steps(self) -> tuple[Step, ...]:
        """Steps completed so far, in process order."""
        return tuple(step for step in Step if step in self._completed)

    def is_complete(self) -> bool:
        """True when all four steps are done."""
        return len(self._completed) == len(tuple(Step))

    def _require(self, step: Step) -> None:
        if step not in self._completed:
            raise ValidationError(
                f"pipeline {self.name!r}: step {step.value!r} must complete "
                "first"
            )


__all__ = [
    "INPUT_SAFETY_ANALYSIS",
    "INPUT_SCENARIO_DESCRIPTION",
    "INPUT_SECURITY_ANALYSIS",
    "INPUT_SUT_IMPLEMENTATION",
    "SaSeValPipeline",
    "Step",
    "stage_graph",
]
