"""Completeness audits -- the answer to RQ1.

SaSeVAL argues completeness from two directions (paper §III):

* **Deductive**: the derivation starts from safety goals, so "the system
  is tested against critical unwanted effects" -- the audit checks that
  every safety goal is targeted by at least one attack description.
* **Inductive**: "check whether all threats in the threat library are
  covered by the attack description.  If an attack is not covered, the
  test engineer should consider either creating an additional attack
  description or writing a justification on why the threat is not applied
  for the given SUT."

:class:`CompletenessAuditor` implements both, including the justification
registry the inductive argument needs.  ``assert_complete`` raises
:class:`~repro.errors.CoverageError` so CI can gate on completeness.
"""

from __future__ import annotations

import dataclasses

from repro.core.derivation import AttackDescriptionSet
from repro.errors import CoverageError, ValidationError
from repro.model.safety import SafetyGoal
from repro.threatlib.library import ThreatLibrary


@dataclasses.dataclass(frozen=True)
class Justification:
    """A recorded reason why a threat is not attacked for this SUT."""

    threat_id: str
    reason: str
    author: str = ""

    def __post_init__(self) -> None:
        if not self.reason:
            raise ValidationError(
                f"justification for threat {self.threat_id} needs a reason"
            )


@dataclasses.dataclass(frozen=True)
class GoalCoverage:
    """Deductive audit result for one safety goal."""

    goal: SafetyGoal
    attack_ids: tuple[str, ...]

    @property
    def covered(self) -> bool:
        """True when at least one attack targets the goal."""
        return bool(self.attack_ids)


@dataclasses.dataclass(frozen=True)
class ThreatCoverage:
    """Inductive audit result for one threat scenario."""

    threat_id: str
    threat_text: str
    attack_ids: tuple[str, ...]
    justification: Justification | None

    @property
    def covered(self) -> bool:
        """True when attacked or justified away."""
        return bool(self.attack_ids) or self.justification is not None


@dataclasses.dataclass(frozen=True)
class CompletenessReport:
    """Combined deductive + inductive audit result."""

    goal_coverage: tuple[GoalCoverage, ...]
    threat_coverage: tuple[ThreatCoverage, ...]

    @property
    def uncovered_goals(self) -> tuple[GoalCoverage, ...]:
        """Safety goals no attack description targets."""
        return tuple(
            entry for entry in self.goal_coverage if not entry.covered
        )

    @property
    def uncovered_threats(self) -> tuple[ThreatCoverage, ...]:
        """Threats neither attacked nor justified."""
        return tuple(
            entry for entry in self.threat_coverage if not entry.covered
        )

    @property
    def deductively_complete(self) -> bool:
        """Every safety goal has at least one attack (RQ1, deductive)."""
        return not self.uncovered_goals

    @property
    def inductively_complete(self) -> bool:
        """Every threat is attacked or justified (RQ1, inductive)."""
        return not self.uncovered_threats

    @property
    def complete(self) -> bool:
        """Both audit directions pass."""
        return self.deductively_complete and self.inductively_complete

    def summary(self) -> dict[str, int]:
        """Counts for reports and benchmarks."""
        justified = sum(
            1
            for entry in self.threat_coverage
            if entry.justification is not None and not entry.attack_ids
        )
        return {
            "goals": len(self.goal_coverage),
            "goals_covered": sum(
                1 for entry in self.goal_coverage if entry.covered
            ),
            "threats": len(self.threat_coverage),
            "threats_attacked": sum(
                1 for entry in self.threat_coverage if entry.attack_ids
            ),
            "threats_justified": justified,
            "threats_uncovered": len(self.uncovered_threats),
        }


@dataclasses.dataclass
class CompletenessAuditor:
    """Runs the RQ1 audits over a library, goal set and attack set."""

    library: ThreatLibrary
    goals: tuple[SafetyGoal, ...]
    attacks: AttackDescriptionSet
    _justifications: dict[str, Justification] = dataclasses.field(
        default_factory=dict
    )

    def justify(
        self, threat_id: str, reason: str, author: str = ""
    ) -> Justification:
        """Record why a threat is not applied for this SUT.

        The threat must exist in the library; justifying an already
        attacked threat is allowed (it documents scope decisions) but a
        second justification for the same threat is an error.
        """
        self.library.threat(threat_id)
        if threat_id in self._justifications:
            raise ValidationError(
                f"threat {threat_id} already has a justification"
            )
        justification = Justification(
            threat_id=threat_id, reason=reason, author=author
        )
        self._justifications[threat_id] = justification
        return justification

    @property
    def justifications(self) -> tuple[Justification, ...]:
        """All recorded justifications."""
        return tuple(self._justifications.values())

    def audit(self) -> CompletenessReport:
        """Run both audits and return the combined report."""
        goal_entries = tuple(
            GoalCoverage(
                goal=goal,
                attack_ids=tuple(
                    attack.identifier
                    for attack in self.attacks.by_goal(goal.identifier)
                ),
            )
            for goal in self.goals
        )
        threat_entries = tuple(
            ThreatCoverage(
                threat_id=threat.identifier,
                threat_text=threat.text,
                attack_ids=tuple(
                    attack.identifier
                    for attack in self.attacks.by_threat(threat.identifier)
                ),
                justification=self._justifications.get(threat.identifier),
            )
            for threat in self.library.threats
        )
        return CompletenessReport(
            goal_coverage=goal_entries, threat_coverage=threat_entries
        )

    def assert_complete(self) -> CompletenessReport:
        """Audit and raise :class:`CoverageError` unless complete.

        The error message lists every uncovered goal and threat, so a CI
        failure is immediately actionable.
        """
        report = self.audit()
        if report.complete:
            return report
        lines: list[str] = []
        for entry in report.uncovered_goals:
            lines.append(
                f"safety goal {entry.goal.identifier} "
                f"({entry.goal.name!r}) has no attack description"
            )
        for entry in report.uncovered_threats:
            lines.append(
                f"threat {entry.threat_id} ({entry.threat_text!r}) is "
                "neither attacked nor justified"
            )
        raise CoverageError(
            "completeness audit failed:\n  " + "\n  ".join(lines)
        )


__all__ = [
    "CompletenessAuditor",
    "CompletenessReport",
    "GoalCoverage",
    "Justification",
    "ThreatCoverage",
]
