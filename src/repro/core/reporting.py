"""Rendering of SaSeVAL artifacts as review-ready text.

Attack descriptions are communication artifacts between security testers,
safety engineers and implementers; the paper presents them as two-column
tables (Tables VI and VII).  This module renders:

* an attack description in the paper's table layout
  (:func:`render_attack_description`),
* a HARA as the excerpt format of §III-B (:func:`render_hara_rating`),
* ASIL distributions as the count lines §IV reports
  (:func:`render_asil_distribution`),
* completeness reports (:func:`render_completeness`).

All output is deterministic plain text / Markdown.
"""

from __future__ import annotations

from repro.core.completeness import CompletenessReport
from repro.hara.analysis import Hara
from repro.model.attack import AttackDescription
from repro.model.ratings import Asil
from repro.model.safety import HazardRating


def render_attack_description(attack: AttackDescription) -> str:
    """Render one attack description as a Table VI/VII style block."""
    rows = [
        ("Attack Description", f"{attack.identifier} - {attack.description}"),
        ("SG IDs", ", ".join(attack.safety_goal_ids) or "- (privacy)"),
        ("Interface / ECU", attack.interface),
        (
            "Link to Threat Library",
            f"Threat scenario {attack.threat_link.threat_scenario_id}: "
            f"{attack.threat_link.text}",
        ),
        (
            "Types",
            f"Threat: {attack.stride.value} - Attack: {attack.attack_type.name}",
        ),
        ("Precondition", attack.precondition),
        ("Expected Measures", attack.expected_measures),
        ("Attack Success", attack.attack_success),
        ("Attack Fails", attack.attack_fails),
        ("Attack impl. comments", attack.implementation_comments or "-"),
    ]
    label_width = max(len(label) for label, __ in rows)
    lines = [f"{label.ljust(label_width)} | {value}" for label, value in rows]
    ruler = "-" * max(len(line) for line in lines)
    return "\n".join([ruler] + lines + [ruler])


def render_hara_rating(rating: HazardRating) -> str:
    """Render one HARA row as the bullet excerpt of §III-B."""
    lines = [
        f"* Function (with ID): {rating.function.name} "
        f"({rating.function.identifier})",
        f"* Failure Mode and Hazard: {rating.failure_mode.value.upper()} - "
        f"{rating.hazard}",
    ]
    if rating.is_rated:
        assert rating.exposure is not None
        assert rating.severity is not None
        assert rating.controllability is not None
        lines.append(
            f"* Exposure & Hazardous Event: E={int(rating.exposure)} "
            f"{rating.hazardous_event}"
        )
        lines.append(
            f"* Severity: S={int(rating.severity)} {rating.rationale}".rstrip()
        )
        lines.append(
            f"* Controllability: C={int(rating.controllability)}"
        )
        lines.append(f"* ASIL: {rating.asil.value}")
    else:
        lines.append(f"* Not applicable: {rating.rationale}")
    return "\n".join(lines)


def render_asil_distribution(distribution: dict[Asil, int]) -> str:
    """Render an ASIL distribution as the §IV count sentence.

    Example output: ``5 for "N/A", 5 for "No ASIL", 7 for "ASIL A", ...``
    """
    labels = {
        Asil.NOT_APPLICABLE: '"N/A"',
        Asil.QM: '"No ASIL"',
        Asil.A: '"ASIL A"',
        Asil.B: '"ASIL B"',
        Asil.C: '"ASIL C"',
        Asil.D: '"ASIL D"',
    }
    parts = [
        f"{distribution.get(asil, 0)} for {labels[asil]}" for asil in labels
    ]
    return ", ".join(parts)


def render_hara_summary(hara: Hara) -> str:
    """Multi-line HARA summary: functions, rating counts, safety goals."""
    lines = [f"HARA: {hara.name}"]
    lines.append(f"Functions analysed: {len(hara.functions)}")
    for function in hara.functions:
        lines.append(f"  - {function.identifier}: {function.name}")
    lines.append(f"Ratings: {len(hara.ratings)}")
    lines.append("  " + render_asil_distribution(hara.asil_distribution()))
    lines.append(f"Safety goals: {len(hara.safety_goals)}")
    for goal in hara.safety_goals:
        lines.append(f"  - {goal}")
    return "\n".join(lines)


def render_completeness(report: CompletenessReport) -> str:
    """Render an RQ1 audit result as a short review block."""
    summary = report.summary()
    lines = [
        "Completeness audit (RQ1)",
        f"  deductive : {summary['goals_covered']}/{summary['goals']} "
        "safety goals covered by attacks",
        f"  inductive : {summary['threats_attacked']} threats attacked, "
        f"{summary['threats_justified']} justified, "
        f"{summary['threats_uncovered']} uncovered",
        f"  verdict   : {'COMPLETE' if report.complete else 'INCOMPLETE'}",
    ]
    for entry in report.uncovered_goals:
        lines.append(f"  ! goal {entry.goal.identifier} uncovered")
    for entry in report.uncovered_threats:
        lines.append(f"  ! threat {entry.threat_id} uncovered")
    return "\n".join(lines)


__all__ = [
    "render_asil_distribution",
    "render_attack_description",
    "render_completeness",
    "render_hara_rating",
    "render_hara_summary",
]
