"""Test-space reduction and effort allocation -- the answer to RQ2.

The paper reduces the security test space two ways:

* **Asset scoping** (§III-A2): limit the threat analysis to assets of
  interesting relevance classes -- implemented by
  :meth:`repro.threatlib.library.ThreatLibrary.scoped`.
* **ASIL-driven effort** (§III-B): "The HARA is used to identify the
  hazards that the validation is supposed to address (RQ2).  A higher ASIL
  rating may be used to justify a greater testing effort."

This module implements the second: ranking attack descriptions by the
highest ASIL among their targeted goals, filtering by an ASIL floor, and
allocating a finite test budget proportionally to ASIL weight (with CAL as
an optional multiplier for security assurance depth).
"""

from __future__ import annotations

import dataclasses

from repro.core.derivation import AttackDescriptionSet
from repro.errors import ValidationError
from repro.model.attack import AttackDescription
from repro.model.ratings import Asil, CalLevel
from repro.model.safety import SafetyGoal

#: Relative testing-effort weight per ASIL.  Exponential-ish growth
#: mirrors how verification effort scales across ASILs in practice;
#: privacy attacks (no safety goal) get the base weight 1.
ASIL_WEIGHTS: dict[Asil, int] = {
    Asil.NOT_APPLICABLE: 1,
    Asil.QM: 1,
    Asil.A: 2,
    Asil.B: 4,
    Asil.C: 8,
    Asil.D: 16,
}


def attack_asil(
    attack: AttackDescription, goals: dict[str, SafetyGoal]
) -> Asil:
    """The highest ASIL among an attack's targeted safety goals.

    Privacy attacks target no goal and rate ``Asil.QM``.

    Raises:
        ValidationError: when the attack references a goal missing from
            ``goals`` (a broken Step 2 trace).
    """
    best = Asil.QM
    for goal_id in attack.safety_goal_ids:
        if goal_id not in goals:
            raise ValidationError(
                f"attack {attack.identifier} references unknown goal {goal_id}"
            )
        if goals[goal_id].asil > best:
            best = goals[goal_id].asil
    return best


@dataclasses.dataclass(frozen=True)
class PrioritizedAttack:
    """An attack with its derived priority data."""

    attack: AttackDescription
    asil: Asil
    weight: int
    allocated_tests: int = 0


@dataclasses.dataclass(frozen=True)
class TestPlan:
    """The RQ2 output: ordered attacks with test-budget allocation."""

    entries: tuple[PrioritizedAttack, ...]
    budget: int

    @property
    def total_allocated(self) -> int:
        """Sum of allocated test executions (== budget when budget > 0)."""
        return sum(entry.allocated_tests for entry in self.entries)

    def allocation(self) -> dict[str, int]:
        """Attack id -> allocated test count."""
        return {
            entry.attack.identifier: entry.allocated_tests
            for entry in self.entries
        }

    def reduction_ratio(self, universe: int) -> float:
        """Fraction of the unreduced test space retained.

        ``universe`` is the size of the unfiltered attack set; the ratio
        quantifies RQ2's reduction claim.
        """
        if universe <= 0:
            raise ValidationError("universe size must be positive")
        return len(self.entries) / universe


class Prioritizer:
    """Ranks and budgets attack descriptions by safety impact (RQ2)."""

    def __init__(
        self,
        goals: list[SafetyGoal],
        cal_levels: dict[str, CalLevel] | None = None,
    ) -> None:
        """Args:
            goals: The Step 2 safety goals.
            cal_levels: Optional attack-id -> CAL mapping; when present, a
                CAL acts as an additional effort multiplier (CAL1 x1 ..
                CAL4 x4), reflecting §II-B: "the necessary level of testing
                is determined by the cybersecurity assurance level".
        """
        self._goals = {goal.identifier: goal for goal in goals}
        self._cal_levels = dict(cal_levels or {})

    def rank(
        self, attacks: AttackDescriptionSet
    ) -> tuple[PrioritizedAttack, ...]:
        """All attacks ordered by descending ASIL, stable within a level."""
        entries = [
            PrioritizedAttack(
                attack=attack,
                asil=attack_asil(attack, self._goals),
                weight=self._weight(attack),
            )
            for attack in attacks
        ]
        entries.sort(key=lambda entry: -entry.asil.rank)
        return tuple(entries)

    def filter(
        self, attacks: AttackDescriptionSet, minimum: Asil
    ) -> tuple[AttackDescription, ...]:
        """Attacks whose ASIL meets the floor -- the reduced test space."""
        return tuple(
            entry.attack
            for entry in self.rank(attacks)
            if entry.asil >= minimum
        )

    def plan(
        self,
        attacks: AttackDescriptionSet,
        budget: int,
        minimum: Asil = Asil.QM,
    ) -> TestPlan:
        """Allocate ``budget`` test executions across the reduced space.

        Allocation is proportional to weight with largest-remainder
        rounding, so the budget is spent exactly and every selected attack
        receives at least one execution when the budget allows.

        Raises:
            ValidationError: when the budget is negative.
        """
        if budget < 0:
            raise ValidationError("test budget must be >= 0")
        ranked = [
            entry for entry in self.rank(attacks) if entry.asil >= minimum
        ]
        if not ranked or budget == 0:
            return TestPlan(entries=tuple(ranked), budget=budget)
        total_weight = sum(entry.weight for entry in ranked)
        shares = [
            budget * entry.weight / total_weight for entry in ranked
        ]
        floors = [int(share) for share in shares]
        remainder = budget - sum(floors)
        by_fraction = sorted(
            range(len(ranked)),
            key=lambda index: -(shares[index] - floors[index]),
        )
        for index in by_fraction[:remainder]:
            floors[index] += 1
        entries = tuple(
            dataclasses.replace(entry, allocated_tests=count)
            for entry, count in zip(ranked, floors)
        )
        return TestPlan(entries=entries, budget=budget)

    def _weight(self, attack: AttackDescription) -> int:
        """ASIL weight times the optional CAL multiplier."""
        weight = ASIL_WEIGHTS[attack_asil(attack, self._goals)]
        cal = self._cal_levels.get(attack.identifier)
        if cal is not None:
            weight *= int(cal)
        return weight


__all__ = [
    "ASIL_WEIGHTS",
    "PrioritizedAttack",
    "Prioritizer",
    "TestPlan",
    "attack_asil",
]
