"""The declarative scenario registry and its parametric variant families.

The registry replaces the seed's two hard-coded SUT classes as the entry
point for execution: UC1 and UC2 are registered as
:class:`~repro.engine.spec.ScenarioSpec` data, and *variant families*
expand each spec into a deterministic design-space sweep:

* ``baseline``          -- the stock configuration, unattacked;
* ``parity``            -- every Step-4 bound attack (AD20, AD08, ...)
  executed with default parameters: the anchor that must reproduce the
  seed verdicts bit-identically;
* ``control-ablation``  -- deployed-control subsets (all, none,
  leave-one-out) under a representative attack, the design space the
  ablation benchmarks walk;
* ``attacker-timing``   -- launch-time / rate / strategy sweeps of the
  catalog attacks;
* ``traffic-density``   -- legitimate-load sweeps (RSU beacon period,
  BLE/CAN service parameters, ECU queue depths);
* ``zone-geometry``     -- construction-zone position/length sweeps (UC1)
  and opening-deadline sweeps (UC2);
* ``fleet``             -- AD20-style floods and AD14-style jams replayed
  against 2-8-vehicle convoys on the spatial fleet scenario, with
  verdict-per-vehicle in every outcome;
* ``coverage``          -- RSU transmit-range sweeps reproducing the
  field-testing range/reception curve;
* ``attacker-position`` -- attacker-timing sweeps crossed with attacker
  *placement*: the same flood succeeds in radio range and dies outside
  it.

Families are generator functions so new ones can be registered by future
workloads; the stock registry (``default_registry()``) yields well over a
hundred variants, every one of them pure data a worker process can
rebuild from scratch.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
from typing import Callable, Iterable, Iterator

from repro.errors import ValidationError
from repro.engine.spec import ScenarioSpec, VariantSpec, freeze_params
from repro.sim.scenarios import UC1_ALL_CONTROLS, UC2_ALL_CONTROLS

#: A family generator: yields the family's variants for one spec.
FamilyGenerator = Callable[[ScenarioSpec], Iterable[VariantSpec]]

UC1_SCENARIO = "uc1-construction-site"
UC2_SCENARIO = "uc2-keyless-entry"
UC1_FLEET_SCENARIO = "uc1-fleet-convoy"

#: Control universes, in deterministic order.  Imported from the scenario
#: module so a control added there automatically joins the ablation sweep.
_UC1_CONTROLS = tuple(sorted(UC1_ALL_CONTROLS))
_UC2_CONTROLS = tuple(sorted(UC2_ALL_CONTROLS))

#: The Step-4 bound attack ids per use case (seed parity anchors).
BOUND_ATTACKS = {
    "uc1": ("AD05", "AD07", "AD12", "AD14", "AD20"),
    "uc2": ("AD02", "AD03", "AD04", "AD08", "AD28"),
}


class ScenarioRegistry:
    """Scenario specs plus their registered variant families."""

    def __init__(self) -> None:
        self._specs: dict[str, ScenarioSpec] = {}
        self._families: dict[str, dict[str, FamilyGenerator]] = {}

    # -- specs ---------------------------------------------------------------

    def register(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Register a scenario spec under its name."""
        if spec.name in self._specs:
            raise ValidationError(f"scenario {spec.name!r} already registered")
        self._specs[spec.name] = spec
        self._families[spec.name] = {}
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """Look up a spec by name."""
        if name not in self._specs:
            raise ValidationError(
                f"unknown scenario {name!r} (known: {sorted(self._specs)})"
            )
        return self._specs[name]

    def names(self) -> tuple[str, ...]:
        """All registered scenario names, in registration order."""
        return tuple(self._specs)

    # -- families ------------------------------------------------------------

    def register_family(
        self, scenario: str, family: str, generator: FamilyGenerator
    ) -> None:
        """Attach a variant family to a registered scenario."""
        spec_families = self._families[self.get(scenario).name]
        if family in spec_families:
            raise ValidationError(
                f"family {family!r} already registered for {scenario!r}"
            )
        spec_families[family] = generator

    def families(self, scenario: str | None = None) -> tuple[str, ...]:
        """Family names, for one scenario or overall (sorted, distinct)."""
        if scenario is not None:
            return tuple(self._families[self.get(scenario).name])
        return tuple(
            sorted({f for families in self._families.values() for f in families})
        )

    # -- variants ------------------------------------------------------------

    def variants(
        self,
        scenario: str | None = None,
        family: str | None = None,
        attack: str | None = None,
        limit: int | None = None,
        use_case: str | None = None,
    ) -> tuple[VariantSpec, ...]:
        """Generate the (filtered) variant list, deterministically ordered."""
        if scenario is not None:
            self.get(scenario)  # unknown names fail loudly, not emptily
        if use_case is not None and use_case not in {
            spec.use_case for spec in self._specs.values()
        }:
            raise ValidationError(
                f"unknown use case {use_case!r} (known: "
                f"{sorted({s.use_case for s in self._specs.values()})})"
            )
        if limit is not None and limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        selected: list[VariantSpec] = []
        seen: set[str] = set()
        for spec_name, families in self._families.items():
            if scenario is not None and spec_name != scenario:
                continue
            if (
                use_case is not None
                and self._specs[spec_name].use_case != use_case
            ):
                continue
            for family_name, generator in families.items():
                if family is not None and family_name != family:
                    continue
                for variant in generator(self._specs[spec_name]):
                    if attack is not None and variant.attack != attack:
                        continue
                    if variant.variant_id in seen:
                        raise ValidationError(
                            f"duplicate variant id {variant.variant_id!r}"
                        )
                    seen.add(variant.variant_id)
                    selected.append(variant)
                    if limit is not None and len(selected) >= limit:
                        return tuple(selected)
        return tuple(selected)

    def variant(self, variant_id: str) -> VariantSpec:
        """Look up one variant by id."""
        for candidate in self.variants():
            if candidate.variant_id == variant_id:
                return candidate
        raise ValidationError(f"unknown variant {variant_id!r}")

    def build(self, variant: VariantSpec):
        """Instantiate the scenario a variant describes (without attack)."""
        return self.get(variant.scenario).build(variant.params)

    def batches(
        self,
        batch_size: int,
        scenario: str | None = None,
        family: str | None = None,
        attack: str | None = None,
        limit: int | None = None,
        use_case: str | None = None,
    ):
        """The (filtered) variant list as a same-family
        :class:`~repro.engine.batch.BatchPlan` -- the shape the batched
        execution tier ships to workers."""
        from repro.engine.batch import BatchPlan

        return BatchPlan.plan(
            self.variants(
                scenario=scenario,
                family=family,
                attack=attack,
                limit=limit,
                use_case=use_case,
            ),
            batch_size,
        )


# -- stock variant families --------------------------------------------------

def _control_sets(universe: tuple[str, ...]) -> Iterator[tuple[str, tuple[str, ...]]]:
    """(label, controls) pairs: all, none, and each leave-one-out set."""
    yield "all", universe
    yield "none", ()
    for removed in universe:
        remaining = tuple(c for c in universe if c != removed)
        yield f"no-{removed}", remaining


def _uc1_baseline(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    yield VariantSpec(
        variant_id="uc1/baseline/stock",
        scenario=spec.name,
        family="baseline",
        description="stock construction-site approach, no attacker",
    )


def _uc2_baseline(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    yield VariantSpec(
        variant_id="uc2/baseline/stock",
        scenario=spec.name,
        family="baseline",
        attack="owner-cycle",
        attack_params=freeze_params({"cycles": 1}),
        description="stock keyless opener, one legitimate open/close cycle",
    )


def _parity(use_case: str) -> FamilyGenerator:
    def generate(spec: ScenarioSpec) -> Iterator[VariantSpec]:
        for attack_id in BOUND_ATTACKS[use_case]:
            yield VariantSpec(
                variant_id=f"{use_case}/parity/{attack_id.lower()}",
                scenario=spec.name,
                family="parity",
                attack=attack_id,
                description=(
                    f"{attack_id} through its Step-4 binding with stock "
                    "parameters (seed-verdict anchor)"
                ),
            )

    return generate


def _uc1_control_ablation(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    # A short, close-in flood: the zone is moved to 400 m so the approach
    # (and therefore the run) is 4x shorter than AD20's while keeping the
    # published flip.  The 0.25 ms interval saturates the channel's
    # 4 msg/ms budget, so without the flooding detector the OBU exhausts
    # its 500-overload allowance (~380 ms) before the first RSU beacon at
    # 500 ms is processed -- no handover, and SG01 falls at zone entry.
    for label, controls in _control_sets(_UC1_CONTROLS):
        yield VariantSpec(
            variant_id=f"uc1/control-ablation/flood-{label}",
            scenario=spec.name,
            family="control-ablation",
            params=freeze_params(
                {
                    "controls": controls,
                    "zone_start_m": 400.0,
                    "zone_end_m": 500.0,
                }
            ),
            attack="flood",
            attack_params=freeze_params(
                {"interval_ms": 0.25, "duration_ms": 3000.0, "launch_ms": 100.0}
            ),
            duration_ms=22000.0,
            description=f"authenticated flood with controls={label}",
        )


def _uc2_control_ablation(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    for attack_id in ("AD08", "AD02"):
        for label, controls in _control_sets(_UC2_CONTROLS):
            yield VariantSpec(
                variant_id=(
                    f"uc2/control-ablation/{attack_id.lower()}-{label}"
                ),
                scenario=spec.name,
                family="control-ablation",
                params=freeze_params({"controls": controls}),
                attack=attack_id,
                description=f"{attack_id} with controls={label}",
            )
    # Replay freshness is doubly covered (replay guard + message counter);
    # the published flip only shows when both are removed together.
    yield VariantSpec(
        variant_id="uc2/control-ablation/ad02-no-freshness",
        scenario=spec.name,
        family="control-ablation",
        params=freeze_params(
            {
                "controls": tuple(
                    c
                    for c in _UC2_CONTROLS
                    if c not in ("replay-guard", "message-counter")
                )
            }
        ),
        attack="AD02",
        description="AD02 with both freshness controls removed",
    )
    # AD03's CAN-flood flip pivots on the flooding detector alone.
    for label, controls in (
        ("with-flooding-detector", _UC2_CONTROLS),
        (
            "no-flooding-detector",
            tuple(c for c in _UC2_CONTROLS if c != "flooding-detector"),
        ),
    ):
        yield VariantSpec(
            variant_id=f"uc2/control-ablation/ad03-{label}",
            scenario=spec.name,
            family="control-ablation",
            params=freeze_params({"controls": controls}),
            attack="AD03",
            description=f"AD03 CAN flood via BLE, {label}",
        )


def _uc1_attacker_timing(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    for start_ms, duration_ms in itertools.product(
        (100.0, 5000.0, 15000.0, 30000.0), (5000.0, 20000.0, 60000.0)
    ):
        yield VariantSpec(
            variant_id=(
                "uc1/attacker-timing/"
                f"jam-s{start_ms:.0f}-d{duration_ms:.0f}"
            ),
            scenario=spec.name,
            family="attacker-timing",
            attack="jam",
            attack_params=freeze_params(
                {"launch_ms": start_ms, "duration_ms": duration_ms}
            ),
            description=(
                f"V2X jamming [{start_ms:.0f}, "
                f"{start_ms + duration_ms:.0f}] ms"
            ),
        )
    for launch_ms in (2000.0, 6000.0, 10000.0, 14000.0):
        yield VariantSpec(
            variant_id=f"uc1/attacker-timing/spoof-s{launch_ms:.0f}",
            scenario=spec.name,
            family="attacker-timing",
            attack="spoof-speed-limit",
            attack_params=freeze_params({"launch_ms": launch_ms}),
            duration_ms=20000.0,
            description=f"fake signage burst at {launch_ms:.0f} ms",
        )


def _uc2_attacker_timing(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    for replay_at in range(4000, 12000, 1000):
        yield VariantSpec(
            variant_id=f"uc2/attacker-timing/replay-t{replay_at}",
            scenario=spec.name,
            family="attacker-timing",
            attack="replay-open",
            attack_params=freeze_params({"replay_at_ms": float(replay_at)}),
            duration_ms=15000.0,
            description=f"open-command replay at {replay_at} ms",
        )
    for strategy, attempts in itertools.product(
        ("random", "incrementing"), (5, 15, 30)
    ):
        yield VariantSpec(
            variant_id=(
                f"uc2/attacker-timing/forge-{strategy}-n{attempts}"
            ),
            scenario=spec.name,
            family="attacker-timing",
            attack="forge-keys",
            attack_params=freeze_params(
                {"strategy": strategy, "attempts": attempts}
            ),
            duration_ms=12000.0,
            description=f"{strategy} key sweep, {attempts} attempts",
        )


def _uc1_traffic_density(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    for period_ms in range(200, 1200, 100):
        yield VariantSpec(
            variant_id=f"uc1/traffic-density/rsu-p{period_ms}",
            scenario=spec.name,
            family="traffic-density",
            params=freeze_params({"rsu_period_ms": float(period_ms)}),
            description=f"RSU beacon period {period_ms} ms",
        )
    for capacity in (16, 32, 64, 128):
        yield VariantSpec(
            variant_id=f"uc1/traffic-density/obu-q{capacity}",
            scenario=spec.name,
            family="traffic-density",
            params=freeze_params({"obu_queue_capacity": capacity}),
            description=f"OBU queue capacity {capacity}",
        )


def _uc2_traffic_density(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    for ble_latency, frame_time in itertools.product(
        (2.0, 5.0, 10.0), (0.5, 1.0, 2.0)
    ):
        yield VariantSpec(
            variant_id=(
                "uc2/traffic-density/"
                f"ble{ble_latency:.0f}-can{frame_time:.1f}"
            ),
            scenario=spec.name,
            family="traffic-density",
            params=freeze_params(
                {
                    "ble_latency_ms": ble_latency,
                    "can_frame_time_ms": frame_time,
                }
            ),
            attack="owner-cycle",
            attack_params=freeze_params({"cycles": 2}),
            duration_ms=15000.0,
            description=(
                f"BLE latency {ble_latency:.0f} ms, "
                f"CAN frame time {frame_time:.1f} ms"
            ),
        )


def _uc1_zone_geometry(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    for start_m, length_m in itertools.product(
        (800.0, 1100.0, 1400.0, 1700.0, 2000.0, 2300.0),
        (50.0, 150.0, 300.0),
    ):
        yield VariantSpec(
            variant_id=(
                f"uc1/zone-geometry/z{start_m:.0f}-l{length_m:.0f}"
            ),
            scenario=spec.name,
            family="zone-geometry",
            params=freeze_params(
                {"zone_start_m": start_m, "zone_end_m": start_m + length_m}
            ),
            description=(
                f"construction zone [{start_m:.0f}, "
                f"{start_m + length_m:.0f}) m"
            ),
        )


# -- spatial families (fleet / coverage / attacker placement) -----------------

#: Close-in geometry shared by the spatial families: the zone sits at
#: 600 m so every convoy member reaches it inside a 30 s horizon, and
#: the RSU's default 500 m range covers the launch area.  The RSU sits
#: *off* the 2.5 m kinematics grid (399, not 400) so a zero-range sweep
#: point cannot connect through an exact-position coincidence.
_FLEET_GEOMETRY = {
    "zone_start_m": 600.0,
    "zone_end_m": 700.0,
    "rsu_position_m": 399.0,
    "rsu_range_m": 500.0,
    "headway_m": 40.0,
}
_FLEET_DURATION_MS = 30000.0

#: The AD20-style authenticated flood the fleet/attacker families replay
#: (interval saturates the channel's 4 msg/ms budget, as in AD20).
_FLEET_FLOOD = {"interval_ms": 0.25, "duration_ms": 3000.0, "launch_ms": 100.0}

_UC1_NO_FLOOD_DETECTOR = tuple(
    c for c in _UC1_CONTROLS if c != "flooding-detector"
)


def _fleet(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    """AD20/AD14-style attacks replayed against 2-8-vehicle convoys."""
    for size in range(2, 9):
        yield VariantSpec(
            variant_id=f"uc1/fleet/convoy-n{size}-baseline",
            scenario=spec.name,
            family="fleet",
            params=freeze_params({"fleet_size": size, **_FLEET_GEOMETRY}),
            duration_ms=_FLEET_DURATION_MS,
            description=f"{size}-vehicle convoy, no attacker",
        )
        yield VariantSpec(
            variant_id=f"uc1/fleet/convoy-n{size}-ad20-flood-exposed",
            scenario=spec.name,
            family="fleet",
            params=freeze_params(
                {
                    "fleet_size": size,
                    "controls": _UC1_NO_FLOOD_DETECTOR,
                    **_FLEET_GEOMETRY,
                }
            ),
            attack="flood",
            attack_params=freeze_params(_FLEET_FLOOD),
            duration_ms=_FLEET_DURATION_MS,
            description=(
                f"AD20-style flood vs {size}-vehicle convoy, flooding "
                "detector removed"
            ),
        )
        yield VariantSpec(
            variant_id=f"uc1/fleet/convoy-n{size}-ad20-flood-protected",
            scenario=spec.name,
            family="fleet",
            params=freeze_params({"fleet_size": size, **_FLEET_GEOMETRY}),
            attack="flood",
            attack_params=freeze_params(_FLEET_FLOOD),
            duration_ms=_FLEET_DURATION_MS,
            description=(
                f"AD20-style flood vs {size}-vehicle convoy, full control "
                "stack"
            ),
        )
        yield VariantSpec(
            variant_id=f"uc1/fleet/convoy-n{size}-ad14-jam",
            scenario=spec.name,
            family="fleet",
            params=freeze_params({"fleet_size": size, **_FLEET_GEOMETRY}),
            attack="jam",
            attack_params=freeze_params(
                {"launch_ms": 100.0, "duration_ms": 29800.0}
            ),
            duration_ms=_FLEET_DURATION_MS,
            description=(
                f"AD14-style whole-approach jam vs {size}-vehicle convoy"
            ),
        )


def _coverage(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    """RSU range sweep: the field-testing range/reception curve."""
    for range_m in (0.0, 50.0, 100.0, 200.0, 400.0, 800.0):
        for size in (1, 4):
            yield VariantSpec(
                variant_id=(
                    f"uc1/coverage/range{range_m:.0f}-n{size}"
                ),
                scenario=spec.name,
                family="coverage",
                params=freeze_params(
                    {
                        "fleet_size": size,
                        "v2v_enabled": False,  # raw RSU reception only
                        **_FLEET_GEOMETRY,
                        "rsu_range_m": range_m,
                    }
                ),
                duration_ms=_FLEET_DURATION_MS,
                description=(
                    f"RSU transmit range {range_m:.0f} m, "
                    f"{size}-vehicle convoy, V2V off"
                ),
            )


def _attacker_position(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    """Attacker-timing sweeps crossed with attacker placement."""
    placements = (
        ("near", 150.0),   # covers the convoy from launch onwards
        ("far", 2900.0),   # beyond the zone: never reached in-horizon
    )
    for (label, position), range_m, launch_ms in itertools.product(
        placements, (250.0, 600.0), (100.0, 2000.0, 6000.0)
    ):
        yield VariantSpec(
            variant_id=(
                "uc1/attacker-position/"
                f"flood-{label}-r{range_m:.0f}-s{launch_ms:.0f}"
            ),
            scenario=spec.name,
            family="attacker-position",
            params=freeze_params(
                {
                    "fleet_size": 2,
                    "controls": _UC1_NO_FLOOD_DETECTOR,
                    **_FLEET_GEOMETRY,
                    "attacker_position_m": position,
                    "attacker_range_m": range_m,
                }
            ),
            attack="flood",
            attack_params=freeze_params(
                {**_FLEET_FLOOD, "launch_ms": launch_ms}
            ),
            duration_ms=_FLEET_DURATION_MS,
            description=(
                f"flood from {position:.0f} m (range {range_m:.0f} m) "
                f"at t={launch_ms:.0f} ms, 2-vehicle convoy"
            ),
        )


def _uc2_zone_geometry(spec: ScenarioSpec) -> Iterator[VariantSpec]:
    # UC2 has no road geometry; its "geometry" is the reaction envelope.
    for deadline_ms in (300.0, 500.0, 800.0):
        yield VariantSpec(
            variant_id=f"uc2/zone-geometry/deadline-{deadline_ms:.0f}",
            scenario=spec.name,
            family="zone-geometry",
            params=freeze_params({"open_deadline_ms": deadline_ms}),
            attack="owner-cycle",
            attack_params=freeze_params({"cycles": 1}),
            description=f"opening deadline {deadline_ms:.0f} ms",
        )


@functools.lru_cache(maxsize=1)
def default_registry() -> ScenarioRegistry:
    """The stock registry: UC1 + UC2 with all stock variant families."""
    registry = ScenarioRegistry()
    registry.register(
        ScenarioSpec(
            name=UC1_SCENARIO,
            use_case="uc1",
            factory="repro.sim.scenarios:ConstructionSiteScenario",
            description=(
                "Use Case I: autonomous vehicle approaching a construction "
                "site (Fig. 2)"
            ),
        )
    )
    registry.register(
        ScenarioSpec(
            name=UC2_SCENARIO,
            use_case="uc2",
            factory="repro.sim.scenarios:KeylessEntryScenario",
            description=(
                "Use Case II: keyless car opener via smartphone over BLE"
            ),
        )
    )
    registry.register(
        ScenarioSpec(
            name=UC1_FLEET_SCENARIO,
            use_case="uc1",
            factory="repro.sim.scenarios:FleetConstructionSiteScenario",
            description=(
                "Use Case I over a convoy: placed RSU with transmit range, "
                "V2V hazard relaying, per-vehicle verdicts"
            ),
            topology=freeze_params(
                {
                    "fleet_size": 4,
                    "rsu_range_m": 600.0,
                    "v2v_range_m": 150.0,
                }
            ),
        )
    )

    registry.register_family(UC1_SCENARIO, "baseline", _uc1_baseline)
    registry.register_family(UC1_SCENARIO, "parity", _parity("uc1"))
    registry.register_family(
        UC1_SCENARIO, "control-ablation", _uc1_control_ablation
    )
    registry.register_family(
        UC1_SCENARIO, "attacker-timing", _uc1_attacker_timing
    )
    registry.register_family(
        UC1_SCENARIO, "traffic-density", _uc1_traffic_density
    )
    registry.register_family(UC1_SCENARIO, "zone-geometry", _uc1_zone_geometry)

    registry.register_family(UC2_SCENARIO, "baseline", _uc2_baseline)
    registry.register_family(UC2_SCENARIO, "parity", _parity("uc2"))
    registry.register_family(
        UC2_SCENARIO, "control-ablation", _uc2_control_ablation
    )
    registry.register_family(
        UC2_SCENARIO, "attacker-timing", _uc2_attacker_timing
    )
    registry.register_family(
        UC2_SCENARIO, "traffic-density", _uc2_traffic_density
    )
    registry.register_family(UC2_SCENARIO, "zone-geometry", _uc2_zone_geometry)

    registry.register_family(UC1_FLEET_SCENARIO, "fleet", _fleet)
    registry.register_family(UC1_FLEET_SCENARIO, "coverage", _coverage)
    registry.register_family(
        UC1_FLEET_SCENARIO, "attacker-position", _attacker_position
    )
    return registry


def apply_topology_overrides(
    variants: Iterable[VariantSpec],
    registry: ScenarioRegistry,
    fleet_size: int | None = None,
    rsu_range_m: float | None = None,
) -> tuple[VariantSpec, ...]:
    """Apply campaign-level fleet/range knobs to a variant selection.

    Each override lands only on variants whose scenario spec declares
    the matching topology key (see
    :attr:`~repro.engine.spec.ScenarioSpec.topology_keys`); everything
    else passes through untouched, so ``--fleet 4`` over a mixed
    selection reshapes the convoys without corrupting UC2 runs.

    Raises:
        ValidationError: on non-positive overrides, or when *no*
            selected variant understands an override (a silent no-op
            would mislabel the campaign).
    """
    if fleet_size is not None and fleet_size < 1:
        raise ValidationError(f"fleet size must be >= 1, got {fleet_size}")
    if rsu_range_m is not None and rsu_range_m < 0:
        raise ValidationError(f"RSU range must be >= 0, got {rsu_range_m}")
    overrides = {}
    if fleet_size is not None:
        overrides["fleet_size"] = fleet_size
    if rsu_range_m is not None:
        overrides["rsu_range_m"] = rsu_range_m
    variant_list = tuple(variants)
    if not overrides:
        return variant_list
    applied: list[VariantSpec] = []
    touched = 0
    for variant in variant_list:
        keys = registry.get(variant.scenario).topology_keys
        effective = {
            key: value for key, value in overrides.items() if key in keys
        }
        if not effective:
            applied.append(variant)
            continue
        touched += 1
        params = variant.params_dict()
        params.update(effective)
        applied.append(
            dataclasses.replace(variant, params=freeze_params(params))
        )
    if not touched:
        raise ValidationError(
            f"no selected variant accepts the overrides {sorted(overrides)}; "
            "fleet/range knobs only apply to topology-capable scenarios "
            f"(e.g. {UC1_FLEET_SCENARIO!r})"
        )
    return tuple(applied)


__all__ = [
    "BOUND_ATTACKS",
    "FamilyGenerator",
    "ScenarioRegistry",
    "UC1_FLEET_SCENARIO",
    "UC1_SCENARIO",
    "UC2_SCENARIO",
    "apply_topology_overrides",
    "default_registry",
]
