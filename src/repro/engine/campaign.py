"""The campaign runner: fan scenario x attack x control combos across workers.

``execute_variant`` runs one :class:`~repro.engine.spec.VariantSpec` end
to end: bound attack descriptions (``AD20``, ``AD08``, ...) go through the
use case's Step-4 binding and the published oracles -- with the scenario
rebuilt from the registry spec instead of the hard-coded class -- while
catalog attacks and unattacked sweeps derive their verdict directly from
the safety monitor (any violated goal counts as a successful attack).

``run_campaign`` executes a variant list either serially or across a
process pool.  Variants are pure data and outcomes are plain dataclasses
of primitives, so the fan-out works under both ``fork`` and ``spawn``
start methods; each worker resets the identifier allocator on startup so
parallel workers cannot mint colliding ``AD``/``SG`` identifiers.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import time
from typing import Any, Iterable, Mapping

from repro.engine.attacks import arm_catalog_attack
from repro.engine.registry import ScenarioRegistry, default_registry
from repro.engine.spec import VariantSpec
from repro.errors import ValidationError
from repro.results import SOURCE_CAMPAIGN, ResultSet, RunRecord, freeze_items
from repro.testing.harness import TestHarness
from repro.testing.testcase import TestCase, Verdict


@dataclasses.dataclass(frozen=True)
class VariantOutcome:
    """The plain-data record of one executed variant.

    Every field is a primitive (or tuple/dict of primitives) so outcomes
    cross process boundaries and serialise without ceremony.
    """

    variant_id: str
    scenario: str
    family: str
    attack: str | None
    verdict: str
    violated_goals: tuple[str, ...]
    violations: tuple[tuple[float, str, str], ...]
    detections: tuple[tuple[str, int], ...]
    detections_by_control: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]
    stats: dict[str, Any]
    duration_ms: float
    wall_time_s: float
    notes: str = ""

    @property
    def sut_passed(self) -> bool:
        """True when the SUT withstood (or nothing was violated)."""
        return self.verdict == Verdict.ATTACK_FAILED.name

    def detections_of(self, ecu: str, control: str | None = None) -> int:
        """Detection count of one ECU (optionally one control)."""
        if control is None:
            return dict(self.detections).get(ecu, 0)
        per_ecu = dict(self.detections_by_control).get(ecu, ())
        return dict(per_ecu).get(control, 0)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "VariantOutcome":
        """Rebuild an outcome from its ``dataclasses.asdict`` form."""
        data = dict(payload)
        data["violated_goals"] = tuple(data["violated_goals"])
        data["violations"] = tuple(tuple(v) for v in data["violations"])
        data["detections"] = tuple(tuple(d) for d in data["detections"])
        data["detections_by_control"] = tuple(
            (ecu, tuple(tuple(item) for item in counts))
            for ecu, counts in data["detections_by_control"]
        )
        return cls(**data)

    def to_record(self) -> RunRecord:
        """This outcome as a uniform :class:`~repro.results.RunRecord`."""
        use_case = self.scenario.split("-", 1)[0]
        if use_case not in ("uc1", "uc2"):
            use_case = ""
        attrs = {"scenario": self.scenario}
        if self.attack:
            attrs["attack"] = self.attack
        return RunRecord(
            source=SOURCE_CAMPAIGN,
            subject=self.variant_id,
            verdict=self.verdict,
            passed=self.sut_passed,
            use_case=use_case,
            family=self.family,
            goals=self.violated_goals,
            metrics=freeze_items(
                {
                    "duration_ms": self.duration_ms,
                    "wall_time_s": self.wall_time_s,
                    "violations": len(self.violations),
                    "detections": sum(
                        count for _, count in self.detections
                    ),
                }
            ),
            attrs=freeze_items(attrs),
            notes=self.notes,
        )


@functools.lru_cache(maxsize=None)
def _bound_test(use_case: str, attack_id: str) -> TestCase:
    """The Step-4 test case for a bound attack (cached per process)."""
    from repro.usecases import uc1, uc2

    module = {"uc1": uc1, "uc2": uc2}[use_case]
    attacks = module.build_attacks()
    if attack_id not in attacks:
        raise ValidationError(f"no attack {attack_id} in {use_case}")
    registry = module.build_bindings()
    attack = attacks.get(attack_id)
    if not registry.can_compile(attack):
        raise ValidationError(
            f"{attack_id} has no executable binding in {use_case}"
        )
    return registry.compile(attack)


def _result_violations(result) -> tuple[tuple[float, str, str], ...]:
    return tuple(
        (violation.time, violation.goal_id, violation.detail)
        for violation in result.violations
    )


def _result_detections(
    result,
) -> tuple[tuple[tuple[str, int], ...], tuple]:
    """(total per ECU, per-ECU per-control counts), both as sorted tuples."""
    totals = tuple(sorted(result.detection_counts().items()))
    by_control = []
    for ecu, records in sorted(result.detection_records.items()):
        counts: dict[str, int] = {}
        for record in records:
            counts[record.control] = counts.get(record.control, 0) + 1
        by_control.append((ecu, tuple(sorted(counts.items()))))
    return totals, tuple(by_control)


def execute_variant(
    variant: VariantSpec, registry: ScenarioRegistry | None = None
) -> VariantOutcome:
    """Execute one variant end to end and derive its verdict."""
    registry = registry or default_registry()
    spec = registry.get(variant.scenario)
    started = time.perf_counter()

    if variant.uses_bound_attack:
        template = _bound_test(spec.use_case, variant.attack)
        test = dataclasses.replace(
            template,
            build_scenario=lambda: spec.build(variant.params),
            duration_ms=variant.duration_ms or template.duration_ms,
        )
        execution = TestHarness().execute(test)
        result = execution.scenario_result
        detections, by_control = _result_detections(result)
        return VariantOutcome(
            variant_id=variant.variant_id,
            scenario=variant.scenario,
            family=variant.family,
            attack=variant.attack,
            verdict=execution.verdict.name,
            violated_goals=result.violated_goals(),
            violations=_result_violations(result),
            detections=detections,
            detections_by_control=by_control,
            stats=result.stats,
            duration_ms=test.duration_ms,
            wall_time_s=time.perf_counter() - started,
            notes=execution.notes,
        )

    scenario = spec.build(variant.params)
    if variant.attack is not None:
        arm_catalog_attack(scenario, variant.attack, variant.attack_params_dict())
    duration_ms = (
        variant.duration_ms
        if variant.duration_ms is not None
        else type(scenario).DEFAULT_DURATION_MS
    )
    result = scenario.run(duration_ms)
    violated = result.violated_goals()
    verdict = Verdict.ATTACK_SUCCEEDED if violated else Verdict.ATTACK_FAILED
    notes = (
        f"violated {', '.join(violated)}"
        if violated
        else "no safety goal violated"
    )
    if variant.attack is None or variant.attack == "owner-cycle":
        notes += " (no attacker; verdict reflects violation presence)"
    detections, by_control = _result_detections(result)
    return VariantOutcome(
        variant_id=variant.variant_id,
        scenario=variant.scenario,
        family=variant.family,
        attack=variant.attack,
        verdict=verdict.name,
        violated_goals=violated,
        violations=_result_violations(result),
        detections=detections,
        detections_by_control=by_control,
        stats=result.stats,
        duration_ms=duration_ms,
        wall_time_s=time.perf_counter() - started,
        notes=notes,
    )


# -- worker-process entry points ---------------------------------------------

#: Identifier numbers each worker may mint before colliding with the next
#: worker's block -- far beyond any realistic per-run minting volume.
_WORKER_ID_BLOCK = 1000


def _worker_initializer(worker_sequence=None) -> None:
    from repro.model.identifiers import reset_default_allocator

    index = 0
    if worker_sequence is not None:
        with worker_sequence.get_lock():
            index = worker_sequence.value
            worker_sequence.value += 1
    # Disjoint numbering blocks: worker k mints AD/SG numbers strictly
    # above k * _WORKER_ID_BLOCK, so merged results never collide.
    reset_default_allocator(floor=index * _WORKER_ID_BLOCK)


def _run_payload(payload: dict) -> dict:
    outcome = execute_variant(VariantSpec.from_payload(payload))
    return dataclasses.asdict(outcome)


# -- the runner ---------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """Aggregated outcomes of one campaign run."""

    outcomes: tuple[VariantOutcome, ...]
    workers: int
    wall_time_s: float

    @property
    def total(self) -> int:
        """Number of executed variants."""
        return len(self.outcomes)

    def counts(self) -> dict[str, int]:
        """Outcome counts by verdict name."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.verdict] = counts.get(outcome.verdict, 0) + 1
        return counts

    def by_family(self) -> dict[str, tuple[VariantOutcome, ...]]:
        """Outcomes grouped by variant family (insertion-ordered)."""
        grouped: dict[str, list[VariantOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.family, []).append(outcome)
        return {family: tuple(items) for family, items in grouped.items()}

    def outcome(self, variant_id: str) -> VariantOutcome:
        """Look up one outcome by variant id."""
        for outcome in self.outcomes:
            if outcome.variant_id == variant_id:
                return outcome
        raise ValidationError(f"no outcome for variant {variant_id!r}")

    def summary(self) -> dict[str, Any]:
        """Plain-data campaign summary for reporting and CI gates."""
        return {
            "total": self.total,
            "workers": self.workers,
            "wall_time_s": round(self.wall_time_s, 3),
            "verdicts": self.counts(),
            "families": {
                family: len(items) for family, items in self.by_family().items()
            },
        }

    def to_result_set(self) -> ResultSet:
        """Every outcome as a :class:`~repro.results.RunRecord` set."""
        return ResultSet.of(outcome.to_record() for outcome in self.outcomes)

    def to_text(self, verbose: bool = False) -> str:
        """Render the campaign as a plain-text report."""
        counts = self.counts()
        lines = [
            (
                f"Campaign: {self.total} variants, {self.workers} worker(s), "
                f"{self.wall_time_s:.1f} s"
            ),
            (
                "  verdicts: "
                f"{counts.get(Verdict.ATTACK_FAILED.name, 0)} withstood, "
                f"{counts.get(Verdict.ATTACK_SUCCEEDED.name, 0)} violated, "
                f"{counts.get(Verdict.INCONCLUSIVE.name, 0)} inconclusive"
            ),
        ]
        for family, items in self.by_family().items():
            withstood = sum(1 for o in items if o.sut_passed)
            lines.append(
                f"  {family}: {len(items)} variants, {withstood} withstood"
            )
            if verbose:
                for outcome in items:
                    marker = "PASS" if outcome.sut_passed else "FAIL"
                    goals = (
                        f" [{', '.join(outcome.violated_goals)}]"
                        if outcome.violated_goals
                        else ""
                    )
                    lines.append(
                        f"    [{marker}] {outcome.variant_id}{goals}"
                    )
        return "\n".join(lines)


def run_campaign(
    variants: Iterable[VariantSpec],
    workers: int = 1,
    registry: ScenarioRegistry | None = None,
) -> CampaignResult:
    """Execute ``variants`` serially or across ``workers`` processes."""
    variant_list = list(variants)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    started = time.perf_counter()
    if workers == 1 or len(variant_list) <= 1:
        outcomes = tuple(
            execute_variant(variant, registry) for variant in variant_list
        )
        return CampaignResult(
            outcomes=outcomes,
            workers=1,
            wall_time_s=time.perf_counter() - started,
        )

    if registry is not None and registry is not default_registry():
        # Worker processes rebuild variants against the default registry;
        # silently running a custom registry's variants against it would
        # resolve wrong (or missing) specs.
        raise ValidationError(
            "custom registries only run serially (workers=1): worker "
            "processes resolve variants against the default registry"
        )
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    payloads = [variant.to_payload() for variant in variant_list]
    worker_sequence = context.Value("i", 0)
    with context.Pool(
        processes=workers,
        initializer=_worker_initializer,
        initargs=(worker_sequence,),
    ) as pool:
        raw = pool.map(_run_payload, payloads, chunksize=1)
    outcomes = tuple(VariantOutcome.from_payload(item) for item in raw)
    return CampaignResult(
        outcomes=outcomes,
        workers=workers,
        wall_time_s=time.perf_counter() - started,
    )


class CampaignRunner:
    """Object-style façade over :func:`run_campaign` (convenient for CLI)."""

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        workers: int = 1,
    ) -> None:
        self.registry = registry or default_registry()
        self.workers = workers

    def select(
        self,
        scenario: str | None = None,
        family: str | None = None,
        attack: str | None = None,
        limit: int | None = None,
    ) -> tuple[VariantSpec, ...]:
        """The registry's (filtered) variant list."""
        return self.registry.variants(
            scenario=scenario, family=family, attack=attack, limit=limit
        )

    def run(self, variants: Iterable[VariantSpec] | None = None) -> CampaignResult:
        """Run the given (or all) variants with the configured workers."""
        selected = tuple(variants) if variants is not None else self.select()
        return run_campaign(selected, workers=self.workers, registry=self.registry)


__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "VariantOutcome",
    "execute_variant",
    "run_campaign",
]
