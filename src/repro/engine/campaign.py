"""The campaign runner: fan scenario x attack x control combos across workers.

``execute_variant`` runs one :class:`~repro.engine.spec.VariantSpec` end
to end: bound attack descriptions (``AD20``, ``AD08``, ...) go through the
use case's Step-4 binding and the published oracles -- with the scenario
rebuilt from the registry spec instead of the hard-coded class -- while
catalog attacks and unattacked sweeps derive their verdict directly from
the safety monitor (any violated goal counts as a successful attack).

``run_campaign``/``iter_campaign`` execute a variant list on any
:mod:`repro.runtime` execution backend -- serial, thread pool or process
pool -- instead of the hand-rolled ``multiprocessing.Pool`` this module
used to own.  Variants are pure data and outcomes are plain dataclasses
of primitives, so process fan-out works under both ``fork`` and ``spawn``
start methods; each worker process claims a disjoint identifier block on
first use so parallel workers cannot mint colliding ``AD``/``SG``
identifiers.  Outcomes stream: ``iter_campaign`` yields each
:class:`VariantOutcome` as its job completes (and pushes its record into
an optional :class:`~repro.results.ResultSink`), so long campaigns can
export partial results, report progress and honour cooperative
cancellation.  A failed job never crashes the campaign machinery: with
``on_error="record"`` it becomes a tagged ``ERROR`` outcome, and with the
default ``on_error="raise"`` it surfaces as a
:class:`~repro.errors.VariantExecutionError` naming the variant.
"""

from __future__ import annotations

import dataclasses
import functools
import time
import warnings
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    runtime_checkable,
)

from repro.engine.attacks import arm_catalog_attack
from repro.engine.registry import ScenarioRegistry, default_registry
from repro.engine.spec import VariantSpec
from repro.errors import (
    DeadlineExceededError,
    ValidationError,
    VariantExecutionError,
)
from repro.faults import fault_point
from repro.results import (
    SOURCE_CAMPAIGN,
    ResultSet,
    ResultSink,
    RunRecord,
    freeze_items,
)
from repro.runtime import (
    CancelToken,
    ExecutionBackend,
    JobError,
    ProcessBackend,
    ProgressEvent,
    RetryPolicy,
    Runtime,
    SerialBackend,
    in_worker_process,
    worker_index,
)
from repro.testing.harness import TestHarness
from repro.testing.testcase import TestCase, Verdict

#: Verdict label of an outcome whose worker-side execution raised.
ERROR_VERDICT = "ERROR"

#: The trace mode campaign workers run scenarios under.  Campaigns only
#: read verdicts, violations, detections and stats, so they default to
#: the lean ``"counts"`` bus mode (per-prefix counters + the scenario's
#: ``RETAINED_TOPICS``); verdicts are mode-independent by construction
#: and asserted so by the golden-parity harness and the trace-mode
#: property tests.  Pass ``trace_mode="full"`` to keep complete traces.
CAMPAIGN_TRACE_MODE = "counts"


@dataclasses.dataclass(frozen=True)
class VariantOutcome:
    """The plain-data record of one executed variant.

    Every field is a primitive (or tuple/dict of primitives) so outcomes
    cross process boundaries and serialise without ceremony.
    """

    variant_id: str
    scenario: str
    family: str
    attack: str | None
    verdict: str
    violated_goals: tuple[str, ...]
    violations: tuple[tuple[float, str, str], ...]
    detections: tuple[tuple[str, int], ...]
    detections_by_control: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]
    stats: dict[str, Any]
    duration_ms: float
    wall_time_s: float
    notes: str = ""
    #: True when this outcome was served from a content-addressed memo
    #: store (:mod:`repro.service.memo`) instead of being re-executed.
    from_cache: bool = False

    @property
    def sut_passed(self) -> bool:
        """True when the SUT withstood (or nothing was violated)."""
        return self.verdict == Verdict.ATTACK_FAILED.name

    @property
    def is_error(self) -> bool:
        """True when this outcome records a worker-side failure."""
        return self.verdict == ERROR_VERDICT

    def detections_of(self, ecu: str, control: str | None = None) -> int:
        """Detection count of one ECU (optionally one control)."""
        if control is None:
            return dict(self.detections).get(ecu, 0)
        per_ecu = dict(self.detections_by_control).get(ecu, ())
        return dict(per_ecu).get(control, 0)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "VariantOutcome":
        """Rebuild an outcome from its ``dataclasses.asdict`` form."""
        data = dict(payload)
        data["violated_goals"] = tuple(data["violated_goals"])
        data["violations"] = tuple(tuple(v) for v in data["violations"])
        data["detections"] = tuple(tuple(d) for d in data["detections"])
        data["detections_by_control"] = tuple(
            (ecu, tuple(tuple(item) for item in counts))
            for ecu, counts in data["detections_by_control"]
        )
        return cls(**data)

    def to_record(self) -> RunRecord:
        """This outcome as a uniform :class:`~repro.results.RunRecord`."""
        use_case = self.scenario.split("-", 1)[0]
        if use_case not in ("uc1", "uc2"):
            use_case = ""
        attrs = {"scenario": self.scenario}
        if self.attack:
            attrs["attack"] = self.attack
        if self.is_error and "error_type" in self.stats:
            attrs["error_type"] = str(self.stats["error_type"])
        if self.from_cache:
            attrs["cached"] = "true"
        return RunRecord(
            source=SOURCE_CAMPAIGN,
            subject=self.variant_id,
            verdict=self.verdict,
            passed=False if self.is_error else self.sut_passed,
            use_case=use_case,
            family=self.family,
            goals=self.violated_goals,
            metrics=freeze_items(
                {
                    "duration_ms": self.duration_ms,
                    "wall_time_s": self.wall_time_s,
                    "violations": len(self.violations),
                    "detections": sum(
                        count for _, count in self.detections
                    ),
                }
            ),
            attrs=freeze_items(attrs),
            notes=self.notes,
        )


@functools.lru_cache(maxsize=None)
def _bound_test(use_case: str, attack_id: str) -> TestCase:
    """The Step-4 test case for a bound attack (cached per process)."""
    from repro.usecases import uc1, uc2

    module = {"uc1": uc1, "uc2": uc2}[use_case]
    attacks = module.build_attacks()
    if attack_id not in attacks:
        raise ValidationError(f"no attack {attack_id} in {use_case}")
    registry = module.build_bindings()
    attack = attacks.get(attack_id)
    if not registry.can_compile(attack):
        raise ValidationError(
            f"{attack_id} has no executable binding in {use_case}"
        )
    return registry.compile(attack)


def _result_violations(result) -> tuple[tuple[float, str, str], ...]:
    return tuple(
        (violation.time, violation.goal_id, violation.detail)
        for violation in result.violations
    )


def _result_detections(
    result,
) -> tuple[tuple[tuple[str, int], ...], tuple]:
    """(total per ECU, per-ECU per-control counts), both as sorted tuples."""
    incremental = getattr(result, "detection_control_counts", None)
    if incremental is not None:
        # Scenario-maintained counters: no walk over the (potentially
        # tens of thousands of rows long) detection logs.
        totals = tuple(
            sorted(
                (ecu, sum(counts.values()))
                for ecu, counts in incremental.items()
            )
        )
        by_control = tuple(
            (ecu, tuple(sorted(counts.items())))
            for ecu, counts in sorted(incremental.items())
        )
        return totals, by_control
    totals = tuple(sorted(result.detection_counts().items()))
    by_control = []
    for ecu, records in sorted(result.detection_records.items()):
        counts: dict[str, int] = {}
        for record in records:
            # Index 1 is the control name; rows may be raw tuples.
            counts[record[1]] = counts.get(record[1], 0) + 1
        by_control.append((ecu, tuple(sorted(counts.items()))))
    return totals, tuple(by_control)


def execute_variant(
    variant: VariantSpec,
    registry: ScenarioRegistry | None = None,
    trace_mode: str = CAMPAIGN_TRACE_MODE,
) -> VariantOutcome:
    """Execute one variant end to end and derive its verdict.

    ``trace_mode`` selects the scenario's event-bus retention mode
    (lean ``"counts"`` by default -- see :data:`CAMPAIGN_TRACE_MODE`).
    """
    registry = registry or default_registry()
    spec = registry.get(variant.scenario)
    started = time.perf_counter()

    if variant.uses_bound_attack:
        template = _bound_test(spec.use_case, variant.attack)
        test = dataclasses.replace(
            template,
            build_scenario=lambda: spec.build(
                variant.params, trace_mode=trace_mode
            ),
            duration_ms=variant.duration_ms or template.duration_ms,
        )
        execution = TestHarness().execute(test)
        result = execution.scenario_result
        detections, by_control = _result_detections(result)
        return VariantOutcome(
            variant_id=variant.variant_id,
            scenario=variant.scenario,
            family=variant.family,
            attack=variant.attack,
            verdict=execution.verdict.name,
            violated_goals=result.violated_goals(),
            violations=_result_violations(result),
            detections=detections,
            detections_by_control=by_control,
            stats=result.stats,
            duration_ms=test.duration_ms,
            wall_time_s=time.perf_counter() - started,
            notes=execution.notes,
        )

    scenario = spec.build(variant.params, trace_mode=trace_mode)
    if variant.attack is not None:
        arm_catalog_attack(scenario, variant.attack, variant.attack_params_dict())
    duration_ms = (
        variant.duration_ms
        if variant.duration_ms is not None
        else type(scenario).DEFAULT_DURATION_MS
    )
    result = scenario.run(duration_ms)
    violated = result.violated_goals()
    verdict = Verdict.ATTACK_SUCCEEDED if violated else Verdict.ATTACK_FAILED
    notes = (
        f"violated {', '.join(violated)}"
        if violated
        else "no safety goal violated"
    )
    if variant.attack is None or variant.attack == "owner-cycle":
        notes += " (no attacker; verdict reflects violation presence)"
    detections, by_control = _result_detections(result)
    return VariantOutcome(
        variant_id=variant.variant_id,
        scenario=variant.scenario,
        family=variant.family,
        attack=variant.attack,
        verdict=verdict.name,
        violated_goals=violated,
        violations=_result_violations(result),
        detections=detections,
        detections_by_control=by_control,
        stats=result.stats,
        duration_ms=duration_ms,
        wall_time_s=time.perf_counter() - started,
        notes=notes,
    )


# -- worker-process entry points ---------------------------------------------

#: Identifier numbers each worker may mint before colliding with the next
#: worker's block -- far beyond any realistic per-run minting volume.
_WORKER_ID_BLOCK = 1000

#: Per-process latch: has this pool worker claimed its identifier block?
_worker_identity_claimed = False


def _ensure_worker_identity() -> None:
    """Give a pool worker process its disjoint identifier block, once.

    Runs in the job path (not a pool initializer) so it works with *any*
    :class:`~repro.runtime.ProcessBackend` -- including ones the caller
    constructed -- and is a no-op in the main process and in thread
    workers, where the (thread-safe) allocator must keep its state.
    """
    global _worker_identity_claimed
    if _worker_identity_claimed or not in_worker_process():
        return
    from repro.model.identifiers import reset_default_allocator

    # Disjoint numbering blocks: worker k mints AD/SG numbers strictly
    # above k * _WORKER_ID_BLOCK, so merged results never collide.
    reset_default_allocator(floor=worker_index() * _WORKER_ID_BLOCK)
    _worker_identity_claimed = True


def _run_payload(
    payload: dict,
    trace_mode: str = CAMPAIGN_TRACE_MODE,
    default_deadline_s: float | None = None,
) -> dict:
    """Process-backend job: rebuild the variant, execute, return plain data."""
    _ensure_worker_identity()
    outcome = _execute_checked(
        VariantSpec.from_payload(payload),
        trace_mode=trace_mode,
        default_deadline_s=default_deadline_s,
    )
    return dataclasses.asdict(outcome)


def _execute_checked(
    variant: VariantSpec,
    registry: ScenarioRegistry | None = None,
    trace_mode: str = CAMPAIGN_TRACE_MODE,
    default_deadline_s: float | None = None,
) -> VariantOutcome:
    """:func:`execute_variant` under the fault-tolerance contract.

    The single chokepoint every campaign execution path (serial, thread,
    process, batched, the service scheduler) funnels through: it hosts
    the ``job-start`` fault-injection hook and enforces the variant's
    wall-clock deadline.  Deadlines are cooperative -- the run completes
    and the breach is reported afterwards as a
    :class:`~repro.errors.DeadlineExceededError`, keeping the check
    deterministic (no timer races, no partially-executed simulations).
    """
    fault_point("job-start")
    outcome = execute_variant(variant, registry, trace_mode=trace_mode)
    deadline = (
        variant.deadline_s
        if variant.deadline_s is not None
        else default_deadline_s
    )
    if deadline is not None and outcome.wall_time_s > deadline:
        raise DeadlineExceededError(
            f"variant {variant.variant_id!r} exceeded its {deadline:g}s "
            f"deadline ({outcome.wall_time_s:.3f}s)"
        )
    return outcome


# -- the runner ---------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """Aggregated outcomes of one campaign run."""

    outcomes: tuple[VariantOutcome, ...]
    workers: int
    wall_time_s: float
    backend: str = "serial"
    cancelled: bool = False

    @property
    def total(self) -> int:
        """Number of executed variants."""
        return len(self.outcomes)

    @property
    def memo_hits(self) -> int:
        """Outcomes served from a memo store instead of re-executed."""
        return sum(1 for outcome in self.outcomes if outcome.from_cache)

    def counts(self) -> dict[str, int]:
        """Outcome counts by verdict name."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.verdict] = counts.get(outcome.verdict, 0) + 1
        return counts

    def by_family(self) -> dict[str, tuple[VariantOutcome, ...]]:
        """Outcomes grouped by variant family (insertion-ordered)."""
        grouped: dict[str, list[VariantOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.family, []).append(outcome)
        return {family: tuple(items) for family, items in grouped.items()}

    def errors(self) -> tuple[VariantOutcome, ...]:
        """Outcomes recording a worker-side failure (``ERROR`` verdict)."""
        return tuple(o for o in self.outcomes if o.is_error)

    def outcome(self, variant_id: str) -> VariantOutcome:
        """Look up one outcome by variant id.

        Raises:
            KeyError: for an unknown id, listing the known variant ids so
                a typo is immediately diagnosable.
        """
        for outcome in self.outcomes:
            if outcome.variant_id == variant_id:
                return outcome
        known = ", ".join(o.variant_id for o in self.outcomes) or "<none>"
        raise KeyError(
            f"no outcome for variant {variant_id!r}; known variant ids: "
            f"{known}"
        )

    def summary(self) -> dict[str, Any]:
        """Plain-data campaign summary for reporting and CI gates."""
        return {
            "total": self.total,
            "workers": self.workers,
            "backend": self.backend,
            "cancelled": self.cancelled,
            "errors": len(self.errors()),
            "memo_hits": self.memo_hits,
            "wall_time_s": round(self.wall_time_s, 3),
            "verdicts": self.counts(),
            "families": {
                family: len(items) for family, items in self.by_family().items()
            },
        }

    def to_result_set(self) -> ResultSet:
        """Every outcome as a :class:`~repro.results.RunRecord` set."""
        return ResultSet.of(outcome.to_record() for outcome in self.outcomes)

    def to_text(self, verbose: bool = False) -> str:
        """Render the campaign as a plain-text report."""
        counts = self.counts()
        lines = [
            (
                f"Campaign: {self.total} variants, {self.workers} worker(s), "
                f"{self.backend} backend, {self.wall_time_s:.1f} s"
                + (" [cancelled]" if self.cancelled else "")
            ),
            (
                "  verdicts: "
                f"{counts.get(Verdict.ATTACK_FAILED.name, 0)} withstood, "
                f"{counts.get(Verdict.ATTACK_SUCCEEDED.name, 0)} violated, "
                f"{counts.get(Verdict.INCONCLUSIVE.name, 0)} inconclusive"
                + (
                    f", {counts[ERROR_VERDICT]} errored"
                    if counts.get(ERROR_VERDICT)
                    else ""
                )
            ),
        ]
        for family, items in self.by_family().items():
            withstood = sum(1 for o in items if o.sut_passed)
            lines.append(
                f"  {family}: {len(items)} variants, {withstood} withstood"
            )
            if verbose:
                for outcome in items:
                    marker = (
                        "ERR!" if outcome.is_error
                        else "PASS" if outcome.sut_passed
                        else "FAIL"
                    )
                    goals = (
                        f" [{', '.join(outcome.violated_goals)}]"
                        if outcome.violated_goals
                        else ""
                    )
                    lines.append(
                        f"    [{marker}] {outcome.variant_id}{goals}"
                    )
        return "\n".join(lines)


def error_outcome(
    variant: VariantSpec,
    error: JobError,
    wall_time_s: float = 0.0,
    *,
    attempts: int = 1,
    quarantined: bool = False,
) -> VariantOutcome:
    """A tagged ``ERROR`` outcome for a variant whose execution raised.

    Public so out-of-band executors (the service scheduler) report
    failures in exactly the shape ``on_error="record"`` produces.
    ``attempts`` records how many executions were tried and
    ``quarantined=True`` tags a variant that exhausted its
    :class:`~repro.runtime.RetryPolicy` budget -- the campaign carries
    on without it, so one pathological variant never poisons its batch.
    """
    stats: dict[str, Any] = {
        "error_type": error.type,
        "error_traceback": error.traceback,
        "attempts": attempts,
    }
    notes = f"{error.type}: {error.message}"
    if quarantined:
        stats["quarantined"] = True
        notes = f"quarantined after {attempts} attempt(s) -- {notes}"
    return VariantOutcome(
        variant_id=variant.variant_id,
        scenario=variant.scenario,
        family=variant.family,
        attack=variant.attack,
        verdict=ERROR_VERDICT,
        violated_goals=(),
        violations=(),
        detections=(),
        detections_by_control=(),
        stats=stats,
        duration_ms=0.0,
        wall_time_s=wall_time_s,
        notes=notes,
    )


#: Backwards-compatible private alias (pre-service-plane name).
_error_outcome = error_outcome


@runtime_checkable
class CampaignMemo(Protocol):
    """The duck type ``iter_campaign``'s ``memo=`` parameter accepts.

    :class:`repro.service.MemoStore` is the production implementation;
    the engine deliberately depends only on this two-method shape so it
    never imports the service plane (layering: service -> engine, not
    back).  ``lookup`` returns a cached outcome (marked ``from_cache``)
    or ``None``; ``record`` observes each freshly-executed outcome.
    """

    def lookup(
        self, variant: VariantSpec, trace_mode: str | None = None
    ) -> VariantOutcome | None: ...

    def record(
        self,
        variant: VariantSpec,
        outcome: VariantOutcome,
        trace_mode: str | None = None,
    ) -> None: ...


def _resolve_backend(
    workers: int | None,
    parallel: int | None,
    backend: "ExecutionBackend | str | None",
    n_variants: int,
) -> ExecutionBackend:
    """Normalise the legacy ``workers=``/``parallel=`` and new ``backend=``."""
    if parallel is not None:
        warnings.warn(
            "run_campaign(parallel=...) is deprecated; pass "
            "backend=ProcessBackend(jobs=N) (or the workers=N shorthand)",
            DeprecationWarning,
            stacklevel=3,
        )
        if workers is not None and workers != parallel:
            raise ValidationError(
                f"conflicting worker counts: workers={workers}, "
                f"parallel={parallel}"
            )
        workers = parallel
    if backend is not None:
        if workers is not None:
            raise ValidationError(
                "pass either backend= or workers=/parallel=, not both"
            )
        if isinstance(backend, str):
            from repro.runtime import make_backend

            return make_backend(backend)
        return backend
    workers = 1 if workers is None else workers
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if workers == 1 or n_variants <= 1:
        return SerialBackend()
    return ProcessBackend(jobs=workers)


def iter_campaign(
    variants: Iterable[VariantSpec],
    *,
    backend: "ExecutionBackend | str | None" = None,
    registry: ScenarioRegistry | None = None,
    on_error: str = "raise",
    on_event: Callable[[ProgressEvent], None] | None = None,
    cancel: CancelToken | None = None,
    sink: ResultSink | None = None,
    chunksize: int = 1,
    trace_mode: str = CAMPAIGN_TRACE_MODE,
    memo: CampaignMemo | None = None,
    retry: RetryPolicy | None = None,
    deadline_s: float | None = None,
) -> Iterator[VariantOutcome]:
    """Execute ``variants`` on ``backend``; yield outcomes as they finish.

    This is the streaming core every campaign entry point shares.
    Outcomes arrive in **completion** order (use :func:`run_campaign` for
    input-ordered aggregation); each one's record is pushed into ``sink``
    the moment it exists, so partial results are exportable mid-run.

    Args:
        backend: Any :mod:`repro.runtime` backend or its name (default
            serial; a backend built from a name is shut down when the
            iterator finishes or is closed).
        registry: Custom scenario registry.  Memory-sharing backends
            (serial, thread) honour it directly; process backends refuse
            it loudly -- their workers rebuild variants against the
            default registry and would silently resolve wrong specs.
        on_error: ``"raise"`` (default) surfaces a worker failure as
            :class:`~repro.errors.VariantExecutionError` naming the
            variant; ``"record"`` converts it into a tagged ``ERROR``
            outcome and keeps going.
        on_event: Progress callback (see :class:`~repro.runtime.ProgressEvent`).
        cancel: Cooperative cancellation token; jobs already running
            finish, nothing new starts.
        sink: Streaming record accumulator
            (:class:`~repro.results.ResultSink`).
        chunksize: Jobs per backend task (1 streams at finest grain).
        trace_mode: Scenario event-trace mode (lean ``"counts"`` by
            default; ``"full"`` retains complete traces).
        memo: Optional :class:`CampaignMemo` (e.g.
            :class:`repro.service.MemoStore`): variants it already knows
            are yielded instantly as ``from_cache`` outcomes and never
            re-executed; fresh outcomes are recorded back into it.
        retry: Optional :class:`~repro.runtime.RetryPolicy`: a variant
            failing with a transient error class is re-executed (with
            the policy's deterministic backoff) instead of failing the
            campaign; a variant that exhausts the budget yields a
            ``quarantined`` error outcome under ``on_error="record"``
            (or raises, under ``"raise"``).
        deadline_s: Campaign-level wall-clock budget per variant;
            a variant's own ``deadline_s`` takes precedence.
    """
    for _index, outcome in _iter_campaign_indexed(
        variants,
        backend=backend,
        registry=registry,
        on_error=on_error,
        on_event=on_event,
        cancel=cancel,
        sink=sink,
        chunksize=chunksize,
        trace_mode=trace_mode,
        memo=memo,
        retry=retry,
        deadline_s=deadline_s,
    ):
        yield outcome


def _iter_campaign_indexed(
    variants: Iterable[VariantSpec],
    *,
    backend: "ExecutionBackend | str | None" = None,
    registry: ScenarioRegistry | None = None,
    on_error: str = "raise",
    on_event: Callable[[ProgressEvent], None] | None = None,
    cancel: CancelToken | None = None,
    sink: ResultSink | None = None,
    chunksize: int = 1,
    trace_mode: str = CAMPAIGN_TRACE_MODE,
    memo: CampaignMemo | None = None,
    retry: RetryPolicy | None = None,
    deadline_s: float | None = None,
) -> Iterator[tuple[int, VariantOutcome]]:
    """:func:`iter_campaign` plus each outcome's input position, so
    aggregators can restore exact submission order even when variant ids
    repeat in an explicit list."""
    if on_error not in ("raise", "record"):
        raise ValidationError(
            f"on_error must be 'raise' or 'record', got {on_error!r}"
        )
    if deadline_s is not None and deadline_s <= 0:
        raise ValidationError(
            f"deadline_s must be positive, got {deadline_s}"
        )
    owns_backend = isinstance(backend, str)
    if isinstance(backend, str):
        from repro.runtime import make_backend

        backend = make_backend(backend)
    elif backend is None:
        backend = SerialBackend()
    variant_list = list(variants)
    if (
        registry is not None
        and registry is not default_registry()
        and not backend.shares_memory
    ):
        raise ValidationError(
            "custom registries only run on in-process backends (serial or "
            "thread): process workers resolve variants against the default "
            "registry"
        )
    # Memo filtering: serve cache hits immediately, submit only misses.
    # Verdicts cannot move under this split -- variant execution never
    # consumes the runtime's per-index seed (``seeded=False`` throughout),
    # so re-indexing the submitted subset changes nothing observable; the
    # ``positions`` remap restores every outcome's original input index.
    submit_variants = variant_list
    positions = range(len(variant_list))
    cached: list[tuple[int, VariantOutcome]] = []
    if memo is not None:
        submit_variants, remap = [], []
        for index, variant in enumerate(variant_list):
            hit = memo.lookup(variant, trace_mode)
            if hit is not None:
                cached.append((index, hit))
            else:
                submit_variants.append(variant)
                remap.append(index)
        positions = remap
    try:
        for index, outcome in cached:
            if sink is not None:
                sink.add(outcome.to_record())
            yield index, outcome
        runtime = Runtime(backend, on_event=on_event, cancel=cancel)
        batch_size = getattr(backend, "batch_size", None)
        if batch_size is not None:
            # A BatchedBackend: group same-family variants and ship whole
            # batches, amortising shared setup per batch.  Seeds still derive
            # from each variant's original index, so verdicts do not move.
            from repro.engine.batch import (
                BatchPlan,
                execute_batch_in_process,
                run_batch_payload,
            )

            plan = BatchPlan.plan(submit_variants, batch_size)
            if backend.shares_memory:
                batch_fn = functools.partial(
                    execute_batch_in_process,
                    registry=registry,
                    trace_mode=trace_mode,
                    default_deadline_s=deadline_s,
                )
                batches = [(batch.context(), batch.jobs()) for batch in plan]
            else:
                batch_fn = functools.partial(
                    run_batch_payload,
                    trace_mode=trace_mode,
                    default_deadline_s=deadline_s,
                )
                batches = [
                    (batch.context(), batch.jobs(as_payload=True))
                    for batch in plan
                ]
            stream = runtime.map_batches(batch_fn, batches)
        elif backend.shares_memory:
            fn: Callable[[Any], Any] = functools.partial(
                _execute_in_process,
                registry=registry,
                trace_mode=trace_mode,
                default_deadline_s=deadline_s,
            )
            stream = runtime.map(fn, submit_variants, chunksize=chunksize)
        else:
            fn = functools.partial(
                _run_payload,
                trace_mode=trace_mode,
                default_deadline_s=deadline_s,
            )
            stream = runtime.map(
                fn,
                [variant.to_payload() for variant in submit_variants],
                chunksize=chunksize,
            )
        # Transient failures are parked here and re-executed after the
        # main stream drains; ``run_campaign``'s position sort restores
        # input order, so late retries never move another verdict.
        retries: list[tuple[int, JobError]] = []
        for result in stream:
            variant = submit_variants[result.index]
            if result.ok:
                value = result.value
                outcome = (
                    value
                    if isinstance(value, VariantOutcome)
                    else VariantOutcome.from_payload(value)
                )
                if memo is not None:
                    memo.record(variant, outcome, trace_mode)
            elif retry is not None and retry.should_retry(result.error, 1):
                retries.append((result.index, result.error))
                continue
            elif on_error == "record":
                outcome = error_outcome(
                    variant, result.error, result.wall_time_s
                )
            else:
                raise VariantExecutionError(
                    f"variant {variant.variant_id!r} failed in a "
                    f"{backend.name} worker: {result.error.type}: "
                    f"{result.error.message}",
                    variant_id=variant.variant_id,
                    error_type=result.error.type,
                    error_traceback=result.error.traceback,
                )
            if sink is not None:
                sink.add(outcome.to_record())
            yield positions[result.index], outcome
        for submit_index, first_error in retries:
            if cancel is not None and cancel.cancelled:
                return
            variant = submit_variants[submit_index]
            yield positions[submit_index], _retry_variant(
                variant,
                first_error,
                retry=retry,
                registry=registry if backend.shares_memory else None,
                trace_mode=trace_mode,
                deadline_s=deadline_s,
                on_error=on_error,
                backend_name=backend.name,
                memo=memo,
                sink=sink,
                cancel=cancel,
            )
    finally:
        if owns_backend:
            backend.shutdown()


def _retry_variant(
    variant: VariantSpec,
    first_error: JobError,
    *,
    retry: RetryPolicy,
    registry: ScenarioRegistry | None,
    trace_mode: str,
    deadline_s: float | None,
    on_error: str,
    backend_name: str,
    memo: CampaignMemo | None,
    sink: ResultSink | None,
    cancel: CancelToken | None,
) -> VariantOutcome:
    """Re-run one transiently-failed variant under the retry policy.

    Retries run inline in the driver process: they are rare, variant
    execution is unseeded, and the simulator is deterministic, so the
    verdict matches what any backend's worker would have produced.  Each
    attempt waits out the policy's seeded backoff first (the wait doubles
    as a cancellation point).  Returns the final outcome -- a success
    annotated with its attempt count, or a ``quarantined`` error outcome
    under ``on_error="record"``; under ``"raise"`` exhaustion raises
    :class:`~repro.errors.VariantExecutionError`.
    """
    error = first_error
    attempt = 1
    while retry.should_retry(error, attempt) and not (
        cancel is not None and cancel.cancelled
    ):
        retry.wait(attempt, variant.variant_id, cancel=cancel)
        attempt += 1
        try:
            outcome = _execute_checked(
                variant,
                registry,
                trace_mode=trace_mode,
                default_deadline_s=deadline_s,
            )
        except Exception as exc:  # noqa: BLE001 - captured, policy decides
            error = JobError.from_exception(exc)
            continue
        outcome = dataclasses.replace(
            outcome, stats={**outcome.stats, "attempts": attempt}
        )
        if memo is not None:
            memo.record(variant, outcome, trace_mode)
        if sink is not None:
            sink.add(outcome.to_record())
        return outcome
    if on_error == "record":
        outcome = error_outcome(
            variant, error, attempts=attempt, quarantined=True
        )
        if sink is not None:
            sink.add(outcome.to_record())
        return outcome
    raise VariantExecutionError(
        f"variant {variant.variant_id!r} quarantined after {attempt} "
        f"attempt(s) on the {backend_name} backend: {error.type}: "
        f"{error.message}",
        variant_id=variant.variant_id,
        error_type=error.type,
        error_traceback=error.traceback,
    )


def _execute_in_process(
    variant: VariantSpec,
    registry=None,
    trace_mode: str = CAMPAIGN_TRACE_MODE,
    default_deadline_s: float | None = None,
) -> VariantOutcome:
    """Serial/thread-backend job: no payload round-trip needed."""
    return _execute_checked(
        variant,
        registry,
        trace_mode=trace_mode,
        default_deadline_s=default_deadline_s,
    )


def run_campaign(
    variants: Iterable[VariantSpec],
    workers: int | None = None,
    registry: ScenarioRegistry | None = None,
    *,
    backend: "ExecutionBackend | str | None" = None,
    parallel: int | None = None,
    on_error: str = "raise",
    on_event: Callable[[ProgressEvent], None] | None = None,
    cancel: CancelToken | None = None,
    sink: ResultSink | None = None,
    chunksize: int = 1,
    trace_mode: str = CAMPAIGN_TRACE_MODE,
    memo: CampaignMemo | None = None,
    retry: RetryPolicy | None = None,
    deadline_s: float | None = None,
) -> CampaignResult:
    """Execute ``variants`` on an execution backend; aggregate outcomes.

    The preferred calling convention is ``backend=`` with any
    :mod:`repro.runtime` backend (or its name)::

        run_campaign(variants, backend=ProcessBackend(jobs=4))
        run_campaign(variants, backend="thread")

    ``workers=N`` remains as a shorthand for
    ``backend=ProcessBackend(jobs=N)`` (``N == 1`` means serial), and the
    historical ``parallel=N`` spelling still works as a deprecation shim.
    Outcomes are returned in input order regardless of completion order;
    verdicts are backend-independent by construction (pure-data variants,
    deterministic simulator).
    """
    variant_list = list(variants)
    resolved = _resolve_backend(workers, parallel, backend, len(variant_list))
    owns_backend = backend is None or isinstance(backend, str)
    started = time.perf_counter()
    token = cancel if cancel is not None else CancelToken()
    try:
        indexed = sorted(
            _iter_campaign_indexed(
                variant_list,
                backend=resolved,
                registry=registry,
                on_error=on_error,
                on_event=on_event,
                cancel=token,
                sink=sink,
                chunksize=chunksize,
                trace_mode=trace_mode,
                memo=memo,
                retry=retry,
                deadline_s=deadline_s,
            ),
            key=lambda pair: pair[0],
        )
    finally:
        if owns_backend:
            resolved.shutdown()
    return CampaignResult(
        outcomes=tuple(outcome for _index, outcome in indexed),
        workers=resolved.jobs,
        wall_time_s=time.perf_counter() - started,
        backend=resolved.name,
        cancelled=token.cancelled,
    )


class CampaignRunner:
    """Object-style façade over :func:`run_campaign` (convenient for CLI).

    A runner that *constructed* its backend (from a name or ``jobs=``)
    also owns it: each :meth:`run` shuts the worker pool down afterwards
    (pooled backends restart lazily on the next run).  A caller-provided
    backend instance is left running -- its lifecycle stays with the
    caller, as everywhere else in the runtime layer.
    """

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        workers: int | None = None,
        backend: "ExecutionBackend | str | None" = None,
        jobs: int | None = None,
        batch_size: int | None = None,
    ) -> None:
        from repro.runtime import backend_from_spec

        self.registry = registry or default_registry()
        if backend is None and jobs is None and batch_size is None:
            # Legacy convention: workers=N means an N-process pool.
            self.workers = 1 if workers is None else workers
            self.backend = None  # resolved per run (serial fast path)
            self._owns_backend = False
        else:
            if workers is not None:
                raise ValidationError(
                    "pass either workers= or backend=/jobs=/batch_size=, "
                    "not both"
                )
            self._owns_backend = backend is None or isinstance(backend, str)
            self.backend = backend_from_spec(
                backend, jobs, batch_size=batch_size
            )
            self.workers = self.backend.jobs

    def close(self) -> None:
        """Shut down an owned backend's workers (idempotent)."""
        if self._owns_backend and self.backend is not None:
            self.backend.shutdown()

    def select(
        self,
        scenario: str | None = None,
        family: str | None = None,
        attack: str | None = None,
        limit: int | None = None,
        use_case: str | None = None,
    ) -> tuple[VariantSpec, ...]:
        """The registry's (filtered) variant list."""
        return self.registry.variants(
            scenario=scenario,
            family=family,
            attack=attack,
            limit=limit,
            use_case=use_case,
        )

    def run(
        self,
        variants: Iterable[VariantSpec] | None = None,
        *,
        on_error: str = "raise",
        on_event: Callable[[ProgressEvent], None] | None = None,
        cancel: CancelToken | None = None,
        sink: ResultSink | None = None,
        trace_mode: str = CAMPAIGN_TRACE_MODE,
        memo: CampaignMemo | None = None,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
    ) -> CampaignResult:
        """Run the given (or all) variants on the configured backend."""
        selected = tuple(variants) if variants is not None else self.select()
        try:
            return run_campaign(
                selected,
                workers=None if self.backend is not None else self.workers,
                registry=self.registry,
                backend=self.backend,
                on_error=on_error,
                on_event=on_event,
                cancel=cancel,
                sink=sink,
                trace_mode=trace_mode,
                memo=memo,
                retry=retry,
                deadline_s=deadline_s,
            )
        finally:
            self.close()


__all__ = [
    "CAMPAIGN_TRACE_MODE",
    "CampaignMemo",
    "CampaignResult",
    "CampaignRunner",
    "ERROR_VERDICT",
    "VariantOutcome",
    "error_outcome",
    "execute_variant",
    "iter_campaign",
    "run_campaign",
]
