"""Family batching: ship groups of variants that share their setup.

A campaign over the stock registry re-resolves the same scenario factory,
re-derives the same HMAC keys and re-signs the same canonical payloads
hundreds of times -- once per variant.  :class:`BatchPlan` groups a
variant list by ``(scenario, family)`` (the axis along which setup is
actually shared: one spec, one factory, one attack template pool, one
vocabulary of signed messages) and chunks each group to the backend's
batch size.  :func:`execute_batch` then runs a whole
:class:`VariantBatch` inside one worker task with the shared, immutable
setup built **once**:

* the scenario factory and its ``trace_mode`` introspection are resolved
  and cached before the first variant runs;
* bound-attack test templates (``AD20``, ``AD08``, ...) are compiled once
  per distinct attack id in the batch;
* key material is served from :func:`repro.sim.crypto.derive_key`'s
  process-wide cache, and a batch-scoped
  :func:`~repro.sim.crypto.shared_mac_memo` lets every variant in the
  batch reuse each distinct HMAC digest.

Per-variant behaviour is untouched: each variant still executes through
:func:`repro.engine.campaign.execute_variant` with the seed the runtime
derived from its position in the *original, unbatched* variant list, so
verdicts are bit-identical to serial execution (the golden-parity suite
gates this).  Campaign internals are imported lazily inside functions --
:mod:`repro.engine.campaign` imports this module, not the other way
around at import time.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Iterator, Sequence

from repro.engine.registry import ScenarioRegistry, default_registry
from repro.engine.spec import VariantSpec, factory_accepts, resolve_factory
from repro.errors import ValidationError
from repro.runtime import JobError
from repro.sim.crypto import shared_mac_memo
from repro.sim.network import shared_message_memo
from repro.sim.topology import shared_tick_plans

#: The batch context shipped to workers: plain data, always picklable.
BatchContext = dict[str, str]


@dataclasses.dataclass(frozen=True)
class VariantBatch:
    """One shipped unit of work: same-family variants plus their
    positions in the original variant list.

    Attributes:
        scenario: The shared scenario spec name.
        family: The shared variant family.
        indices: Each member's position in the *unbatched* variant list
            (seed derivation and result ordering key off these).
        variants: The member variants, in original order.
    """

    scenario: str
    family: str
    indices: tuple[int, ...]
    variants: tuple[VariantSpec, ...]

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.variants):
            raise ValidationError(
                f"batch {self.scenario}/{self.family}: {len(self.indices)} "
                f"indices for {len(self.variants)} variants"
            )
        if not self.variants:
            raise ValidationError(
                f"batch {self.scenario}/{self.family} is empty"
            )

    def __len__(self) -> int:
        return len(self.variants)

    def context(self) -> BatchContext:
        """The shared-setup descriptor shipped alongside the members."""
        return {"scenario": self.scenario, "family": self.family}

    def jobs(self, as_payload: bool = False) -> tuple[tuple[int, Any], ...]:
        """``(original_index, item)`` pairs for the runtime batch API.

        ``as_payload=True`` converts members to their plain-dict form for
        transport across a process boundary.
        """
        if as_payload:
            return tuple(
                (index, variant.to_payload())
                for index, variant in zip(self.indices, self.variants)
            )
        return tuple(zip(self.indices, self.variants))


@dataclasses.dataclass(frozen=True)
class BatchPlan:
    """A variant list grouped into same-family batches.

    The plan covers every input variant exactly once; batches preserve
    the original relative order within each ``(scenario, family)`` group
    and never mix groups, so a batch's shared setup is valid for all its
    members.
    """

    batches: tuple[VariantBatch, ...]
    total: int

    @classmethod
    def plan(
        cls, variants: Sequence[VariantSpec], batch_size: int
    ) -> "BatchPlan":
        """Group ``variants`` by ``(scenario, family)``, chunked to
        ``batch_size`` members per batch."""
        if batch_size < 1:
            raise ValidationError(
                f"batch size must be >= 1, got {batch_size}"
            )
        groups: dict[tuple[str, str], list[tuple[int, VariantSpec]]] = {}
        for index, variant in enumerate(variants):
            key = (variant.scenario, variant.family)
            groups.setdefault(key, []).append((index, variant))
        batches = []
        for (scenario, family), members in groups.items():
            for start in range(0, len(members), batch_size):
                chunk = members[start : start + batch_size]
                batches.append(
                    VariantBatch(
                        scenario=scenario,
                        family=family,
                        indices=tuple(index for index, _variant in chunk),
                        variants=tuple(variant for _index, variant in chunk),
                    )
                )
        return cls(batches=tuple(batches), total=len(variants))

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[VariantBatch]:
        return iter(self.batches)

    def summary(self) -> dict[str, Any]:
        """Plain-data description (batch count, sizes, families)."""
        sizes = [len(batch) for batch in self.batches]
        return {
            "batches": len(self.batches),
            "variants": self.total,
            "max_batch": max(sizes, default=0),
            "families": sorted(
                {f"{b.scenario}/{b.family}" for b in self.batches}
            ),
        }


def _warm_batch(
    context: BatchContext,
    variants: Sequence[VariantSpec],
    registry: ScenarioRegistry,
) -> None:
    """Build the batch's shared setup once, before the first variant."""
    from repro.engine.campaign import _bound_test

    spec = registry.get(context["scenario"])
    resolve_factory(spec.factory)
    factory_accepts(spec.factory, "trace_mode")
    for attack in sorted(
        {v.attack for v in variants if v.uses_bound_attack}
    ):
        _bound_test(spec.use_case, attack)


def execute_batch(
    context: BatchContext,
    jobs: Sequence[tuple[int, int, Any]],
    registry: ScenarioRegistry | None = None,
    trace_mode: str | None = None,
    as_payload: bool = False,
    default_deadline_s: float | None = None,
) -> list[dict[str, Any]]:
    """Execute one batch; return per-variant payload dicts.

    ``jobs`` is the runtime's ``(original_index, seed, item)`` shape;
    items are :class:`VariantSpec` in-process or their payload dicts
    across a pickle boundary.  Failures are captured per variant (the
    rest of the batch still runs, so one bad variant never poisons its
    batch), matching the unbatched error contract --
    ``default_deadline_s`` is the campaign-level deadline applied to
    variants without their own.
    """
    from repro.engine.campaign import CAMPAIGN_TRACE_MODE, _execute_checked

    registry = registry if registry is not None else default_registry()
    if trace_mode is None:
        trace_mode = CAMPAIGN_TRACE_MODE
    variants = [
        item
        if isinstance(item, VariantSpec)
        else VariantSpec.from_payload(item)
        for _index, _seed, item in jobs
    ]
    results: list[dict[str, Any]] = []
    # One memo scope per batch: HMAC digests, honestly signed message
    # instances *and* compiled topology tick plans are shared across the
    # family's variants -- structurally identical fleets compile their
    # step program once and re-sign their deterministic traffic once.
    with shared_mac_memo(), shared_message_memo(), shared_tick_plans():
        try:
            _warm_batch(context, variants, registry)
        except Exception:  # noqa: BLE001 - warming is an optimisation
            # A variant that cannot even warm (unknown scenario or
            # attack) must fail *individually* below, exactly as it
            # would unbatched -- never take the whole batch down.
            pass
        for (index, seed, _item), variant in zip(jobs, variants):
            started = time.perf_counter()
            try:
                outcome = _execute_checked(
                    variant,
                    registry,
                    trace_mode=trace_mode,
                    default_deadline_s=default_deadline_s,
                )
            except Exception as exc:  # noqa: BLE001 - captured, reported
                results.append(
                    {
                        "index": index,
                        "seed": seed,
                        "error": dataclasses.asdict(
                            JobError.from_exception(exc)
                        ),
                        "wall_time_s": time.perf_counter() - started,
                    }
                )
            else:
                results.append(
                    {
                        "index": index,
                        "seed": seed,
                        "value": (
                            dataclasses.asdict(outcome)
                            if as_payload
                            else outcome
                        ),
                        "wall_time_s": time.perf_counter() - started,
                    }
                )
    return results


def execute_batch_in_process(
    context: BatchContext,
    jobs: Sequence[tuple[int, int, Any]],
    registry: ScenarioRegistry | None = None,
    trace_mode: str | None = None,
    default_deadline_s: float | None = None,
) -> list[dict[str, Any]]:
    """Serial/thread batch job: outcomes stay live objects."""
    return execute_batch(
        context,
        jobs,
        registry=registry,
        trace_mode=trace_mode,
        default_deadline_s=default_deadline_s,
    )


def run_batch_payload(
    context: BatchContext,
    jobs: Sequence[tuple[int, int, Any]],
    trace_mode: str | None = None,
    default_deadline_s: float | None = None,
) -> list[dict[str, Any]]:
    """Process-backend batch job: claim worker identity, return plain data."""
    from repro.engine.campaign import _ensure_worker_identity

    _ensure_worker_identity()
    return execute_batch(
        context,
        jobs,
        registry=None,
        trace_mode=trace_mode,
        as_payload=True,
        default_deadline_s=default_deadline_s,
    )


__all__ = [
    "BatchContext",
    "BatchPlan",
    "VariantBatch",
    "execute_batch",
    "execute_batch_in_process",
    "run_batch_payload",
]
