"""Declarative scenario and variant specifications.

A :class:`ScenarioSpec` expresses a SUT configuration as *data*: a dotted
factory path (``"repro.sim.scenarios:ConstructionSiteScenario"``) plus
default parameters.  A :class:`VariantSpec` is one point in a spec's
design space: parameter overrides, an optional attack (either a bound
attack description id like ``AD20`` or a key into the parametric
:mod:`repro.engine.attacks` catalog) and an optional run horizon.

Both are frozen dataclasses holding only plain values (parameter maps are
stored as sorted key/value tuples), so variants pickle cleanly across
campaign worker processes and hash/compare deterministically -- a variant
*is* its description, there is no hidden state to drift.
"""

from __future__ import annotations

import dataclasses
import functools
import importlib
import inspect
from typing import Any, Callable, Mapping

from repro.errors import ValidationError
from repro.model.identifiers import is_attack_id

#: Parameter maps are stored as sorted ``(key, value)`` tuples.
ParamItems = tuple[tuple[str, Any], ...]


def freeze_params(params: Mapping[str, Any] | None) -> ParamItems:
    """Normalise a parameter mapping into sorted key/value tuples.

    Set-valued parameters (the ``controls`` set) are normalised to sorted
    tuples so the result is hashable and order-independent.
    """
    if not params:
        return ()
    items = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, (set, frozenset)):
            value = tuple(sorted(value))
        items.append((key, value))
    return tuple(items)


def thaw_params(items: ParamItems) -> dict[str, Any]:
    """Rebuild a keyword-argument dict from frozen parameter items.

    ``controls`` tuples are rebuilt as frozensets (the type the scenario
    constructors validate against).
    """
    params: dict[str, Any] = {}
    for key, value in items:
        if key == "controls" and isinstance(value, (list, tuple)):
            value = frozenset(value)
        params[key] = value
    return params


@functools.lru_cache(maxsize=None)
def resolve_factory(path: str) -> Callable[..., Any]:
    """Resolve a ``"package.module:attribute"`` dotted factory path.

    Resolutions are cached per process: campaign workers build one
    scenario per variant, and re-walking ``importlib`` plus ``getattr``
    for every variant is pure overhead.  The cache is fork/spawn-safe by
    construction -- it holds only module attributes, each worker process
    re-resolves (and re-caches) from its own interpreter state, and
    failed resolutions are never cached (``lru_cache`` does not memoise
    exceptions).
    """
    module_name, sep, attribute = path.partition(":")
    if not sep or not module_name or not attribute:
        raise ValidationError(
            f"factory path must look like 'pkg.module:attr', got {path!r}"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attribute)
    except AttributeError as exc:
        raise ValidationError(
            f"module {module_name!r} has no attribute {attribute!r}"
        ) from exc


@functools.lru_cache(maxsize=None)
def factory_accepts(path: str, keyword: str) -> bool:
    """Whether the factory at ``path`` accepts ``keyword`` as an argument.

    Used to pass engine-level knobs (the campaign's ``trace_mode``) only
    to factories that understand them, so custom registries with plain
    factories keep working.  Cached per process alongside
    :func:`resolve_factory`.
    """
    factory = resolve_factory(path)
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspection
        return False
    parameters = signature.parameters
    if keyword in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


@functools.lru_cache(maxsize=None)
def _merged_base(defaults: ParamItems, topology: ParamItems) -> dict[str, Any]:
    """The defaults+topology layer of :meth:`ScenarioSpec.build`, cached.

    A campaign batch builds hundreds of scenarios from the same spec;
    thawing the identical two base layers each time is pure overhead.
    Callers must **copy** the returned dict before mutating it.
    """
    merged = thaw_params(defaults)
    merged.update(thaw_params(topology))
    return merged


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One registered SUT configuration, expressed as data.

    Attributes:
        name: Registry key, e.g. ``"uc1-construction-site"``.
        use_case: Which use-case module owns the bound attacks
            (``"uc1"`` or ``"uc2"``).
        factory: Dotted path to the scenario class/factory.
        description: One-line human summary.
        defaults: Spec-level parameter overrides applied under every
            variant's own parameters.
    """

    name: str
    use_case: str
    factory: str
    description: str = ""
    defaults: ParamItems = ()
    topology: ParamItems = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("scenario spec needs a name")
        if self.use_case not in ("uc1", "uc2"):
            raise ValidationError(
                f"spec {self.name!r}: unknown use case {self.use_case!r}"
            )
        for key, value in self.topology:
            if key == "fleet_size" and (
                not isinstance(value, int) or value < 1
            ):
                raise ValidationError(
                    f"spec {self.name!r}: fleet_size must be a positive "
                    f"int, got {value!r}"
                )

    @property
    def topology_keys(self) -> frozenset[str]:
        """The topology/fleet parameter names this spec understands.

        Campaign-level knobs (``--fleet``, ``--rsu-range``) only apply
        to variants whose spec declares the matching key here -- a UC2
        keyless-entry run has no fleet to size.
        """
        return frozenset(key for key, _value in self.topology)

    @property
    def fleet_capable(self) -> bool:
        """True when the spec models a sizeable fleet."""
        return "fleet_size" in self.topology_keys

    def build(
        self,
        params: Mapping[str, Any] | ParamItems | None = None,
        *,
        trace_mode: str | None = None,
    ) -> Any:
        """Instantiate the scenario with defaults + topology + ``params``.

        Precedence (low to high): spec ``defaults``, spec ``topology``
        parameters, then the variant's own ``params``.

        ``trace_mode`` (the campaign's lean/full event-trace switch) is
        forwarded only when the factory accepts the keyword and the
        parameter layers did not already pin one -- factories that
        predate trace modes keep working unchanged.
        """
        try:
            merged = dict(_merged_base(self.defaults, self.topology))
        except TypeError:  # unhashable custom parameter values
            merged = thaw_params(self.defaults)
            merged.update(thaw_params(self.topology))
        if params:
            if isinstance(params, tuple):
                merged.update(thaw_params(params))
            else:
                merged.update(thaw_params(freeze_params(params)))
        if (
            trace_mode is not None
            and "trace_mode" not in merged
            and factory_accepts(self.factory, "trace_mode")
        ):
            merged["trace_mode"] = trace_mode
        return resolve_factory(self.factory)(**merged)


@dataclasses.dataclass(frozen=True)
class VariantSpec:
    """One executable point in a scenario's design space (pure data).

    Attributes:
        variant_id: Unique id within the registry,
            e.g. ``"uc1/ablation/ad20-no-flooding-detector"``.
        scenario: Name of the owning :class:`ScenarioSpec`.
        family: Variant family ("baseline", "control-ablation", ...).
        params: Scenario constructor overrides.
        attack: ``None`` (unattacked sweep), a bound attack description
            id (``"AD20"``) executed through the use case's Step-4
            binding, or a key into the parametric attack catalog.
        attack_params: Parameters for a catalog attack.
        duration_ms: Run horizon override (``None``: the binding's or
            scenario's default).
        deadline_s: Per-variant wall-clock budget (``None``: the
            campaign-level default, if any).  A run that takes longer
            reports a ``DeadlineExceededError``-typed error outcome.
        description: One-line human summary.
    """

    variant_id: str
    scenario: str
    family: str
    params: ParamItems = ()
    attack: str | None = None
    attack_params: ParamItems = ()
    duration_ms: float | None = None
    deadline_s: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.variant_id:
            raise ValidationError("variant needs an id")
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise ValidationError(
                f"variant {self.variant_id}: duration must be positive"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValidationError(
                f"variant {self.variant_id}: deadline must be positive"
            )
        if self.uses_bound_attack and self.attack_params:
            # Bound attacks run their Step-4 binding verbatim; silently
            # dropping sweep parameters would mislabel identical runs.
            raise ValidationError(
                f"variant {self.variant_id}: bound attack "
                f"{self.attack} takes no attack_params (use scenario "
                "params, or a catalog attack for parameter sweeps)"
            )

    @property
    def uses_bound_attack(self) -> bool:
        """True when ``attack`` names a bound attack description (ADnn)."""
        return self.attack is not None and is_attack_id(self.attack)

    def params_dict(self) -> dict[str, Any]:
        """The scenario constructor overrides as keyword arguments."""
        return thaw_params(self.params)

    def attack_params_dict(self) -> dict[str, Any]:
        """The catalog-attack parameters as keyword arguments."""
        return thaw_params(self.attack_params)

    def to_payload(self) -> dict[str, Any]:
        """Plain-dict form for transport to worker processes."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "VariantSpec":
        """Rebuild a variant from :meth:`to_payload` output."""
        data = dict(payload)
        for key in ("params", "attack_params"):
            data[key] = tuple(
                (item[0], tuple(item[1]) if isinstance(item[1], list) else item[1])
                for item in data.get(key, ())
            )
        return cls(**data)


__all__ = [
    "ParamItems",
    "ScenarioSpec",
    "VariantSpec",
    "factory_accepts",
    "freeze_params",
    "resolve_factory",
    "thaw_params",
]
