"""The engine's kernel surface: one substrate for every scenario.

The implementation lives in :mod:`repro.sim.kernel` -- the kernel *is*
simulation substrate and must load inside the ``repro.sim`` package's
own import order (``repro.sim.scenarios`` builds on it).  This module is
the engine-facing name for it: registry, campaign and downstream code
import :class:`SimKernel` / :class:`KernelScenario` /
:class:`ScenarioResult` from here, keeping the engine package the single
architectural seam future scaling work plugs into.
"""

from repro.sim.kernel import KernelScenario, ScenarioResult, SimKernel

__all__ = ["KernelScenario", "ScenarioResult", "SimKernel"]
