"""The parametric attack catalog variant families arm injectors from.

Bound attack descriptions (``AD20``, ``AD08``, ...) execute through the
use cases' Step-4 bindings with their published oracles.  The sweeps the
registry generates (attacker timing, density, ablations) instead need
*parameterisable* attacks: the catalog maps a stable key to an armer
function ``(scenario, **params) -> injector | None`` so a
:class:`~repro.engine.spec.VariantSpec` can carry the attack as pure data
(key + parameter tuples) and any worker process can re-arm it.

Catalog keys:

===================  =====================================================
``flood``            :class:`FloodingAttack` on a named medium
``jam``              :class:`JammingAttack` window on a named medium
``spoof-speed-limit``  UC1 fake signage from an unprovisioned sender
``replay-open``      UC2 capture + replay of the owner's open command
``forge-keys``       UC2 electronic-key id sweep (AD08 family)
``owner-cycle``      UC2 legitimate open/close cycles (no attacker)
===================  =====================================================
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.attacks import (
    FloodingAttack,
    JammingAttack,
    KeyForgeryAttack,
    ReplayAttack,
    SpoofingAttack,
)

#: An armer: builds, schedules and returns the injector (or None when the
#: "attack" is pure legitimate traffic, e.g. owner cycles).
Armer = Callable[..., Any]


def _medium_of(scenario: Any, attribute: str) -> Any:
    medium = getattr(scenario, attribute, None)
    if medium is None:
        raise SimulationError(
            f"scenario {type(scenario).__name__} has no medium {attribute!r}"
        )
    return medium


def arm_flood(
    scenario: Any,
    medium: str = "v2x",
    kind: str = "cam_message",
    interval_ms: float = 1.0,
    launch_ms: float = 100.0,
    duration_ms: float = 5000.0,
    authenticated: bool = True,
    chaotic: bool = False,
) -> FloodingAttack:
    """Packet flooding from an (optionally provisioned) attacker sender."""
    attack = FloodingAttack(
        "attacker",
        scenario.clock,
        _medium_of(scenario, medium),
        kind=kind,
        interval_ms=interval_ms,
        duration_ms=duration_ms,
        keystore=scenario.keystore if authenticated else None,
        authenticated=authenticated,
        chaotic=chaotic,
        location=getattr(scenario, "RSU_LOCATION", ""),
    )
    attack.launch(launch_ms)
    return attack


def arm_jam(
    scenario: Any,
    medium: str = "v2x",
    launch_ms: float = 100.0,
    duration_ms: float = 5000.0,
) -> JammingAttack:
    """RF jamming window on a named medium."""
    attack = JammingAttack(
        "jammer", scenario.clock, _medium_of(scenario, medium),
        duration_ms=duration_ms,
    )
    attack.launch(launch_ms)
    return attack


def arm_spoof_speed_limit(
    scenario: Any,
    launch_ms: float = 3000.0,
    count: int = 5,
    gap_ms: float = 200.0,
    speed_limit_mps: float = 60.0,
) -> SpoofingAttack:
    """UC1: fake 'limit lifted' signage from an unprovisioned sender."""
    from repro.sim.v2x import KIND_SPEED_LIMIT

    attack = SpoofingAttack(
        "ghost-rsu",
        scenario.clock,
        scenario.v2x,
        kind=KIND_SPEED_LIMIT,
        claimed_sender="ghost-rsu",
        payload={"speed_limit_mps": speed_limit_mps},
        location=scenario.RSU_LOCATION,
    )
    attack.launch(launch_ms, count=count, gap_ms=gap_ms)
    return attack


def arm_replay_open(
    scenario: Any,
    open_at_ms: float = 1000.0,
    close_at_ms: float = 2500.0,
    replay_at_ms: float = 8000.0,
    count: int = 1,
) -> ReplayAttack:
    """UC2: record the owner's open command and replay it later."""
    from repro.sim.ble import KIND_OPEN

    attack = ReplayAttack(
        "eve", scenario.clock, scenario.ble, capture_kinds={KIND_OPEN}
    )
    scenario.owner_opens(open_at_ms)
    scenario.owner_closes(close_at_ms)
    attack.replay(at_ms=replay_at_ms, count=count)
    return attack


def arm_forge_keys(
    scenario: Any,
    strategy: str = "random",
    attempts: int = 20,
    gap_ms: float = 150.0,
    seed: int = 42,
    launch_ms: float = 500.0,
) -> KeyForgeryAttack:
    """UC2: sweep forged electronic-key ids over an authenticated link."""
    attack = KeyForgeryAttack(
        "attacker-phone",
        scenario.clock,
        scenario.ble,
        scenario.keystore,
        strategy=strategy,
        attempts=attempts,
        gap_ms=gap_ms,
        seed=seed,
    )
    attack.launch(launch_ms)
    return attack


def arm_owner_cycle(
    scenario: Any,
    cycles: int = 1,
    first_open_ms: float = 1000.0,
    cycle_gap_ms: float = 3000.0,
    close_after_ms: float = 1500.0,
) -> None:
    """UC2: legitimate open/close cycles (exercises SG03 deadlines)."""
    for index in range(cycles):
        start = first_open_ms + index * cycle_gap_ms
        scenario.owner_opens(start)
        scenario.owner_closes(start + close_after_ms)
    return None


ATTACK_CATALOG: dict[str, Armer] = {
    "flood": arm_flood,
    "jam": arm_jam,
    "spoof-speed-limit": arm_spoof_speed_limit,
    "replay-open": arm_replay_open,
    "forge-keys": arm_forge_keys,
    "owner-cycle": arm_owner_cycle,
}


def arm_catalog_attack(scenario: Any, key: str, params: dict[str, Any]) -> Any:
    """Arm the catalog attack ``key`` on a built scenario."""
    if key not in ATTACK_CATALOG:
        raise SimulationError(
            f"unknown catalog attack {key!r} "
            f"(known: {sorted(ATTACK_CATALOG)})"
        )
    return ATTACK_CATALOG[key](scenario, **params)


__all__ = [
    "ATTACK_CATALOG",
    "arm_catalog_attack",
    "arm_flood",
    "arm_forge_keys",
    "arm_jam",
    "arm_owner_cycle",
    "arm_replay_open",
    "arm_spoof_speed_limit",
]
