"""The scenario engine: one kernel, a declarative registry, a campaign runner.

The seed reproduction hard-coded exactly two SUT configurations and ran
every benchmark serially.  This package is the architectural seam that
replaces that:

* :mod:`repro.engine.kernel` -- a single discrete-event kernel
  (:class:`SimKernel`) bundling the clock, event bus, keystore, world and
  all communication media behind the :class:`~repro.sim.network.Medium`
  interface, plus :class:`KernelScenario`, the base class every SUT
  assembly builds on;
* :mod:`repro.engine.spec` -- declarative :class:`ScenarioSpec` /
  :class:`VariantSpec` data objects: a scenario is a dotted factory path
  plus parameters, a variant is a pure-data parameter override (and is
  therefore trivially picklable for worker processes);
* :mod:`repro.engine.registry` -- the :class:`ScenarioRegistry` holding
  the stock UC1/UC2 specs and the parametric variant families (control
  ablations, attacker timing, traffic density, zone geometry);
* :mod:`repro.engine.attacks` -- the parametric attack catalog variant
  families arm injectors from;
* :mod:`repro.engine.campaign` -- the batch runner fanning
  scenario x attack x control combinations across any
  :mod:`repro.runtime` execution backend (serial, thread, process),
  streaming outcomes and aggregating verdicts;
* :mod:`repro.engine.batch` -- family batching: :class:`BatchPlan`
  groups same-``(scenario, family)`` variants so
  :class:`~repro.runtime.BatchedBackend` workers build shared setup
  (factory resolution, bound attacks, key material) once per batch.

Submodules are imported lazily (PEP 562) so that
``repro.sim.scenarios`` can import :mod:`repro.engine.kernel` without
pulling the registry (which needs the scenarios) back in.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS = {
    "SimKernel": "repro.engine.kernel",
    "KernelScenario": "repro.engine.kernel",
    "ScenarioResult": "repro.engine.kernel",
    "ParamItems": "repro.engine.spec",
    "ScenarioSpec": "repro.engine.spec",
    "VariantSpec": "repro.engine.spec",
    "factory_accepts": "repro.engine.spec",
    "freeze_params": "repro.engine.spec",
    "resolve_factory": "repro.engine.spec",
    "thaw_params": "repro.engine.spec",
    "BOUND_ATTACKS": "repro.engine.registry",
    "FamilyGenerator": "repro.engine.registry",
    "ScenarioRegistry": "repro.engine.registry",
    "UC1_FLEET_SCENARIO": "repro.engine.registry",
    "UC1_SCENARIO": "repro.engine.registry",
    "UC2_SCENARIO": "repro.engine.registry",
    "apply_topology_overrides": "repro.engine.registry",
    "default_registry": "repro.engine.registry",
    "BatchContext": "repro.engine.batch",
    "BatchPlan": "repro.engine.batch",
    "VariantBatch": "repro.engine.batch",
    "execute_batch": "repro.engine.batch",
    "execute_batch_in_process": "repro.engine.batch",
    "run_batch_payload": "repro.engine.batch",
    "CAMPAIGN_TRACE_MODE": "repro.engine.campaign",
    "CampaignMemo": "repro.engine.campaign",
    "CampaignRunner": "repro.engine.campaign",
    "CampaignResult": "repro.engine.campaign",
    "ERROR_VERDICT": "repro.engine.campaign",
    "VariantOutcome": "repro.engine.campaign",
    "error_outcome": "repro.engine.campaign",
    "execute_variant": "repro.engine.campaign",
    "iter_campaign": "repro.engine.campaign",
    "run_campaign": "repro.engine.campaign",
    "ATTACK_CATALOG": "repro.engine.attacks",
    "arm_catalog_attack": "repro.engine.attacks",
    "arm_flood": "repro.engine.attacks",
    "arm_forge_keys": "repro.engine.attacks",
    "arm_jam": "repro.engine.attacks",
    "arm_owner_cycle": "repro.engine.attacks",
    "arm_replay_open": "repro.engine.attacks",
    "arm_spoof_speed_limit": "repro.engine.attacks",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
