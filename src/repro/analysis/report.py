"""Schema-stable lint reports: findings, JSON documents, delta mode.

The static-verification plane mirrors the conventions of
:mod:`repro.bench`: one frozen pure-data record per observation
(:class:`Finding`), a schema-tagged JSON document a CI job can archive
(:func:`build_report` / :func:`validate_lint_payload`), and a delta mode
(:func:`diff_findings`) so a gate can move from "zero findings" to "no
*new* findings" if the rule catalog grows stricter than the codebase.

Findings are keyed without line numbers (:meth:`Finding.key`) so a
baseline survives unrelated edits shifting code up or down a file.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ValidationError

#: Schema tag embedded in every lint document; bump on breaking change.
LINT_SCHEMA = "repro.lint/v1"

#: Finding severities (``error`` gates CI; ``warning`` is advisory).
SEVERITIES = ("error", "warning")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one location (pure data, orderable).

    Attributes:
        code: Stable rule code (``REP004``, ``SPC001``, ...).
        message: Human explanation; never embeds the line number, so
            findings key stably across unrelated edits.
        path: Repo-relative posix path, or a virtual location such as
            ``registry`` / ``dsl:uc1`` for non-file checks.
        line: 1-based line, or 0 for file- and registry-level findings.
        symbol: Optional anchor inside the path (function name, variant
            id, attack block id) used in the line-free baseline key.
        severity: ``"error"`` or ``"warning"``.
    """

    code: str
    message: str
    path: str
    line: int = 0
    symbol: str = ""
    severity: str = "error"

    def __post_init__(self) -> None:
        if not self.code:
            raise ValidationError("finding needs a rule code")
        if not self.message:
            raise ValidationError(f"finding {self.code}: needs a message")
        if self.severity not in SEVERITIES:
            raise ValidationError(
                f"finding {self.code}: severity must be one of "
                f"{SEVERITIES}, got {self.severity!r}"
            )

    def key(self) -> tuple[str, str, str, str]:
        """Line-free identity used by the ``--diff`` baseline mode."""
        return (self.code, self.path, self.symbol, self.message)

    def render(self) -> str:
        """One-line human form (``path:line: CODE message``)."""
        location = f"{self.path}:{self.line}" if self.line else self.path
        anchor = f" [{self.symbol}]" if self.symbol else ""
        return f"{location}: {self.code}{anchor} {self.message}"

    def to_payload(self) -> dict[str, Any]:
        """Plain-dict (JSON-ready) form."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "severity": self.severity,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_payload` output."""
        if not isinstance(payload, Mapping):
            raise ValidationError("finding payload must be a mapping")
        return cls(
            code=payload.get("code", ""),
            message=payload.get("message", ""),
            path=payload.get("path", ""),
            line=int(payload.get("line", 0)),
            symbol=payload.get("symbol", ""),
            severity=payload.get("severity", "error"),
        )


def sort_findings(findings: Iterable[Finding]) -> tuple[Finding, ...]:
    """Deterministic report order: path, line, code, symbol."""
    return tuple(
        sorted(findings, key=lambda f: (f.path, f.line, f.code, f.symbol))
    )


def build_report(
    findings: Iterable[Finding],
    *,
    checked_files: int,
    rules: Iterable[Mapping[str, str]] = (),
) -> dict[str, Any]:
    """The schema-stable lint document (the ``LINT.json`` payload)."""
    ordered = sort_findings(findings)
    counts: dict[str, int] = {}
    for finding in ordered:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return {
        "schema": LINT_SCHEMA,
        "checked_files": checked_files,
        "total": len(ordered),
        "counts": dict(sorted(counts.items())),
        "rules": [dict(rule) for rule in rules],
        "findings": [finding.to_payload() for finding in ordered],
    }


def validate_lint_payload(payload: Mapping[str, Any]) -> None:
    """Assert a document obeys the ``repro.lint/v1`` schema.

    Raises:
        ValidationError: naming the first violated constraint.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError("lint payload must be a mapping")
    if payload.get("schema") != LINT_SCHEMA:
        raise ValidationError(
            f"lint schema mismatch: got {payload.get('schema')!r}, "
            f"expected {LINT_SCHEMA!r}"
        )
    for field in ("checked_files", "total"):
        if not isinstance(payload.get(field), int):
            raise ValidationError(f"lint payload field {field!r} must be int")
    if not isinstance(payload.get("counts"), Mapping):
        raise ValidationError("lint payload field 'counts' must be a mapping")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        raise ValidationError("lint payload field 'findings' must be a list")
    if payload["total"] != len(findings):
        raise ValidationError(
            f"lint payload total={payload['total']} does not match "
            f"{len(findings)} finding(s)"
        )
    for item in findings:
        Finding.from_payload(item)  # raises on malformed entries


def findings_from_payload(payload: Mapping[str, Any]) -> tuple[Finding, ...]:
    """Rebuild the findings of a validated lint document."""
    validate_lint_payload(payload)
    return tuple(
        Finding.from_payload(item) for item in payload.get("findings", [])
    )


def load_report(path: str | Path) -> tuple[Finding, ...]:
    """Read + validate a ``LINT.json`` baseline file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not a lint document: {exc}") from exc
    return findings_from_payload(payload)


def write_report(
    payload: Mapping[str, Any], out_dir: str | Path
) -> Path:
    """Write the canonical ``LINT.json`` under ``out_dir``."""
    validate_lint_payload(payload)
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "LINT.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return path


def diff_findings(
    fresh: Iterable[Finding], baseline: Iterable[Finding]
) -> tuple[Finding, ...]:
    """Findings in ``fresh`` whose line-free key is absent from
    ``baseline`` -- the ``repro lint --diff`` gate (the mirror image of
    ``repro bench --compare``: known debt passes, new debt fails)."""
    known = {finding.key() for finding in baseline}
    return sort_findings(
        finding for finding in fresh if finding.key() not in known
    )


def render_report(payload: Mapping[str, Any]) -> str:
    """Human form of a lint document (one line per finding + a total)."""
    validate_lint_payload(payload)
    lines = [
        Finding.from_payload(item).render()
        for item in payload.get("findings", [])
    ]
    checked = payload.get("checked_files", 0)
    total = payload.get("total", 0)
    if total:
        lines.append(
            f"{total} finding(s) across {checked} checked file(s)"
        )
    else:
        lines.append(f"clean: 0 findings across {checked} checked file(s)")
    return "\n".join(lines)


__all__ = [
    "Finding",
    "LINT_SCHEMA",
    "SEVERITIES",
    "build_report",
    "diff_findings",
    "findings_from_payload",
    "load_report",
    "render_report",
    "sort_findings",
    "validate_lint_payload",
    "write_report",
]
