"""Static verification plane: lint rules, spec checks, typed reports.

``repro.analysis`` moves the repository's reproducibility invariants
from scattered runtime tests to *static* checks that run before any
variant executes:

* :mod:`repro.analysis.astlint` -- the AST linter engine (module model,
  ``noqa`` suppression, file walking);
* :mod:`repro.analysis.rules` -- the codified rule catalog (``REP001``
  .. ``REP008``: multiprocessing isolation, hot-path determinism,
  hygiene, export contracts, lean-trace topic discipline);
* :mod:`repro.analysis.speccheck` -- registry/DSL validation without
  executing a single variant (``SPC001`` .. ``SPC009``);
* :mod:`repro.analysis.report` -- schema-stable ``repro.lint/v1`` JSON
  documents with a ``--diff`` baseline mode, mirroring
  :mod:`repro.bench`.

The ``repro lint`` CLI subcommand (and the CI ``lint`` job) is a thin
shell over :func:`lint_paths` + :func:`check_all` + :func:`build_report`.
"""

from repro.analysis.astlint import (
    ModuleUnderLint,
    NOQA_CODE,
    Rule,
    Suppression,
    apply_suppressions,
    iter_python_files,
    lint_paths,
    lint_source,
    module_name_for,
    parse_module,
    parse_suppressions,
    run_rules,
)
from repro.analysis.report import (
    Finding,
    LINT_SCHEMA,
    SEVERITIES,
    build_report,
    diff_findings,
    findings_from_payload,
    load_report,
    render_report,
    sort_findings,
    validate_lint_payload,
    write_report,
)
from repro.analysis.rules import (
    BareExceptRule,
    ExportContractRule,
    MultiprocessingIsolationRule,
    MutableDefaultRule,
    NumpyIsolationRule,
    PrintInLibraryRule,
    RULE_TYPES,
    RetainedTopicRule,
    ServiceIsolationRule,
    SleepRetryLoopRule,
    UnseededRandomnessRule,
    WallClockRule,
    default_rules,
    rule_catalog,
    rules_by_code,
)
from repro.analysis.speccheck import (
    DSL_PATH,
    MAX_FLEET_SIZE,
    REGISTRY_PATH,
    check_all,
    check_dsl,
    check_registry,
)

__all__ = [
    "BareExceptRule",
    "DSL_PATH",
    "ExportContractRule",
    "Finding",
    "LINT_SCHEMA",
    "MAX_FLEET_SIZE",
    "ModuleUnderLint",
    "MultiprocessingIsolationRule",
    "MutableDefaultRule",
    "NOQA_CODE",
    "NumpyIsolationRule",
    "PrintInLibraryRule",
    "REGISTRY_PATH",
    "RULE_TYPES",
    "RetainedTopicRule",
    "Rule",
    "SEVERITIES",
    "ServiceIsolationRule",
    "SleepRetryLoopRule",
    "Suppression",
    "UnseededRandomnessRule",
    "WallClockRule",
    "apply_suppressions",
    "build_report",
    "check_all",
    "check_dsl",
    "check_registry",
    "default_rules",
    "diff_findings",
    "findings_from_payload",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_report",
    "module_name_for",
    "parse_module",
    "parse_suppressions",
    "render_report",
    "rule_catalog",
    "rules_by_code",
    "run_rules",
    "sort_findings",
    "validate_lint_payload",
    "write_report",
]
