"""Optional-dependency isolation: REP010.

numpy is the optional ``repro[perf]`` extra, never a hard dependency:
the whole tier-1 suite must pass on the pure-Python fallback (the
no-numpy CI leg).  By architectural contract (PR 9) only the SoA
spatial-kernel modules -- :mod:`repro.sim.topology` and
:mod:`repro.sim.world` -- may import it, and even there only behind a
``try: import numpy ... except ImportError`` guard so the import never
becomes load-bearing.  A numpy import anywhere else (or an unguarded
one inside the kernel) silently turns the extra into a requirement and
breaks the fallback leg.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astlint import ModuleUnderLint
from repro.analysis.report import Finding

#: The designated SoA spatial-kernel modules (exact dotted names).
_SOA_MODULES = frozenset({"repro.sim.topology", "repro.sim.world"})

#: Exception names that make a ``try`` a valid optional-import guard.
_GUARD_EXCEPTIONS = frozenset({"ImportError", "ModuleNotFoundError"})


class NumpyIsolationRule:
    """REP010: numpy only in the SoA kernel, behind an import guard."""

    code = "REP010"
    name = "numpy-outside-spatial-kernel"
    summary = (
        "numpy (the optional [perf] extra) may only be imported by the "
        "SoA spatial-kernel modules (repro.sim.topology, "
        "repro.sim.world), inside a try/except ImportError guard"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        allowed = module.module in _SOA_MODULES
        guarded = _guarded_imports(module.tree) if allowed else frozenset()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                if not any(
                    self._is_numpy(alias.name) for alias in node.names
                ):
                    continue
            elif isinstance(node, ast.ImportFrom):
                if not (node.module and self._is_numpy(node.module)):
                    continue
            else:
                continue
            if not allowed:
                yield module.finding(
                    self.code,
                    "numpy import outside the SoA spatial kernel (go "
                    "through repro.sim.topology / repro.sim.world, which "
                    "fall back to pure Python when numpy is absent)",
                    node=node,
                )
            elif id(node) not in guarded:
                yield module.finding(
                    self.code,
                    "unguarded numpy import in a spatial-kernel module "
                    "(wrap it in try/except ImportError: numpy is the "
                    "optional [perf] extra, never a hard dependency)",
                    node=node,
                )

    @staticmethod
    def _is_numpy(dotted: str) -> bool:
        return dotted == "numpy" or dotted.startswith("numpy.")


def _guarded_imports(tree: ast.Module) -> frozenset[int]:
    """``id()`` of every import node sitting in an ImportError guard."""
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        if not any(
            _catches_import_error(handler) for handler in node.handlers
        ):
            continue
        for child in node.body:
            for descendant in ast.walk(child):
                if isinstance(descendant, (ast.Import, ast.ImportFrom)):
                    guarded.add(id(descendant))
    return frozenset(guarded)


def _catches_import_error(handler: ast.ExceptHandler) -> bool:
    """Whether one ``except`` clause catches ImportError."""
    caught = handler.type
    if caught is None:  # bare except -- catches everything, REP005's beat
        return True
    names = caught.elts if isinstance(caught, ast.Tuple) else [caught]
    return any(
        isinstance(name, ast.Name) and name.id in _GUARD_EXCEPTIONS
        for name in names
    )


__all__ = ["NumpyIsolationRule"]
