"""Runtime-isolation invariant: REP001.

:mod:`repro.runtime` is, by architectural contract (PR 3), the **only**
module allowed to touch :mod:`multiprocessing`: it owns start-method
selection, worker seeding and pickling discipline.  A second
multiprocessing import site would fork its own undisciplined workers and
break the deterministic per-job seed derivation the golden-verdict
parity gate relies on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astlint import ModuleUnderLint
from repro.analysis.report import Finding

#: The one package allowed to import multiprocessing.
_ALLOWED_PACKAGE = "repro.runtime"


class MultiprocessingIsolationRule:
    """REP001: ``multiprocessing`` only inside ``repro.runtime``."""

    code = "REP001"
    name = "multiprocessing-outside-runtime"
    summary = (
        "only repro.runtime may import multiprocessing; every other "
        "module goes through the ExecutionBackend protocol"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if module.in_package(_ALLOWED_PACKAGE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_multiprocessing(alias.name):
                        yield self._finding(module, node)
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.module and self._is_multiprocessing(node.module):
                    yield self._finding(module, node)

    @staticmethod
    def _is_multiprocessing(dotted: str) -> bool:
        return dotted == "multiprocessing" or dotted.startswith(
            "multiprocessing."
        )

    def _finding(self, module: ModuleUnderLint, node: ast.AST) -> Finding:
        return module.finding(
            self.code,
            "multiprocessing import outside repro.runtime (use the "
            "ExecutionBackend protocol instead)",
            node=node,
        )


__all__ = ["MultiprocessingIsolationRule"]
