"""Subsystem-isolation invariants: REP001 and REP009.

:mod:`repro.runtime` is, by architectural contract (PR 3), the **only**
module allowed to touch :mod:`multiprocessing`: it owns start-method
selection, worker seeding and pickling discipline.  A second
multiprocessing import site would fork its own undisciplined workers and
break the deterministic per-job seed derivation the golden-verdict
parity gate relies on.

The same shape of contract scopes the campaign service plane (PR 8):
:mod:`repro.service` is the only package allowed to import socket and
server machinery (``socket``, ``socketserver``, ``asyncio``,
``selectors``, ``http``).  Everything else talks to a daemon through
:class:`~repro.service.ServiceClient`, so the engine stays a pure
library -- importable, testable and picklable without ever owning a
port.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astlint import ModuleUnderLint
from repro.analysis.report import Finding

#: The one package allowed to import multiprocessing.
_ALLOWED_PACKAGE = "repro.runtime"


class MultiprocessingIsolationRule:
    """REP001: ``multiprocessing`` only inside ``repro.runtime``."""

    code = "REP001"
    name = "multiprocessing-outside-runtime"
    summary = (
        "only repro.runtime may import multiprocessing; every other "
        "module goes through the ExecutionBackend protocol"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if module.in_package(_ALLOWED_PACKAGE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_multiprocessing(alias.name):
                        yield self._finding(module, node)
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.module and self._is_multiprocessing(node.module):
                    yield self._finding(module, node)

    @staticmethod
    def _is_multiprocessing(dotted: str) -> bool:
        return dotted == "multiprocessing" or dotted.startswith(
            "multiprocessing."
        )

    def _finding(self, module: ModuleUnderLint, node: ast.AST) -> Finding:
        return module.finding(
            self.code,
            "multiprocessing import outside repro.runtime (use the "
            "ExecutionBackend protocol instead)",
            node=node,
        )


#: The one package allowed to import socket/server machinery.
_SERVICE_PACKAGE = "repro.service"

#: Top-level modules that constitute "socket/server machinery".
_SERVER_MODULES = frozenset(
    {"socket", "socketserver", "asyncio", "selectors", "http"}
)


class ServiceIsolationRule:
    """REP009: socket/server imports only inside ``repro.service``."""

    code = "REP009"
    name = "server-machinery-outside-service"
    summary = (
        "only repro.service may import socket/asyncio/server modules; "
        "every other module talks to a daemon through ServiceClient"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if module.in_package(_SERVICE_PACKAGE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_server_module(alias.name):
                        yield self._finding(module, node, alias.name)
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.module and self._is_server_module(node.module):
                    yield self._finding(module, node, node.module)

    @staticmethod
    def _is_server_module(dotted: str) -> bool:
        return dotted.split(".", 1)[0] in _SERVER_MODULES

    def _finding(
        self, module: ModuleUnderLint, node: ast.AST, name: str
    ) -> Finding:
        return module.finding(
            self.code,
            f"{name.split('.', 1)[0]} import outside repro.service (talk "
            "to the campaign daemon through ServiceClient instead)",
            node=node,
        )


__all__ = ["MultiprocessingIsolationRule", "ServiceIsolationRule"]
