"""General code-hygiene invariants: REP004, REP005, REP008.

These fire on every linted module: mutable default arguments and bare
``except:`` clauses corrupt reproducibility silently (shared state
drifting between variants, swallowed ``KeyboardInterrupt`` in campaign
workers), and ``print()`` in library code bypasses the structured
result/report plane the CLI and CI gates read.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astlint import ModuleUnderLint
from repro.analysis.report import Finding

#: Builtin constructors whose call as a default shares one instance
#: across every call of the function.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

#: Modules allowed to print: the user-facing shells.
_PRINT_EXEMPT = ("repro.cli", "repro.__main__")


def _function_nodes(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class MutableDefaultRule:
    """REP004: no mutable default arguments."""

    code = "REP004"
    name = "mutable-default-argument"
    summary = (
        "default argument values must be immutable; a list/dict/set "
        "default is shared across calls and drifts between variants"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for function in _function_nodes(module.tree):
            defaults = list(function.args.defaults) + [
                default
                for default in function.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._mutable(default):
                    yield module.finding(
                        self.code,
                        f"mutable default argument in {function.name}()",
                        node=default,
                        symbol=function.name,
                    )

    @staticmethod
    def _mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )


class BareExceptRule:
    """REP005: no bare ``except:`` clauses."""

    code = "REP005"
    name = "bare-except"
    summary = (
        "except clauses must name an exception type; bare except "
        "swallows KeyboardInterrupt/SystemExit and hides worker faults"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield module.finding(
                    self.code,
                    "bare 'except:' clause (name the exception type, "
                    "or use 'except Exception:')",
                    node=node,
                )


class PrintInLibraryRule:
    """REP008: no ``print()`` in library code."""

    code = "REP008"
    name = "print-in-library"
    summary = (
        "library modules must not print(); results flow through the "
        "typed results/report plane, only the CLI shell prints"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if module.module in _PRINT_EXEMPT:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield module.finding(
                    self.code,
                    "print() call in library code (return data or raise; "
                    "only repro.cli prints)",
                    node=node,
                )


__all__ = [
    "BareExceptRule",
    "MutableDefaultRule",
    "PrintInLibraryRule",
]
