"""Export-contract invariant: REP006.

Every ``repro.*`` module declares ``__all__`` and every listed name
resolves to a module-level binding.  The contract is what lets the
package ``__init__`` modules re-export exact unions (see
``tests/test_exports.py``) and what keeps the public surface reviewable:
a name missing from ``__all__`` is invisible API, a stale name is a
broken import waiting for a consumer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astlint import ModuleUnderLint
from repro.analysis.report import Finding

#: Module basenames exempt from the contract (script entry points).
_EXEMPT_STEMS = frozenset({"__main__", "conftest", "setup"})


def _bound_names(body: list[ast.stmt]) -> set[str]:
    """Names bound at module level, compound statements included.

    Recurses into ``if``/``try``/``for``/``while``/``with`` bodies so
    gated bindings (``try: import numpy ... except ImportError: numpy =
    None``) count, exactly as the import system sees them.
    """
    names: set[str] = set()
    for node in body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(node, (ast.If, ast.For, ast.While, ast.With)):
            if isinstance(node, ast.For):
                names.update(_target_names(node.target))
            names.update(_bound_names(node.body))
            names.update(_bound_names(getattr(node, "orelse", [])))
        elif isinstance(node, ast.Try):
            names.update(_bound_names(node.body))
            names.update(_bound_names(node.orelse))
            names.update(_bound_names(node.finalbody))
            for handler in node.handlers:
                names.update(_bound_names(handler.body))
    return names


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


def _all_declarations(
    tree: ast.Module,
) -> Iterator[tuple[ast.stmt, list[ast.expr] | None]]:
    """Module-level ``__all__`` assignments and their element lists.

    The element list is ``None`` for dynamic values the linter cannot
    see through (``__all__ = sorted(...)``); those satisfy presence but
    skip resolution checking.
    """
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            yield node, list(value.elts)
        else:
            yield node, None


class ExportContractRule:
    """REP006: ``__all__`` declared and every listed name resolvable."""

    code = "REP006"
    name = "export-contract"
    summary = (
        "every repro.* module declares __all__ and every __all__ entry "
        "names a module-level binding"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        stem = module.module.rpartition(".")[2]
        if stem in _EXEMPT_STEMS:
            return
        declarations = list(_all_declarations(module.tree))
        if not declarations:
            yield module.finding(
                self.code,
                "module does not declare __all__ (the export contract "
                "every repro.* module carries)",
            )
            return
        bound = _bound_names(module.tree.body)
        for node, elements in declarations:
            if elements is None:
                continue
            for element in elements:
                if not isinstance(element, ast.Constant) or not isinstance(
                    element.value, str
                ):
                    yield module.finding(
                        self.code,
                        "__all__ entries must be string literals",
                        node=node,
                    )
                    continue
                if element.value not in bound:
                    yield module.finding(
                        self.code,
                        f"__all__ lists {element.value!r} but the module "
                        "never binds that name",
                        node=element,
                        symbol=element.value,
                    )


__all__ = ["ExportContractRule"]
