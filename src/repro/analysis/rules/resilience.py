"""Fault-tolerance invariants: REP011.

Hand-rolled ``time.sleep`` retry loops scatter ad-hoc, untestable
backoff behaviour through the codebase: the delays are arbitrary, the
retried error classes are implicit, and nothing bounds the attempts.
The execution plane centralises all of that in
:class:`repro.runtime.RetryPolicy` (deterministic, seeded, transient-
class-aware), so :mod:`repro.runtime` is the only package allowed to
put a sleep inside a loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astlint import ModuleUnderLint
from repro.analysis.report import Finding
from repro.analysis.rules.determinism import _resolved_calls

#: The one package allowed a sleep-based retry loop (RetryPolicy.wait).
_RUNTIME_PACKAGE = "repro.runtime"

#: Loop constructs a sleep must not lexically sit inside.
_LOOPS = (ast.While, ast.For, ast.AsyncFor)


class SleepRetryLoopRule:
    """REP011: no ``time.sleep``-based retry loops outside the runtime."""

    code = "REP011"
    name = "sleep-retry-loop"
    summary = (
        "time.sleep inside a loop outside repro.runtime is a hand-rolled "
        "retry/poll loop; use RetryPolicy (deterministic seeded backoff, "
        "explicit transient classes) or an event wait instead"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if module.in_package(_RUNTIME_PACKAGE):
            return
        sleeps = [
            call
            for call, dotted in _resolved_calls(module)
            if dotted == "time.sleep"
        ]
        if not sleeps:
            return
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, _LOOPS):
                continue
            for child in ast.walk(node):
                if not isinstance(child, ast.Call):
                    continue
                position = (child.lineno, child.col_offset)
                if position in seen:
                    continue
                if any(child is call for call in sleeps):
                    seen.add(position)
                    yield module.finding(
                        self.code,
                        "time.sleep inside a loop (hand-rolled retry/"
                        "backoff; use repro.runtime.RetryPolicy.wait, "
                        "which is deterministic and cancellable)",
                        node=child,
                    )


__all__ = ["SleepRetryLoopRule"]
