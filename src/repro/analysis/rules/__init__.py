"""The codified-invariant rule catalog of the ``repro`` linter.

Each rule is a small, stateless object with a stable ``code``
(``REPnnn``), a slug ``name`` and a one-line ``summary``, plus a
``check(module)`` generator over one parsed
:class:`~repro.analysis.astlint.ModuleUnderLint`.  The catalog below is
the single registration point: ``repro lint`` runs exactly these, and
the README rule table is generated from the same metadata.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.astlint import Rule
from repro.analysis.rules.determinism import (
    UnseededRandomnessRule,
    WallClockRule,
)
from repro.analysis.rules.exports import ExportContractRule
from repro.analysis.rules.hygiene import (
    BareExceptRule,
    MutableDefaultRule,
    PrintInLibraryRule,
)
from repro.analysis.rules.isolation import (
    MultiprocessingIsolationRule,
    ServiceIsolationRule,
)
from repro.analysis.rules.optional_deps import NumpyIsolationRule
from repro.analysis.rules.resilience import SleepRetryLoopRule
from repro.analysis.rules.topics import RetainedTopicRule

from repro.errors import ValidationError

#: Every codified rule, in catalog (code) order.
RULE_TYPES: tuple[type, ...] = (
    MultiprocessingIsolationRule,  # REP001
    UnseededRandomnessRule,        # REP002
    WallClockRule,                 # REP003
    MutableDefaultRule,            # REP004
    BareExceptRule,                # REP005
    ExportContractRule,            # REP006
    RetainedTopicRule,             # REP007
    PrintInLibraryRule,            # REP008
    ServiceIsolationRule,          # REP009
    NumpyIsolationRule,            # REP010
    SleepRetryLoopRule,            # REP011
)


def default_rules() -> tuple[Rule, ...]:
    """Fresh instances of the full rule catalog."""
    return tuple(rule_type() for rule_type in RULE_TYPES)


def rules_by_code(codes: Sequence[str] | None = None) -> tuple[Rule, ...]:
    """The catalog filtered to ``codes`` (all rules when ``None``).

    Raises:
        ValidationError: on a code the catalog does not know.
    """
    rules = default_rules()
    if codes is None:
        return rules
    known = {rule.code: rule for rule in rules}
    unknown = [code for code in codes if code not in known]
    if unknown:
        raise ValidationError(
            f"unknown rule code(s) {unknown} (known: {sorted(known)})"
        )
    return tuple(known[code] for code in codes)


def rule_catalog() -> tuple[dict[str, str], ...]:
    """``(code, name, summary)`` metadata rows for reports and docs."""
    return tuple(
        {"code": rule.code, "name": rule.name, "summary": rule.summary}
        for rule in default_rules()
    )


__all__ = [
    "BareExceptRule",
    "ExportContractRule",
    "MultiprocessingIsolationRule",
    "MutableDefaultRule",
    "NumpyIsolationRule",
    "PrintInLibraryRule",
    "RULE_TYPES",
    "RetainedTopicRule",
    "ServiceIsolationRule",
    "SleepRetryLoopRule",
    "UnseededRandomnessRule",
    "WallClockRule",
    "default_rules",
    "rule_catalog",
    "rules_by_code",
]
