"""Hot-path determinism invariants: REP002, REP003.

Scoped to :mod:`repro.sim` and :mod:`repro.engine` -- the modules whose
behaviour must be a pure function of (spec, seed) for the golden-verdict
parity gate to mean anything.  Unseeded randomness makes two runs of the
same variant diverge; wall-clock reads leak host time into simulated
time.  (``time.perf_counter()`` stays legal: it only feeds wall-time
*metrics*, never simulation behaviour.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astlint import ModuleUnderLint
from repro.analysis.report import Finding

#: The deterministic core the two rules guard.
_HOT_PACKAGES = ("repro.sim", "repro.engine")

#: Fully-qualified wall-clock reads that leak host time.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted path they were imported as.

    ``import random as rnd`` maps ``rnd -> random``; ``from random
    import Random`` maps ``Random -> random.Random``.  Conditional
    imports count too (the map is an over-approximation: this is a
    linter, not an interpreter).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.partition(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _dotted(node: ast.expr) -> str | None:
    """The dotted name of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolved_calls(
    module: ModuleUnderLint,
) -> Iterator[tuple[ast.Call, str]]:
    """Every call whose target resolves to a dotted import path."""
    aliases = _import_aliases(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, sep, rest = dotted.partition(".")
        resolved = aliases.get(head)
        if resolved is not None:
            dotted = resolved + sep + rest if sep else resolved
        yield node, dotted


class UnseededRandomnessRule:
    """REP002: no unseeded randomness in the simulation/engine core."""

    code = "REP002"
    name = "unseeded-randomness"
    summary = (
        "repro.sim / repro.engine must derive all randomness from an "
        "explicit seed (random.Random(seed)); module-level random() "
        "makes variant verdicts irreproducible"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if not module.in_package(*_HOT_PACKAGES):
            return
        for call, dotted in _resolved_calls(module):
            if dotted == "random.random":
                yield module.finding(
                    self.code,
                    "random.random() uses the shared unseeded module "
                    "RNG (thread a seeded random.Random through)",
                    node=call,
                )
            elif dotted == "random.Random" and not call.args and not any(
                keyword.arg == "seed" for keyword in call.keywords
            ):
                yield module.finding(
                    self.code,
                    "random.Random() without an explicit seed argument",
                    node=call,
                )


class WallClockRule:
    """REP003: no wall-clock reads in the simulation/engine core."""

    code = "REP003"
    name = "wall-clock-in-hot-path"
    summary = (
        "repro.sim / repro.engine must not read the wall clock "
        "(time.time, datetime.now); simulated time comes from the "
        "Clock, wall-time metrics use time.perf_counter"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if not module.in_package(*_HOT_PACKAGES):
            return
        for call, dotted in _resolved_calls(module):
            if dotted in _WALL_CLOCK:
                yield module.finding(
                    self.code,
                    f"wall-clock call {dotted}() in the deterministic "
                    "core (use the simulation Clock, or "
                    "time.perf_counter for wall-time metrics)",
                    node=call,
                )


__all__ = ["UnseededRandomnessRule", "WallClockRule"]
