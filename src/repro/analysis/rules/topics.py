"""Lean-trace topic discipline: REP007.

Campaign workers run scenarios under the lean ``counts`` trace mode,
where the event bus only retains topics registered up front
(``RETAINED_TOPICS`` / ``bus.retain()``) and **raises** on reads outside
that set.  A scenario class that reads a topic literal it never retains
is therefore a latent campaign crash that no full-mode unit test will
catch -- exactly the class of bug this rule moves from runtime to lint
time.

Scope: classes under :mod:`repro.sim` that declare ``RETAINED_TOPICS``
(i.e. participate in lean mode).  Reads through variables or f-strings
are out of static reach and are skipped; literal reads -- the dominant
idiom -- are checked against the class's retained prefixes under the
bus's own segment-prefix matching.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astlint import ModuleUnderLint
from repro.analysis.report import Finding

#: EventBus methods that raise on unretained prefixes in counts mode.
_READ_METHODS = frozenset({"events", "last"})


def _literal_strings(node: ast.expr) -> tuple[str, ...] | None:
    """The string elements of a literal tuple/list, or None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(
            element.value, str
        ):
            return None
        values.append(element.value)
    return tuple(values)


def _retained_prefixes(class_node: ast.ClassDef) -> tuple[str, ...] | None:
    """The class's statically-known retained prefixes.

    ``None`` when the class declares no ``RETAINED_TOPICS`` (it does not
    participate in lean mode) or declares one the linter cannot read.
    Literal ``.retain("...")`` calls inside the class extend the set.
    """
    declared: tuple[str, ...] | None = None
    for statement in class_node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
            value = statement.value
        if value is None or not any(
            isinstance(target, ast.Name)
            and target.id == "RETAINED_TOPICS"
            for target in targets
        ):
            continue
        declared = _literal_strings(value)
        if declared is None:
            return None  # dynamic declaration: out of static reach
    if declared is None:
        return None
    extra = []
    for node in ast.walk(class_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "retain"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            extra.append(node.args[0].value)
    return declared + tuple(extra)


def _covered(topic: str, prefixes: tuple[str, ...]) -> bool:
    """EventBus prefix matching: '' retains everything."""
    return any(
        not prefix or topic == prefix or topic.startswith(prefix + ".")
        for prefix in prefixes
    )


class RetainedTopicRule:
    """REP007: lean-mode trace reads must be retained up front."""

    code = "REP007"
    name = "unretained-topic-read"
    summary = (
        "a sim class that declares RETAINED_TOPICS must retain every "
        "topic literal it reads via events()/last(); unretained reads "
        "raise under the campaign's lean counts mode"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if not module.in_package("repro.sim"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            prefixes = _retained_prefixes(node)
            if prefixes is None:
                continue
            yield from self._check_class(module, node, prefixes)

    def _check_class(
        self,
        module: ModuleUnderLint,
        class_node: ast.ClassDef,
        prefixes: tuple[str, ...],
    ) -> Iterator[Finding]:
        for node in ast.walk(class_node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _READ_METHODS
                and node.args
            ):
                continue
            argument = node.args[0]
            if not isinstance(argument, ast.Constant) or not isinstance(
                argument.value, str
            ):
                continue  # dynamic topic: out of static reach
            topic = argument.value
            if not _covered(topic, prefixes):
                yield module.finding(
                    self.code,
                    f"{class_node.name} reads topic {topic!r} via "
                    f".{node.func.attr}() but never retains it; add it "
                    "to RETAINED_TOPICS or the read raises under trace "
                    "mode 'counts'",
                    node=node,
                    symbol=class_node.name,
                )


__all__ = ["RetainedTopicRule"]
