"""The AST invariant linter: engine, module model and suppression.

The engine walks Python sources, parses each into an AST once, hands the
parsed :class:`ModuleUnderLint` to every registered rule (see
:mod:`repro.analysis.rules`) and filters the collected findings through
per-line ``noqa`` suppressions.

Suppression syntax
------------------

A finding is suppressed by a comment on its line::

    frobnicate()  # repro: noqa[REP008] -- CLI helper, prints by design
    frobnicate()  # repro: noqa -- blanket suppression (all rules)

The justification after ``--`` is **mandatory policy**: a suppression
without one still suppresses the target finding but emits a
:data:`NOQA_CODE` finding of its own, so unexplained debt cannot hide.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence

from repro.analysis.report import Finding, sort_findings
from repro.errors import ValidationError

#: The suppression-hygiene pseudo-rule (reasonless/unknown-code noqa).
NOQA_CODE = "REP000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\])?"
    r"(?:\s*--\s*(?P<reason>\S.*))?",
)


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa`` comment.

    Attributes:
        line: 1-based line the comment sits on (and suppresses).
        codes: Rule codes it targets; empty means *all* rules.
        reason: The justification after ``--`` (empty when missing).
    """

    line: int
    codes: tuple[str, ...] = ()
    reason: str = ""

    def covers(self, code: str) -> bool:
        """Whether this suppression silences findings of ``code``."""
        return not self.codes or code in self.codes


def parse_suppressions(source: str) -> tuple[Suppression, ...]:
    """Extract every ``# repro: noqa`` comment from a source text.

    Real comment tokens only: the text appearing inside a string or
    docstring (as in this very module) is not a suppression.
    """
    suppressions = []
    for number, text in _comment_tokens(source):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        suppressions.append(
            Suppression(
                line=number,
                codes=tuple(
                    code.strip() for code in codes.split(",")
                ) if codes else (),
                reason=(match.group("reason") or "").strip(),
            )
        )
    return tuple(suppressions)


def _comment_tokens(source: str) -> Iterator[tuple[int, str]]:
    """``(line, text)`` for every comment token in ``source``."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return  # a syntactically broken tail cannot carry suppressions


@dataclasses.dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed source module, as the rules see it.

    Attributes:
        path: Filesystem path (or a display name for string sources).
        rel: Repo-relative posix path used in findings.
        module: Dotted module name (``repro.sim.events``); rules use it
            to scope themselves (hot-path rules only fire under
            ``repro.sim`` / ``repro.engine``).
        source: The raw text.
        tree: The parsed ``ast.Module``.
        suppressions: Parsed ``noqa`` comments.
    """

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    suppressions: tuple[Suppression, ...]

    def in_package(self, *packages: str) -> bool:
        """Whether the module lives under any of the dotted packages."""
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )

    def finding(
        self,
        code: str,
        message: str,
        node: ast.AST | None = None,
        symbol: str = "",
        severity: str = "error",
    ) -> Finding:
        """Build a finding anchored at ``node`` in this module."""
        return Finding(
            code=code,
            message=message,
            path=self.rel,
            line=getattr(node, "lineno", 0) if node is not None else 0,
            symbol=symbol,
            severity=severity,
        )


class Rule(Protocol):
    """One codified invariant: a stable code plus an AST check."""

    code: str
    name: str
    summary: str

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        """Yield findings for every violation in ``module``."""
        ...  # pragma: no cover - protocol declaration


def module_name_for(path: Path) -> str:
    """The dotted module name of a source file.

    Resolved from the directory layout: climbs from the file through
    every parent that carries an ``__init__.py`` (so ``src/repro/sim/
    events.py`` maps to ``repro.sim.events`` without importing it).
    """
    resolved = path.resolve()
    parts = [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [resolved.parent.name]
    return ".".join(reversed(parts))


def parse_module(
    path: Path,
    *,
    root: Path | None = None,
    module: str | None = None,
    source: str | None = None,
) -> ModuleUnderLint:
    """Load + parse one source file into a :class:`ModuleUnderLint`.

    Raises:
        ValidationError: on syntax errors (a file the linter cannot
            parse is itself a hard finding at the call site).
    """
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ValidationError(
            f"{path}: cannot lint, invalid syntax at line {exc.lineno}"
        ) from exc
    if root is not None:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
    else:
        rel = path.as_posix()
    return ModuleUnderLint(
        path=path,
        rel=rel,
        module=module if module is not None else module_name_for(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = (path,)
        elif not path.exists():
            raise ValidationError(f"no such file or directory: {path}")
        else:
            candidates = ()
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def apply_suppressions(
    findings: Iterable[Finding], modules: Iterable[ModuleUnderLint]
) -> tuple[Finding, ...]:
    """Filter findings through their module's ``noqa`` comments.

    Suppressions silence same-line findings of a covered code; every
    suppression without a ``-- reason`` justification surfaces as a
    :data:`NOQA_CODE` finding of its own (policy: no unexplained debt).
    """
    by_path = {module.rel: module for module in modules}
    kept: list[Finding] = []
    for finding in findings:
        module = by_path.get(finding.path)
        suppressed = module is not None and any(
            suppression.line == finding.line
            and suppression.covers(finding.code)
            for suppression in module.suppressions
        )
        if not suppressed:
            kept.append(finding)
    for module in by_path.values():
        for suppression in module.suppressions:
            if not suppression.reason:
                kept.append(
                    Finding(
                        code=NOQA_CODE,
                        message=(
                            "suppression without justification: write "
                            "'# repro: noqa[CODE] -- reason'"
                        ),
                        path=module.rel,
                        line=suppression.line,
                    )
                )
    return sort_findings(kept)


def run_rules(
    modules: Sequence[ModuleUnderLint],
    rules: Sequence[Rule],
) -> tuple[Finding, ...]:
    """Apply every rule to every module; suppressions already filtered."""
    findings: list[Finding] = []
    for module in modules:
        for rule in rules:
            findings.extend(rule.check(module))
    return apply_suppressions(findings, modules)


def lint_paths(
    paths: Iterable[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
) -> tuple[tuple[Finding, ...], int]:
    """Lint files/directories; returns (findings, checked-file count)."""
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    modules = [
        parse_module(path, root=root) for path in iter_python_files(paths)
    ]
    return run_rules(modules, rules), len(modules)


def lint_source(
    source: str,
    *,
    module: str = "fixture",
    path: str = "fixture.py",
    rules: Sequence[Rule] | None = None,
) -> tuple[Finding, ...]:
    """Lint one in-memory source under a declared module name.

    The fixture entry point: scope-sensitive rules (hot-path
    determinism, runtime isolation) activate by passing the module name
    they guard, e.g. ``module="repro.sim.fake"``.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    parsed = parse_module(Path(path), module=module, source=source)
    return run_rules([parsed], rules)


__all__ = [
    "ModuleUnderLint",
    "NOQA_CODE",
    "Rule",
    "Suppression",
    "apply_suppressions",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "parse_module",
    "parse_suppressions",
    "run_rules",
]
