"""Static validation of the scenario registry and the DSL surface.

The campaign plane executes whatever the registry declares; a wrong
variant fails *mid-campaign*, possibly hours into a sweep.  This module
front-loads that failure: it validates every registered
:class:`~repro.engine.spec.ScenarioSpec` and
:class:`~repro.engine.spec.VariantSpec` **without executing a single
variant** -- factories are resolved and introspected
(``inspect.signature``), never called; attacks are checked against the
catalog/binding tables, never armed.

Checks (codes are stable, like the ``REPnnn`` lint rules):

* ``SPC001`` duplicate variant ids across families;
* ``SPC002`` factory paths that do not resolve;
* ``SPC003`` parameter keys the factory signature does not accept
  (variant params, spec defaults and topology alike);
* ``SPC004`` fleet sizes outside the supported bounds;
* ``SPC005`` factories that do not accept ``trace_mode`` (campaigns run
  lean by default; such a factory silently falls back to full tracing);
* ``SPC006`` attack references that are neither a Step-4 bound id of
  the spec's use case nor a catalog key, and catalog-attack parameters
  the armer does not accept;
* ``SPC007`` non-diverging families: two variants of one family whose
  *resolved* scenario configuration is identical (dead design-space
  points that burn campaign budget without adding coverage);
* ``SPC008`` DSL documents that fail parse/semantic analysis
  (:mod:`repro.dsl.semantics` over the use cases' formatted attacks);
* ``SPC009`` dead DSL blocks: two attack blocks with identical field
  content (the second is an unreachable branch of the design space).
"""

from __future__ import annotations

import inspect
from typing import Any, Iterator

from repro.analysis.report import Finding, sort_findings
from repro.engine.attacks import ATTACK_CATALOG
from repro.engine.registry import (
    BOUND_ATTACKS,
    ScenarioRegistry,
    default_registry,
)
from repro.engine.spec import (
    ScenarioSpec,
    VariantSpec,
    factory_accepts,
    resolve_factory,
)
from repro.errors import ReproError, ValidationError

#: Largest convoy the spatial families are validated for; beyond this
#: the quadratic V2V relay fan-out dominates and sweeps should be
#: explicit about it.
MAX_FLEET_SIZE = 64

#: Virtual finding locations (the checks have no source file).
REGISTRY_PATH = "registry"
DSL_PATH = "dsl"


def _finding(
    code: str, message: str, symbol: str = "", path: str = REGISTRY_PATH
) -> Finding:
    return Finding(code=code, message=message, path=path, symbol=symbol)


def _accepted_keywords(spec: ScenarioSpec) -> tuple[frozenset[str], bool]:
    """The factory's keyword-parameter names and whether it has
    ``**kwargs`` -- introspected, never called."""
    factory = resolve_factory(spec.factory)
    signature = inspect.signature(factory)
    names = set()
    var_keyword = False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            var_keyword = True
        elif parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.add(parameter.name)
    return frozenset(names), var_keyword


def _check_spec(spec: ScenarioSpec) -> Iterator[Finding]:
    """Spec-level checks: factory resolution, trace_mode, layer keys."""
    try:
        accepted, var_keyword = _accepted_keywords(spec)
    except (ReproError, ImportError, TypeError, ValueError) as exc:
        yield _finding(
            "SPC002",
            f"factory {spec.factory!r} does not resolve: {exc}",
            symbol=spec.name,
        )
        return
    if not factory_accepts(spec.factory, "trace_mode"):
        yield _finding(
            "SPC005",
            f"factory {spec.factory!r} does not accept trace_mode; "
            "campaigns default to the lean counts mode and this spec "
            "would silently run full tracing",
            symbol=spec.name,
        )
    for layer_name, layer in (
        ("defaults", spec.defaults),
        ("topology", spec.topology),
    ):
        if var_keyword:
            break
        for key, _value in layer:
            if key not in accepted:
                yield _finding(
                    "SPC003",
                    f"spec {layer_name} key {key!r} is not a parameter "
                    f"of factory {spec.factory!r}",
                    symbol=spec.name,
                )


def _check_variant(
    variant: VariantSpec, spec: ScenarioSpec
) -> Iterator[Finding]:
    """Variant-level checks: params, fleet bounds, attack references."""
    try:
        accepted, var_keyword = _accepted_keywords(spec)
    except (ReproError, ImportError, TypeError, ValueError):
        return  # SPC002 already reported at spec level
    for key, value in variant.params:
        if not var_keyword and key not in accepted:
            yield _finding(
                "SPC003",
                f"param {key!r} is not a parameter of factory "
                f"{spec.factory!r}",
                symbol=variant.variant_id,
            )
        if key == "fleet_size" and (
            not isinstance(value, int)
            or isinstance(value, bool)
            or not 1 <= value <= MAX_FLEET_SIZE
        ):
            yield _finding(
                "SPC004",
                f"fleet_size must be an int in [1, {MAX_FLEET_SIZE}], "
                f"got {value!r}",
                symbol=variant.variant_id,
            )
    yield from _check_attack(variant, spec)


def _check_attack(
    variant: VariantSpec, spec: ScenarioSpec
) -> Iterator[Finding]:
    if variant.attack is None:
        return
    if variant.uses_bound_attack:
        bound = BOUND_ATTACKS.get(spec.use_case, ())
        if variant.attack not in bound:
            yield _finding(
                "SPC006",
                f"bound attack {variant.attack!r} has no Step-4 binding "
                f"for use case {spec.use_case!r} (known: {list(bound)})",
                symbol=variant.variant_id,
            )
        return
    armer = ATTACK_CATALOG.get(variant.attack)
    if armer is None:
        yield _finding(
            "SPC006",
            f"attack {variant.attack!r} is neither a bound attack id "
            f"nor a catalog key (known catalog: "
            f"{sorted(ATTACK_CATALOG)})",
            symbol=variant.variant_id,
        )
        return
    parameters = inspect.signature(armer).parameters
    names = {
        name
        for name, parameter in parameters.items()
        if parameter.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    }
    has_var_keyword = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    for key, _value in variant.attack_params:
        if not has_var_keyword and key not in names:
            yield _finding(
                "SPC006",
                f"attack_params key {key!r} is not a parameter of "
                f"catalog attack {variant.attack!r}",
                symbol=variant.variant_id,
            )


def _resolved_signature(
    variant: VariantSpec, spec: ScenarioSpec
) -> tuple[Any, ...]:
    """The variant's fully-resolved behaviour key (divergence check).

    Two variants with equal resolved signatures build the same scenario
    and run the same attack for the same horizon -- they cannot
    diverge, whatever their ids claim.
    """
    merged: dict[str, Any] = dict(spec.defaults)
    merged.update(dict(spec.topology))
    merged.update(dict(variant.params))
    return (
        variant.scenario,
        tuple(sorted(merged.items())),
        variant.attack,
        variant.attack_params,
        variant.duration_ms,
    )


def check_registry(
    registry: ScenarioRegistry | None = None,
) -> tuple[Finding, ...]:
    """Statically validate a registry (the stock one by default)."""
    if registry is None:
        registry = default_registry()
    findings: list[Finding] = []
    for name in registry.names():
        findings.extend(_check_spec(registry.get(name)))

    seen_ids: dict[str, str] = {}
    groups: dict[tuple[str, str], list[VariantSpec]] = {}
    for name in registry.names():
        for family in registry.families(name):
            try:
                variants = registry.variants(scenario=name, family=family)
            except ValidationError as exc:
                findings.append(
                    _finding("SPC001", str(exc), symbol=f"{name}/{family}")
                )
                continue
            for variant in variants:
                if variant.scenario != name:
                    # A generator may label variants with a foreign (or
                    # unregistered) scenario; resolve against what it
                    # claims so param checks use the right factory.
                    try:
                        spec = registry.get(variant.scenario)
                    except ValidationError as exc:
                        findings.append(
                            _finding(
                                "SPC002",
                                str(exc),
                                symbol=variant.variant_id,
                            )
                        )
                        continue
                else:
                    spec = registry.get(name)
                previous = seen_ids.get(variant.variant_id)
                if previous is not None:
                    findings.append(
                        _finding(
                            "SPC001",
                            f"duplicate variant id (also generated by "
                            f"{previous})",
                            symbol=variant.variant_id,
                        )
                    )
                    continue
                seen_ids[variant.variant_id] = f"{name}/{family}"
                findings.extend(_check_variant(variant, spec))
                groups.setdefault((name, family), []).append(variant)

    for (name, family), variants in groups.items():
        signatures: dict[tuple[Any, ...], str] = {}
        for variant in variants:
            signature = _resolved_signature(
                variant, registry.get(variant.scenario)
            )
            twin = signatures.get(signature)
            if twin is not None:
                findings.append(
                    _finding(
                        "SPC007",
                        f"family {family!r} cannot diverge: resolved "
                        f"configuration is identical to {twin}",
                        symbol=variant.variant_id,
                    )
                )
            else:
                signatures[signature] = variant.variant_id
    return sort_findings(findings)


def check_dsl() -> tuple[Finding, ...]:
    """Statically validate the DSL surface of both use cases.

    Formats every use case's attack descriptions as a DSL document,
    then re-parses and semantically analyzes it (the same pass
    ``repro validate`` runs) -- a full round-trip without executing any
    attack.  Duplicate-content blocks are reported as dead branches.
    """
    from repro.dsl import format_attacks, parse
    from repro.dsl.semantics import analyze
    from repro.threatlib.catalog import build_catalog
    from repro.usecases import uc1, uc2

    findings: list[Finding] = []
    catalog = build_catalog()
    for module, label in ((uc1, "uc1"), (uc2, "uc2")):
        path = f"{DSL_PATH}:{label}"
        source = format_attacks(list(module.build_attacks()))
        try:
            document = parse(source)
            analyze(
                document,
                catalog,
                list(module.build_hara().safety_goals),
            )
        except ReproError as exc:
            findings.append(
                _finding("SPC008", str(exc), symbol=label, path=path)
            )
            continue
        contents: dict[tuple[Any, ...], str] = {}
        for block in document.blocks:
            content = tuple(
                (field.name, field.values) for field in block.fields
            )
            twin = contents.get(content)
            if twin is not None:
                findings.append(
                    _finding(
                        "SPC009",
                        f"attack block duplicates {twin} field-for-field "
                        "(a dead branch of the design space)",
                        symbol=block.identifier,
                        path=path,
                    )
                )
            else:
                contents[content] = block.identifier
    return sort_findings(findings)


def check_all(
    registry: ScenarioRegistry | None = None,
) -> tuple[Finding, ...]:
    """Registry plus DSL checks, in one deterministic report order."""
    return sort_findings(check_registry(registry) + check_dsl())


__all__ = [
    "DSL_PATH",
    "MAX_FLEET_SIZE",
    "REGISTRY_PATH",
    "check_all",
    "check_dsl",
    "check_registry",
]
