"""STRIDE threat model support (paper §III-A3/A4).

Re-exports the :class:`~repro.model.threat.StrideType` value type alongside
the normative Table IV mapping (:mod:`repro.stride.mapping`) and the
keyword classifier that assists Step 1.3 (:mod:`repro.stride.classify`).
"""

from repro.model.threat import AttackType, StrideType
from repro.stride.classify import Classification, classify, suggest_stride
from repro.stride.mapping import (
    STRIDE_ATTACK_TABLE,
    all_attack_types,
    attack_types_for,
    resolve_attack_type,
    stride_types_for,
    validate_pair,
)

__all__ = [
    "AttackType",
    "Classification",
    "STRIDE_ATTACK_TABLE",
    "StrideType",
    "all_attack_types",
    "attack_types_for",
    "classify",
    "resolve_attack_type",
    "stride_types_for",
    "suggest_stride",
    "validate_pair",
]
