"""The normative STRIDE threat-type -> attack-type mapping (paper Table IV).

Step 1.4 of threat-library creation maps each STRIDE threat type to "the
corresponding manifestations of the threats, i.e. attack types".  This
module encodes Table IV verbatim and offers lookups in both directions:

* :func:`attack_types_for` -- the manifestations of a STRIDE type,
* :func:`stride_types_for` -- the STRIDE types a named attack type can
  manifest (some names appear under several types, e.g. "Config. change"
  and "Illegal acquisition").
"""

from __future__ import annotations

from repro.errors import CatalogError
from repro.model.threat import AttackType, StrideType

#: Table IV of the paper, verbatim.  Keys are STRIDE threat types; values
#: are the attack-type names listed for that type, in table order.
STRIDE_ATTACK_TABLE: dict[StrideType, tuple[str, ...]] = {
    StrideType.SPOOFING: (
        "Fake messages",
        "Spoofing",
    ),
    StrideType.TAMPERING: (
        "Corrupt data or code",
        "Deliver malware",
        "Alter",
        "Inject",
        "Corrupt messages",
        "Manipulate",
        "Config. change",
    ),
    StrideType.REPUDIATION: (
        "Replay",
        "Repudiation of message transmission",
        "Delay",
    ),
    StrideType.INFORMATION_DISCLOSURE: (
        "Listen",
        "Intercept",
        "Eavesdropping",
        "Illegal acquisition",
        "Covert channel",
        "Config. change",
    ),
    StrideType.DENIAL_OF_SERVICE: (
        "Disable",
        "Denial of service",
        "Jamming",
    ),
    StrideType.ELEVATION_OF_PRIVILEGE: (
        "Illegal acquisition",
        "Gain elevated access",
    ),
}


def attack_types_for(stride: StrideType) -> tuple[AttackType, ...]:
    """Return the attack types manifesting ``stride``, in Table IV order.

    >>> [at.name for at in attack_types_for(StrideType.DENIAL_OF_SERVICE)]
    ['Disable', 'Denial of service', 'Jamming']
    """
    return tuple(
        AttackType(name=name, stride=stride)
        for name in STRIDE_ATTACK_TABLE[stride]
    )


def all_attack_types() -> tuple[AttackType, ...]:
    """Every (attack-type name, STRIDE type) pair of Table IV."""
    pairs: list[AttackType] = []
    for stride in StrideType:
        pairs.extend(attack_types_for(stride))
    return tuple(pairs)


def stride_types_for(attack_type_name: str) -> tuple[StrideType, ...]:
    """Return the STRIDE types a named attack type can manifest.

    The lookup is case-insensitive.  Raises :class:`CatalogError` when the
    name appears nowhere in Table IV.

    >>> [s.value for s in stride_types_for("Illegal acquisition")]
    ['Information disclosure', 'Elevation of privilege']
    """
    normalized = attack_type_name.strip().lower()
    matches = tuple(
        stride
        for stride in StrideType
        if any(
            name.lower() == normalized
            for name in STRIDE_ATTACK_TABLE[stride]
        )
    )
    if not matches:
        raise CatalogError(
            f"attack type {attack_type_name!r} does not appear in Table IV",
            key=attack_type_name,
        )
    return matches


def resolve_attack_type(
    attack_type_name: str, stride: StrideType | None = None
) -> AttackType:
    """Resolve a name (and optional STRIDE hint) to a unique AttackType.

    When ``stride`` is given, the pair is validated against Table IV.
    When omitted, the name must be unambiguous (manifest exactly one STRIDE
    type) -- ambiguous names raise :class:`CatalogError` listing the
    candidates, forcing callers to disambiguate explicitly.
    """
    candidates = stride_types_for(attack_type_name)
    canonical = _canonical_name(attack_type_name)
    if stride is not None:
        if stride not in candidates:
            raise CatalogError(
                f"attack type {attack_type_name!r} does not manifest "
                f"{stride.value} in Table IV",
                key=attack_type_name,
            )
        return AttackType(name=canonical, stride=stride)
    if len(candidates) > 1:
        options = ", ".join(candidate.value for candidate in candidates)
        raise CatalogError(
            f"attack type {attack_type_name!r} is ambiguous (manifests "
            f"{options}); pass the intended STRIDE type",
            key=attack_type_name,
        )
    return AttackType(name=canonical, stride=candidates[0])


def _canonical_name(attack_type_name: str) -> str:
    """Return the Table IV spelling for a case-insensitive name match."""
    normalized = attack_type_name.strip().lower()
    for names in STRIDE_ATTACK_TABLE.values():
        for name in names:
            if name.lower() == normalized:
                return name
    raise CatalogError(
        f"attack type {attack_type_name!r} does not appear in Table IV",
        key=attack_type_name,
    )


def validate_pair(attack_type: AttackType) -> None:
    """Raise :class:`CatalogError` unless the pair is a Table IV entry.

    Used by the threat-library builder to guarantee that every attack type
    attached to a threat scenario went through the Step 1.4 mapping.
    """
    names = STRIDE_ATTACK_TABLE[attack_type.stride]
    if attack_type.name not in names:
        raise CatalogError(
            f"({attack_type.name!r}, {attack_type.stride.value}) is not a "
            "Table IV mapping",
            key=attack_type.name,
        )


__all__ = [
    "STRIDE_ATTACK_TABLE",
    "all_attack_types",
    "attack_types_for",
    "resolve_attack_type",
    "stride_types_for",
    "validate_pair",
]
