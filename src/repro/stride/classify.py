"""Heuristic STRIDE classification of threat-scenario text (Step 1.3 aid).

Step 1.3 maps threat scenarios to STRIDE threat types.  The paper notes
that mapping scenarios *directly* to attacks "could be done subjectively
depending on how the scenarios are described"; routing through STRIDE makes
it systematic.  This module supports that step with a transparent
keyword-scoring classifier: it suggests STRIDE types for a natural-language
threat statement, ranked by evidence, so an analyst can confirm rather than
invent the mapping.

The classifier is deliberately simple and fully inspectable -- a scoring
table, not a learned model -- because its output is reviewed by humans and
its behaviour must be explainable in a safety case.
"""

from __future__ import annotations

import dataclasses
import re

from repro.model.threat import StrideType

#: Evidence table: keyword/phrase -> (STRIDE type, weight).  Phrases are
#: matched on word boundaries, case-insensitively.  Weights reflect how
#: specific a cue is: "impersonation" is near-conclusive for Spoofing,
#: while "message" alone is weak evidence for several types.
_EVIDENCE: tuple[tuple[str, StrideType, int], ...] = (
    # Spoofing
    ("spoof", StrideType.SPOOFING, 5),
    ("impersonat", StrideType.SPOOFING, 5),
    ("fake", StrideType.SPOOFING, 4),
    ("masquerad", StrideType.SPOOFING, 4),
    ("phishing", StrideType.SPOOFING, 4),
    ("pretend", StrideType.SPOOFING, 3),
    ("tricked into", StrideType.SPOOFING, 3),
    ("forged", StrideType.SPOOFING, 3),
    # Tampering
    ("tamper", StrideType.TAMPERING, 5),
    ("manipulat", StrideType.TAMPERING, 4),
    ("inject", StrideType.TAMPERING, 4),
    ("corrupt", StrideType.TAMPERING, 4),
    ("alter", StrideType.TAMPERING, 4),
    ("modif", StrideType.TAMPERING, 3),
    ("malware", StrideType.TAMPERING, 3),
    ("code injection", StrideType.TAMPERING, 5),
    # Repudiation
    ("replay", StrideType.REPUDIATION, 5),
    ("repudiat", StrideType.REPUDIATION, 5),
    ("deny having", StrideType.REPUDIATION, 4),
    ("delay", StrideType.REPUDIATION, 3),
    ("without trace", StrideType.REPUDIATION, 3),
    # Information disclosure
    ("eavesdrop", StrideType.INFORMATION_DISCLOSURE, 5),
    ("listen", StrideType.INFORMATION_DISCLOSURE, 4),
    ("intercept", StrideType.INFORMATION_DISCLOSURE, 4),
    ("disclos", StrideType.INFORMATION_DISCLOSURE, 4),
    ("leak", StrideType.INFORMATION_DISCLOSURE, 4),
    ("profile", StrideType.INFORMATION_DISCLOSURE, 3),
    ("privacy", StrideType.INFORMATION_DISCLOSURE, 3),
    ("covert channel", StrideType.INFORMATION_DISCLOSURE, 5),
    ("sniff", StrideType.INFORMATION_DISCLOSURE, 4),
    # Denial of service
    ("denial of service", StrideType.DENIAL_OF_SERVICE, 5),
    ("flood", StrideType.DENIAL_OF_SERVICE, 5),
    ("overload", StrideType.DENIAL_OF_SERVICE, 5),
    ("jam", StrideType.DENIAL_OF_SERVICE, 4),
    ("disable", StrideType.DENIAL_OF_SERVICE, 4),
    ("crash", StrideType.DENIAL_OF_SERVICE, 3),
    ("halt", StrideType.DENIAL_OF_SERVICE, 3),
    ("unavailab", StrideType.DENIAL_OF_SERVICE, 4),
    ("runs slowly", StrideType.DENIAL_OF_SERVICE, 3),
    ("disrupt", StrideType.DENIAL_OF_SERVICE, 3),
    # Elevation of privilege
    ("elevat", StrideType.ELEVATION_OF_PRIVILEGE, 5),
    ("privilege", StrideType.ELEVATION_OF_PRIVILEGE, 4),
    ("backdoor", StrideType.ELEVATION_OF_PRIVILEGE, 4),
    ("unauthorized access", StrideType.ELEVATION_OF_PRIVILEGE, 4),
    ("gain access", StrideType.ELEVATION_OF_PRIVILEGE, 3),
    ("insider", StrideType.ELEVATION_OF_PRIVILEGE, 3),
    ("abuse of privileges", StrideType.ELEVATION_OF_PRIVILEGE, 5),
    ("external interface", StrideType.ELEVATION_OF_PRIVILEGE, 4),
    ("usb", StrideType.ELEVATION_OF_PRIVILEGE, 3),
    ("point of attack", StrideType.ELEVATION_OF_PRIVILEGE, 3),
)


@dataclasses.dataclass(frozen=True)
class Classification:
    """Result of classifying one threat statement.

    Attributes:
        scores: STRIDE type -> accumulated evidence weight (only non-zero
            entries).
        matched: The (phrase, stride, weight) evidence triples that fired,
            for explainability.
    """

    scores: dict[StrideType, int]
    matched: tuple[tuple[str, StrideType, int], ...]

    @property
    def best(self) -> StrideType | None:
        """The highest-scoring STRIDE type, or None when nothing matched.

        Ties break by STRIDE enum order, which is deterministic.
        """
        if not self.scores:
            return None
        return max(
            self.scores,
            key=lambda stride: (self.scores[stride], -list(StrideType).index(stride)),
        )

    def ranked(self) -> tuple[StrideType, ...]:
        """All matched STRIDE types, best first."""
        return tuple(
            sorted(
                self.scores,
                key=lambda stride: (
                    -self.scores[stride],
                    list(StrideType).index(stride),
                ),
            )
        )

    def suggestions(self, min_score: int = 3) -> tuple[StrideType, ...]:
        """STRIDE types with at least ``min_score`` evidence, best first."""
        return tuple(
            stride for stride in self.ranked() if self.scores[stride] >= min_score
        )


def classify(text: str) -> Classification:
    """Score a threat statement against the STRIDE evidence table.

    >>> classify("Spoofing of messages by impersonation").best.value
    'Spoofing'
    """
    lowered = text.lower()
    scores: dict[StrideType, int] = {}
    matched: list[tuple[str, StrideType, int]] = []
    for phrase, stride, weight in _EVIDENCE:
        if _phrase_in(phrase, lowered):
            scores[stride] = scores.get(stride, 0) + weight
            matched.append((phrase, stride, weight))
    return Classification(scores=scores, matched=tuple(matched))


def suggest_stride(text: str) -> StrideType | None:
    """Shortcut: the single best STRIDE suggestion for a statement."""
    return classify(text).best


def _phrase_in(phrase: str, lowered_text: str) -> bool:
    """Word-boundary-aware containment check for a (stemmed) phrase.

    Evidence entries are stems ("manipulat"), so the trailing boundary is
    open while the leading one is anchored: "manipulation" matches, but
    "emanipulat..." does not.
    """
    return re.search(r"\b" + re.escape(phrase), lowered_text) is not None


__all__ = [
    "Classification",
    "classify",
    "suggest_stride",
]
