"""``repro.runtime`` -- the pluggable execution layer.

Every fan-out in the reproduction (scenario campaigns, fuzz campaigns,
benchmark repetitions, the CLI's ``--backend``/``--jobs`` options) runs
through this package:

* :mod:`repro.runtime.backends` -- the :class:`ExecutionBackend`
  protocol and the ``serial`` / ``thread`` / ``process`` implementations
  (the only module in the repository importing :mod:`multiprocessing`);
* :mod:`repro.runtime.runtime` -- the :class:`Runtime` facade adding
  chunking, deterministic per-job seeds, progress events, structured
  error capture and cooperative cancellation on top of any backend;
* :mod:`repro.runtime.retry` -- :class:`RetryPolicy`, the deterministic
  transient-failure retry/backoff contract every retry loop in the tree
  must go through (rule ``REP011`` bans ad-hoc sleep loops elsewhere).

Quick use::

    from repro.runtime import ProcessBackend, Runtime

    with Runtime(ProcessBackend(jobs=4), seed=7) as runtime:
        for result in runtime.map(execute, items):   # streams
            if not result.ok:
                print("failed:", result.error.message)

Environment knobs: ``REPRO_BACKEND`` (``serial``/``thread``/``process``),
``REPRO_JOBS`` and ``REPRO_BATCH_SIZE`` feed :func:`backend_from_env`
(used by the bench harness); ``MULTIPROCESSING_START_METHOD`` selects
the process start method (the CI spawn matrix leg).  Wrapping any
backend in :class:`BatchedBackend` declares a batch size batch-aware
callers (:meth:`Runtime.map_batches`, the campaign runner) use to group
jobs with shared setup.
"""

from repro.runtime.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    BATCH_SIZE_ENV,
    JOBS_ENV,
    START_METHOD_ENV,
    BatchedBackend,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_start_methods,
    backend_from_env,
    backend_from_spec,
    default_start_method,
    in_worker_process,
    make_backend,
    mp_context,
    usable_cpus,
    worker_index,
)
from repro.runtime.retry import (
    DEFAULT_TRANSIENT_TYPES,
    RetryPolicy,
)
from repro.runtime.runtime import (
    MAX_SEED,
    CancelToken,
    JobError,
    JobFuture,
    JobResult,
    ProgressEvent,
    Runtime,
    derive_seed,
)

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BATCH_SIZE_ENV",
    "BatchedBackend",
    "CancelToken",
    "DEFAULT_TRANSIENT_TYPES",
    "ExecutionBackend",
    "JOBS_ENV",
    "JobError",
    "JobFuture",
    "JobResult",
    "MAX_SEED",
    "ProcessBackend",
    "ProgressEvent",
    "RetryPolicy",
    "Runtime",
    "START_METHOD_ENV",
    "SerialBackend",
    "ThreadBackend",
    "available_start_methods",
    "backend_from_env",
    "backend_from_spec",
    "default_start_method",
    "derive_seed",
    "in_worker_process",
    "make_backend",
    "mp_context",
    "usable_cpus",
    "worker_index",
]
