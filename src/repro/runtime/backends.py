"""Execution backends: where runtime jobs physically run.

This is the **only** module in the repository that imports
:mod:`multiprocessing`.  Everything that fans work out -- the campaign
runner, fuzz campaigns, benchmarks, the CLI -- goes through the
:class:`ExecutionBackend` protocol, so swapping how jobs execute
(in-process, threads, processes, and in the future async or distributed
runners) never touches the call sites again.

Three implementations ship today:

* :class:`SerialBackend` -- runs jobs inline, lazily, in submission
  order.  Zero overhead, fully deterministic, the default everywhere.
* :class:`ThreadBackend` -- a thread pool sharing the caller's memory.
  Right for jobs that wait (I/O, locks) or that must see in-process
  state such as a custom scenario registry.
* :class:`ProcessBackend` -- a process pool for CPU-bound fan-out.  Jobs
  and results must pickle; each worker process receives a stable
  0-based :func:`worker_index` so callers can partition global resources
  (identifier blocks, caches) without collisions.

The process start method resolves, in order: the explicit
``start_method=`` argument, the ``MULTIPROCESSING_START_METHOD``
environment variable (the CI matrix leg), then ``fork`` where available
with ``spawn`` as the portable fallback.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import threading
from concurrent import futures as _futures
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    runtime_checkable,
)

from repro.errors import ValidationError

_log = logging.getLogger("repro.runtime")

#: Environment variable selecting the process start method (CI matrix).
START_METHOD_ENV = "MULTIPROCESSING_START_METHOD"

#: Environment variables the bench harness uses to thread backend choice
#: down into scripts it cannot pass arguments to.
BACKEND_ENV = "REPRO_BACKEND"
JOBS_ENV = "REPRO_JOBS"
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"

#: The backend names :func:`make_backend` (and every ``--backend`` CLI
#: option) accepts, in increasing isolation order.
BACKEND_NAMES = ("serial", "thread", "process")


def usable_cpus() -> int:
    """CPUs this process may actually use (affinity-aware on Linux)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def available_start_methods() -> tuple[str, ...]:
    """The start methods this platform supports (``fork``, ``spawn``, ...)."""
    return tuple(multiprocessing.get_all_start_methods())


def default_start_method() -> str:
    """Resolve the start method: env override, else fork, else spawn."""
    configured = os.environ.get(START_METHOD_ENV, "").strip()
    methods = available_start_methods()
    if configured:
        if configured not in methods:
            raise ValidationError(
                f"{START_METHOD_ENV}={configured!r} is not supported here "
                f"(available: {', '.join(methods)})"
            )
        return configured
    return "fork" if "fork" in methods else "spawn"


def mp_context(
    start_method: str | None = None,
) -> multiprocessing.context.BaseContext:
    """A :mod:`multiprocessing` context for ``start_method``.

    Exposed so tests and tools that need a raw context (e.g. probing
    fork/spawn semantics) do not import :mod:`multiprocessing` directly
    -- this module is the single chokepoint for process machinery.
    """
    return multiprocessing.get_context(start_method or default_start_method())


# -- worker identity ----------------------------------------------------------

#: Set by :func:`_process_worker_init` inside pool worker processes.
_WORKER_INDEX = 0
_IN_WORKER_PROCESS = False

_thread_state = threading.local()


def worker_index() -> int:
    """The current worker's stable 0-based index.

    Inside a :class:`ProcessBackend` worker process this is the index the
    pool assigned at startup; inside a :class:`ThreadBackend` worker
    thread it is the thread's pool slot; in the main process/thread it is
    ``0``.  Callers use it to carve out disjoint resource blocks (e.g.
    identifier numbering) without coordination.
    """
    index = getattr(_thread_state, "index", None)
    if index is not None:
        return index
    return _WORKER_INDEX


def in_worker_process() -> bool:
    """True only inside a :class:`ProcessBackend` worker process.

    The flag lets job functions distinguish "I run in a short-lived pool
    worker and may reset process-global state" from "I run in the
    caller's own process and must not clobber it".
    """
    return _IN_WORKER_PROCESS


def _process_worker_init(
    sequence: Any,
    initializer: Callable[..., None] | None,
    initargs: tuple[Any, ...],
) -> None:
    """Pool-process startup: claim a worker index, then the user hook."""
    global _WORKER_INDEX, _IN_WORKER_PROCESS
    with sequence.get_lock():
        _WORKER_INDEX = sequence.value
        sequence.value += 1
    _IN_WORKER_PROCESS = True
    if initializer is not None:
        initializer(*initargs)


def _thread_worker_init(
    counter: Iterator[int],
    initializer: Callable[..., None] | None,
    initargs: tuple[Any, ...],
) -> None:
    """Pool-thread startup: claim a slot index, then the user hook."""
    _thread_state.index = next(counter)
    if initializer is not None:
        initializer(*initargs)


# -- the protocol -------------------------------------------------------------


@runtime_checkable
class ExecutionBackend(Protocol):
    """Where jobs run.  All backends speak this four-method protocol.

    Attributes:
        name: Stable backend tag (``"serial"``, ``"thread"``,
            ``"process"``) recorded in campaign results and bench files.
        jobs: Maximum concurrently executing jobs.
        shares_memory: True when jobs see the caller's objects directly
            (serial, thread); False when jobs cross a pickle boundary
            (process, and any future distributed backend).
    """

    name: str
    jobs: int
    shares_memory: bool

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> _futures.Future:
        """Schedule one call; return its future."""
        ...

    def map_unordered(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, fn(item))`` pairs in completion order.

        The iterator is lazy where the backend allows it; closing it
        early cancels whatever has not started.
        """
        ...

    def as_completed(
        self, fs: Iterable[_futures.Future], timeout: float | None = None
    ) -> Iterator[_futures.Future]:
        """Yield futures as they finish."""
        ...

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Release the backend's workers (idempotent)."""
        ...


# -- implementations ----------------------------------------------------------


class _BackendBase:
    """Shared future bookkeeping for all built-in backends."""

    name = "base"
    jobs = 1
    shares_memory = True

    def as_completed(
        self, fs: Iterable[_futures.Future], timeout: float | None = None
    ) -> Iterator[_futures.Future]:
        return _futures.as_completed(fs, timeout=timeout)

    def __enter__(self) -> "ExecutionBackend":
        return self  # type: ignore[return-value]

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialBackend(_BackendBase):
    """Run every job inline, lazily, in submission order.

    ``map_unordered`` executes one job per ``next()`` call, so streaming
    consumers (and cooperative cancellation) work exactly as they do on
    the pooled backends -- just one at a time.
    """

    name = "serial"
    jobs = 1
    shares_memory = True

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> _futures.Future:
        future: _futures.Future = _futures.Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - future carries it
            future.set_exception(exc)
        return future

    def map_unordered(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[tuple[int, Any]]:
        for index, item in enumerate(items):
            yield index, fn(item)

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Nothing to release: serial jobs run in the caller."""


class _PoolBackend(_BackendBase):
    """Common executor-backed implementation (threads and processes)."""

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValidationError(f"backend jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._executor: _futures.Executor | None = None
        self._lock = threading.Lock()

    def _make_executor(self) -> _futures.Executor:
        raise NotImplementedError

    @property
    def started(self) -> bool:
        """True once the worker pool exists (first submit starts it)."""
        return self._executor is not None

    def _ensure(self) -> _futures.Executor:
        with self._lock:
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> _futures.Future:
        return self._ensure().submit(fn, *args, **kwargs)

    def map_unordered(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[tuple[int, Any]]:
        pending = {self.submit(fn, item): index for index, item in enumerate(items)}
        try:
            for future in _futures.as_completed(list(pending)):
                # Drop the future as it completes so result payloads are
                # released to the consumer instead of accumulating here.
                index = pending.pop(future)
                yield index, future.result()
        finally:
            for future in pending:
                future.cancel()

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=cancel_pending)


class ThreadBackend(_PoolBackend):
    """A thread pool sharing the caller's memory (GIL applies).

    Best for jobs that block (I/O, admission locks) or that must touch
    in-process objects a process boundary would copy or reject.
    """

    name = "thread"
    shares_memory = True

    def __init__(
        self,
        jobs: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        super().__init__(jobs if jobs is not None else usable_cpus())
        self._initializer = initializer
        self._initargs = initargs

    def _make_executor(self) -> _futures.Executor:
        return _futures.ThreadPoolExecutor(
            max_workers=self.jobs,
            thread_name_prefix="repro-runtime",
            initializer=_thread_worker_init,
            initargs=(itertools.count(), self._initializer, self._initargs),
        )


class ProcessBackend(_PoolBackend):
    """A process pool for CPU-bound fan-out (jobs must pickle).

    Every worker process runs :func:`_process_worker_init` first: it
    claims a stable :func:`worker_index` from a shared counter and sets
    the :func:`in_worker_process` flag, then calls the optional user
    ``initializer``.  Works under both ``fork`` and ``spawn`` -- the
    shared counter travels through the executor's process-creation
    arguments, never through a task pickle.

    The backend is *supervised*: a worker dying mid-job (OOM kill,
    segfault, hard ``os._exit``) breaks a :class:`ProcessPoolExecutor`
    permanently, which by default would fail every in-flight job.
    :meth:`map_unordered` instead discards the broken pool, respawns a
    fresh one (up to ``respawn_limit`` times per backend), and
    re-enqueues exactly the jobs that never produced a result.  Past the
    budget it degrades to an inline serial drain in the calling process
    -- slower, but a campaign always terminates rather than hanging or
    crashing.  ``respawns`` counts pool replacements for observability.
    """

    name = "process"
    shares_memory = False

    def __init__(
        self,
        jobs: int | None = None,
        start_method: str | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        respawn_limit: int = 2,
    ) -> None:
        super().__init__(jobs if jobs is not None else usable_cpus())
        if respawn_limit < 0:
            raise ValidationError(
                f"respawn_limit must be >= 0, got {respawn_limit}"
            )
        self._start_method = start_method
        self._initializer = initializer
        self._initargs = initargs
        self.respawn_limit = respawn_limit
        self.respawns = 0

    @property
    def start_method(self) -> str:
        """The start method this backend will use (resolved lazily)."""
        return self._start_method or default_start_method()

    def _make_executor(self) -> _futures.Executor:
        context = mp_context(self.start_method)
        sequence = context.Value("i", 0)
        return _futures.ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=context,
            initializer=_process_worker_init,
            initargs=(sequence, self._initializer, self._initargs),
        )

    def map_unordered(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[tuple[int, Any]]:
        remaining = dict(enumerate(items))
        while remaining:
            if self.respawns > self.respawn_limit:
                # Degraded mode: the pool kept dying, so finish the
                # leftovers inline rather than hang or crash the stream.
                _log.warning(
                    "process pool exceeded its respawn budget (%d); "
                    "draining %d job(s) inline",
                    self.respawn_limit,
                    len(remaining),
                )
                for index in sorted(remaining):
                    yield index, fn(remaining.pop(index))
                return
            pending: dict[_futures.Future, int] = {}
            try:
                for index in sorted(remaining):
                    pending[self.submit(fn, remaining[index])] = index
                for future in _futures.as_completed(list(pending)):
                    index = pending.pop(future)
                    value = future.result()
                    del remaining[index]
                    yield index, value
            except _futures.BrokenExecutor:
                # A worker died (exitcode watch is the executor's own
                # management thread); every pending future is poisoned.
                # Replace the pool and re-enqueue the unfinished jobs.
                self.respawns += 1
                _log.warning(
                    "process worker died; pool replacement %d (budget %d), "
                    "%d job(s) to re-enqueue",
                    self.respawns,
                    self.respawn_limit,
                    len(remaining),
                )
                self.shutdown(wait=False, cancel_pending=True)
            finally:
                for future in pending:
                    future.cancel()


class BatchedBackend(_BackendBase):
    """An inner backend plus a batching contract.

    The wrapper delegates every protocol call to the wrapped
    serial/thread/process backend unchanged -- individual jobs submitted
    to a batched backend behave exactly as before.  What it adds is the
    declaration, carried in ``batch_size``, that batch-aware callers
    (:meth:`repro.runtime.Runtime.map_batches`, the campaign runner's
    :class:`~repro.engine.batch.BatchPlan`) may ship groups of up to
    ``batch_size`` jobs to a worker as one unit, amortising per-group
    setup.  Callers that never look at ``batch_size`` are unaffected,
    which is why wrapping is safe everywhere a plain backend is accepted.

    ``shares_memory`` and ``jobs`` proxy the inner backend so existing
    capability checks (custom-registry refusal on pickle boundaries,
    chunk sizing) keep working unchanged.
    """

    def __init__(self, inner: ExecutionBackend, batch_size: int = 8) -> None:
        if isinstance(inner, BatchedBackend):
            raise ValidationError("batched backends do not nest")
        if batch_size < 1:
            raise ValidationError(
                f"batch size must be >= 1, got {batch_size}"
            )
        self.inner = inner
        self.batch_size = batch_size

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"batched-{self.inner.name}"

    @property
    def jobs(self) -> int:  # type: ignore[override]
        return self.inner.jobs

    @property
    def shares_memory(self) -> bool:  # type: ignore[override]
        return self.inner.shares_memory

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> _futures.Future:
        return self.inner.submit(fn, *args, **kwargs)

    def map_unordered(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[tuple[int, Any]]:
        return self.inner.map_unordered(fn, items)

    def as_completed(
        self, fs: Iterable[_futures.Future], timeout: float | None = None
    ) -> Iterator[_futures.Future]:
        return self.inner.as_completed(fs, timeout=timeout)

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        self.inner.shutdown(wait=wait, cancel_pending=cancel_pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedBackend({self.inner!r}, batch_size={self.batch_size})"
        )


# -- factories ----------------------------------------------------------------


def make_backend(
    name: str, jobs: int | None = None, **kwargs: Any
) -> ExecutionBackend:
    """Build a backend from its CLI name (``serial``/``thread``/``process``).

    ``serial`` is definitionally single-job, so asking it for
    parallelism is rejected rather than silently ignored; extra keyword
    arguments go to the backend constructor (e.g. ``start_method=`` for
    ``process``).
    """
    if name == "serial":
        if jobs is not None and jobs != 1:
            raise ValidationError(
                f"the serial backend runs exactly one job (got jobs={jobs}); "
                "choose thread or process for parallelism"
            )
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(jobs=jobs, **kwargs)
    if name == "process":
        return ProcessBackend(jobs=jobs, **kwargs)
    raise ValidationError(
        f"unknown backend {name!r} (choose one of {', '.join(BACKEND_NAMES)})"
    )


def backend_from_spec(
    spec: "str | ExecutionBackend | None",
    jobs: int | None = None,
    batch_size: int | None = None,
) -> ExecutionBackend:
    """Normalise the ``backend=``/``jobs=`` calling convention.

    ``None`` means: ``serial`` unless ``jobs`` asks for parallelism, in
    which case ``process`` (the CPU-bound default).  A string goes
    through :func:`make_backend`; a ready backend is returned unchanged
    (``jobs`` must then be unset -- the backend already knows its size).

    ``batch_size`` wraps the resolved backend in a
    :class:`BatchedBackend` so batch-aware callers group jobs; passing
    it alongside an already-batched backend is a conflict.
    """
    if isinstance(spec, BatchedBackend):
        if batch_size is not None and batch_size != spec.batch_size:
            raise ValidationError(
                f"batch_size={batch_size} conflicts with the provided "
                f"backend ({spec.name}, batch_size={spec.batch_size}); "
                "size the backend directly"
            )
        backend = spec.inner
        batch_size = spec.batch_size
    else:
        backend = spec
    if backend is None:
        if jobs is None or jobs <= 1:
            backend = SerialBackend()
        else:
            backend = ProcessBackend(jobs=jobs)
    elif isinstance(backend, str):
        backend = make_backend(backend, jobs=jobs)
    elif jobs is not None and jobs != backend.jobs:
        raise ValidationError(
            f"jobs={jobs} conflicts with the provided backend "
            f"({backend.name}, jobs={backend.jobs}); size the backend "
            "directly"
        )
    if batch_size is not None:
        return BatchedBackend(backend, batch_size=batch_size)
    return backend


def _int_env(environ: Mapping[str, str], variable: str) -> int | None:
    text = environ.get(variable, "").strip()
    if not text:
        return None
    try:
        return int(text)
    except ValueError:
        raise ValidationError(
            f"{variable} must be an integer, got {text!r}"
        ) from None


def backend_from_env(
    environ: Mapping[str, str] | None = None,
) -> ExecutionBackend:
    """Build a backend from ``REPRO_BACKEND`` / ``REPRO_JOBS`` /
    ``REPRO_BATCH_SIZE``.

    Unset variables mean the serial default, so scripts wired through
    this helper behave exactly as before unless a harness (or a user)
    opts into parallelism or batching.
    """
    environ = os.environ if environ is None else environ
    name = environ.get(BACKEND_ENV, "").strip() or None
    jobs = _int_env(environ, JOBS_ENV)
    batch_size = _int_env(environ, BATCH_SIZE_ENV)
    return backend_from_spec(name, jobs, batch_size=batch_size)


__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BATCH_SIZE_ENV",
    "BatchedBackend",
    "ExecutionBackend",
    "JOBS_ENV",
    "ProcessBackend",
    "START_METHOD_ENV",
    "SerialBackend",
    "ThreadBackend",
    "available_start_methods",
    "backend_from_env",
    "backend_from_spec",
    "default_start_method",
    "in_worker_process",
    "make_backend",
    "mp_context",
    "usable_cpus",
    "worker_index",
]
