"""The :class:`Runtime` facade: batched, seeded, observable job execution.

Backends (:mod:`repro.runtime.backends`) answer *where* a call runs; this
module answers *how a workload runs well*:

* **chunking** -- items are grouped into chunks so fine-grained jobs
  amortise per-task dispatch overhead (``chunksize=1`` streams at single
  -job granularity, the default);
* **deterministic seeds** -- every job receives a seed derived from the
  runtime's root seed and the job's index via :func:`derive_seed`, so a
  campaign re-run with the same root seed is bit-identical on any
  backend, under any start method, at any parallelism;
* **structured error capture** -- a job that raises yields a
  :class:`JobResult` carrying a :class:`JobError` (type, message,
  worker-side traceback) instead of crashing the whole fan-out;
* **progress events** -- each completion emits a :class:`ProgressEvent`
  to the ``on_event`` callback, so CLIs and campaign drivers can report
  long runs without polling;
* **cooperative cancellation** -- a shared :class:`CancelToken` stops
  dispatch between jobs and cancels whatever has not started, yielding
  the results already produced.
"""

from __future__ import annotations

import concurrent.futures as _futures
import dataclasses
import functools
import hashlib
import threading
import time
import traceback
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import DeadlineExceededError, ExecutionError, ValidationError
from repro.runtime.backends import ExecutionBackend, SerialBackend

#: Largest derived seed (63 bits: always a positive Python/NumPy-safe int).
MAX_SEED = (1 << 63) - 1


def derive_seed(root: int, *parts: Any) -> int:
    """Derive a stable per-job seed from a root seed and identifying parts.

    The derivation hashes ``root`` and the parts' string forms, so it is
    identical across processes, start methods and platforms -- unlike
    ``hash()``, which is salted per interpreter.

    >>> derive_seed(1, 0) == derive_seed(1, 0)
    True
    >>> derive_seed(1, 0) != derive_seed(1, 1)
    True
    """
    text = ":".join([str(root), *(str(part) for part in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & MAX_SEED


class CancelToken:
    """A shared, thread-safe cooperative cancellation flag.

    Hand one token to a runtime (or several) and call :meth:`cancel`
    from any thread -- an event callback, a signal handler, a watchdog.
    Jobs already running finish; nothing new starts.

    Tokens compose into trees: :meth:`child` derives a token that trips
    when its parent trips but can also be cancelled alone -- the shape a
    long-lived service needs, where cancelling one submission must not
    take the daemon (or its other submissions) down, while daemon
    shutdown must cancel everything at once.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list[Callable[[], None]] = []

    def cancel(self) -> None:
        """Request cancellation (idempotent; fires linked callbacks once)."""
        with self._lock:
            if self._event.is_set():
                return
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancelled (or ``timeout``); True when cancelled."""
        return self._event.wait(timeout)

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire (once) on cancellation.

        An already-cancelled token fires the callback immediately, so
        registration order and cancellation order cannot race.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback()

    def child(self) -> "CancelToken":
        """A linked token: parent cancellation trips it, not vice versa."""
        token = CancelToken()
        self.on_cancel(token.cancel)
        return token


@dataclasses.dataclass(frozen=True)
class JobError:
    """A worker-side exception, captured as plain data.

    The live exception object may not survive a process boundary, so
    jobs carry their failures home as (type name, message, formatted
    traceback) -- enough to report, triage, and re-raise.
    """

    type: str
    message: str
    traceback: str = ""

    def to_exception(self) -> ExecutionError:
        """This error as a raisable :class:`~repro.errors.ExecutionError`."""
        return ExecutionError(
            f"{self.type}: {self.message}",
            error_type=self.type,
            error_traceback=self.traceback,
        )

    @classmethod
    def from_exception(cls, exc: BaseException) -> "JobError":
        """Capture a live exception into its plain-data form.

        Capture must never raise: a poisoned exception (one whose
        ``__str__`` blows up, or whose payload cannot pickle across a
        spawn boundary) would otherwise crash the worker's error path
        and take the whole backend down with it.  The message degrades
        to ``repr()`` and then to a placeholder; the traceback degrades
        to empty.
        """
        try:
            message = str(exc)
        except Exception:  # noqa: BLE001 - poisoned __str__
            try:
                message = repr(exc)
            except Exception:  # noqa: BLE001 - poisoned __repr__ too
                message = f"<unprintable {type(exc).__name__}>"
        try:
            formatted = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
        except Exception:  # noqa: BLE001 - rendering touches the payload
            formatted = ""
        return cls(
            type=type(exc).__name__, message=message, traceback=formatted
        )


@dataclasses.dataclass(frozen=True)
class JobResult:
    """One job's outcome: a value or a captured error, never an exception.

    Attributes:
        index: The job's position in the submitted item sequence.
        value: The job function's return value (``None`` on error).
        error: The captured worker-side failure (``None`` on success).
        seed: The deterministic seed the job was derived (always set).
        wall_time_s: Worker-side execution time of this job alone.
    """

    index: int
    value: Any = None
    error: JobError | None = None
    seed: int = 0
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the job returned normally."""
        return self.error is None

    def unwrap(self) -> Any:
        """The value, or raise the captured error as an ExecutionError."""
        if self.error is not None:
            raise self.error.to_exception()
        return self.value


@dataclasses.dataclass(frozen=True)
class ProgressEvent:
    """One observable step of a runtime map.

    ``kind`` is ``"completed"`` (job finished, see ``result.ok`` for
    success), ``"cancelled"`` (the token tripped; no further jobs will
    run) or ``"finished"`` (the map is exhausted).
    """

    kind: str
    done: int
    total: int
    result: JobResult | None = None


# -- worker-side chunk execution ----------------------------------------------
#
# Top-level (hence picklable) so ProcessBackend can ship chunks to
# workers under both fork and spawn.


def _run_chunk(
    fn: Callable[..., Any],
    seeded: bool,
    chunk: Sequence[tuple[int, int, Any]],
    deadline_s: float | None = None,
) -> list[dict[str, Any]]:
    """Execute one chunk of ``(index, seed, item)`` jobs; capture errors.

    ``deadline_s`` is a cooperative per-job wall-clock budget: the job
    runs to completion and a breach is reported afterwards as a
    :class:`~repro.errors.DeadlineExceededError`-typed error payload, so
    the check is deterministic rather than a race with a timer thread.
    """
    results: list[dict[str, Any]] = []
    for index, seed, item in chunk:
        started = time.perf_counter()
        try:
            value = fn(item, seed) if seeded else fn(item)
        except Exception as exc:  # noqa: BLE001 - captured, reported upstream
            results.append(
                {
                    "index": index,
                    "seed": seed,
                    "error": dataclasses.asdict(JobError.from_exception(exc)),
                    "wall_time_s": time.perf_counter() - started,
                }
            )
        else:
            elapsed = time.perf_counter() - started
            if deadline_s is not None and elapsed > deadline_s:
                breach = DeadlineExceededError(
                    f"job {index} exceeded its {deadline_s:g}s deadline "
                    f"({elapsed:.3f}s)"
                )
                results.append(
                    {
                        "index": index,
                        "seed": seed,
                        "error": dataclasses.asdict(
                            JobError.from_exception(breach)
                        ),
                        "wall_time_s": elapsed,
                    }
                )
            else:
                results.append(
                    {
                        "index": index,
                        "seed": seed,
                        "value": value,
                        "wall_time_s": elapsed,
                    }
                )
    return results


def _chunked(
    jobs: Sequence[tuple[int, int, Any]], chunksize: int
) -> list[tuple[tuple[int, int, Any], ...]]:
    return [
        tuple(jobs[start : start + chunksize])
        for start in range(0, len(jobs), chunksize)
    ]


class JobFuture:
    """A single in-flight job, resolvable to one :class:`JobResult`.

    The async-friendly sibling of :meth:`Runtime.map`: where ``map``
    drains a whole workload, a future lets a scheduler keep many
    independent jobs in flight on one shared backend and harvest each
    as it lands -- errors still arrive as error-carrying results, never
    as raised exceptions (only infrastructure faults raise).
    """

    def __init__(self, future: "_futures.Future[list[dict[str, Any]]]", index: int, seed: int) -> None:
        self._future = future
        self.index = index
        self.seed = seed

    def done(self) -> bool:
        """True once the job has finished (or was cancelled)."""
        return self._future.done()

    def cancel(self) -> bool:
        """Try to cancel; False if the job already started running."""
        return self._future.cancel()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block for the job's :class:`JobResult` (cancelled jobs yield
        an error-carrying result rather than raising)."""
        try:
            payloads = self._future.result(timeout=timeout)
        except _futures.CancelledError:
            error = JobError(type="CancelledError", message="job cancelled before start")
            return JobResult(index=self.index, value=None, error=error, seed=self.seed)
        payload = payloads[0]
        error_payload = payload.get("error")
        return JobResult(
            index=payload["index"],
            value=payload.get("value"),
            error=JobError(**error_payload) if error_payload else None,
            seed=payload["seed"],
            wall_time_s=payload["wall_time_s"],
        )

    def add_done_callback(self, callback: "Callable[[JobFuture], None]") -> None:
        """Run ``callback(self)`` when the job completes (or immediately
        if it already has)."""
        self._future.add_done_callback(lambda _f: callback(self))


def _run_batch(
    fn: Callable[[Any, Sequence[tuple[int, int, Any]]], list[dict[str, Any]]],
    batch: tuple[Any, Sequence[tuple[int, int, Any]]],
) -> list[dict[str, Any]]:
    """Worker-side unpacking shim for :meth:`Runtime.map_batches`."""
    context, jobs = batch
    return fn(context, jobs)


class Runtime:
    """Batched, seeded, observable execution over one backend.

    A runtime is cheap: it owns no workers itself (the backend does) and
    can be used as a context manager to shut the backend down::

        with Runtime(ProcessBackend(jobs=4), seed=7) as runtime:
            for result in runtime.map(execute, items):
                ...  # streams in completion order

    Args:
        backend: Where jobs run (default: a fresh :class:`SerialBackend`).
        seed: Root seed all per-job seeds derive from.
        on_event: Progress callback receiving :class:`ProgressEvent`.
        cancel: Shared cancellation token (one is created if omitted).
        deadline_s: Cooperative per-job wall-clock budget applied by
            :meth:`map` and :meth:`submit_job`; a job that runs longer
            yields a ``DeadlineExceededError``-typed error result.
    """

    def __init__(
        self,
        backend: ExecutionBackend | None = None,
        *,
        seed: int = 1,
        on_event: Callable[[ProgressEvent], None] | None = None,
        cancel: CancelToken | None = None,
        deadline_s: float | None = None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValidationError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        self.backend = backend if backend is not None else SerialBackend()
        self.seed = seed
        self.cancel = cancel if cancel is not None else CancelToken()
        self.deadline_s = deadline_s
        self._on_event = on_event

    # -- events ------------------------------------------------------------

    def _emit(self, kind: str, done: int, total: int, result: JobResult | None = None) -> None:
        if self._on_event is not None:
            self._on_event(
                ProgressEvent(kind=kind, done=done, total=total, result=result)
            )

    # -- execution ---------------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        *,
        seeded: bool = False,
        chunksize: int = 1,
    ) -> Iterator[JobResult]:
        """Run ``fn`` over ``items``; yield :class:`JobResult` as completed.

        ``fn`` is called as ``fn(item)`` -- or ``fn(item, seed)`` with
        the job's derived seed when ``seeded=True``.  On a process
        backend both ``fn`` and the items must pickle.  Failures arrive
        as error-carrying results; this iterator itself only raises for
        infrastructure faults (e.g. a broken worker pool).
        """
        if chunksize < 1:
            raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
        jobs = [
            (index, derive_seed(self.seed, index), item)
            for index, item in enumerate(items)
        ]
        total = len(jobs)
        done = 0
        if self.cancel.cancelled:
            self._emit("cancelled", done, total)
            return
        chunks = _chunked(jobs, chunksize)
        # partial over the module-level _run_chunk pickles, so one shape
        # serves the in-process and the process backends alike.
        stream = self.backend.map_unordered(
            functools.partial(
                _run_chunk, fn, seeded, deadline_s=self.deadline_s
            ),
            chunks,
        )
        yield from self._stream_payloads(stream, total)

    def _stream_payloads(
        self, stream: Iterator[tuple[int, list[dict[str, Any]]]], total: int
    ) -> Iterator[JobResult]:
        """Consume a payload-list stream into per-job results + events."""
        done = 0
        try:
            for _group_index, payloads in stream:
                for payload in payloads:
                    error = payload.get("error")
                    result = JobResult(
                        index=payload["index"],
                        value=payload.get("value"),
                        error=JobError(**error) if error else None,
                        seed=payload["seed"],
                        wall_time_s=payload["wall_time_s"],
                    )
                    done += 1
                    self._emit("completed", done, total, result)
                    yield result
                if self.cancel.cancelled:
                    self._emit("cancelled", done, total)
                    return
        finally:
            stream.close()
        self._emit("finished", done, total)

    def map_batches(
        self,
        fn: Callable[[Any, Sequence[tuple[int, int, Any]]], list[dict[str, Any]]],
        batches: Iterable[tuple[Any, Sequence[tuple[int, Any]]]],
    ) -> Iterator[JobResult]:
        """Run a batch-level function; stream *per-item* :class:`JobResult`.

        Each element of ``batches`` is ``(context, jobs)``: an opaque
        shared-setup context the batch function builds once per batch,
        plus ``(index, item)`` pairs carrying every item's position in
        the original *unbatched* sequence.  ``fn`` is called once per
        batch as ``fn(context, triples)`` where the triples are the
        ``(index, seed, item)`` shape of :func:`_run_chunk` -- the seed
        is derived from the original index exactly as :meth:`map`
        derives it, so grouping jobs into batches never moves a seed.
        ``fn`` returns a list of payload dicts (``index``, ``seed``,
        ``value``/``error``, ``wall_time_s``); reuse :func:`_run_chunk`
        for the per-item loop.  On a process backend ``fn``, contexts
        and items must pickle.
        """
        work = []
        for context, jobs in batches:
            triples = tuple(
                (index, derive_seed(self.seed, index), item)
                for index, item in jobs
            )
            work.append((context, triples))
        total = sum(len(triples) for _context, triples in work)
        if self.cancel.cancelled:
            self._emit("cancelled", 0, total)
            return
        stream = self.backend.map_unordered(
            functools.partial(_run_batch, fn), work
        )
        yield from self._stream_payloads(stream, total)

    def submit_job(
        self,
        fn: Callable[..., Any],
        item: Any,
        *,
        index: int = 0,
        seeded: bool = False,
    ) -> JobFuture:
        """Submit one job; return a :class:`JobFuture` immediately.

        The job runs through the same worker-side shape as :meth:`map`
        (``_run_chunk`` with a one-job chunk), so seeding and error
        capture are identical -- ``index`` stands in for the position a
        batch map would have assigned, and the seed derives from it.
        """
        seed = derive_seed(self.seed, index)
        future = self.backend.submit(
            _run_chunk, fn, seeded, ((index, seed, item),), self.deadline_s
        )
        return JobFuture(future, index, seed)

    def run(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        *,
        seeded: bool = False,
        chunksize: int = 1,
    ) -> list[JobResult]:
        """Like :meth:`map` but collected and ordered by job index."""
        return sorted(
            self.map(fn, items, seeded=seeded, chunksize=chunksize),
            key=lambda result: result.index,
        )

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Shut the backend down (idempotent)."""
        self.backend.shutdown(wait=wait, cancel_pending=not wait)

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


__all__ = [
    "CancelToken",
    "JobError",
    "JobFuture",
    "JobResult",
    "MAX_SEED",
    "ProgressEvent",
    "Runtime",
    "derive_seed",
]
