"""Deterministic retry policies for transient job failures.

A :class:`RetryPolicy` decides *whether* a failed job deserves another
attempt (only error classes marked transient qualify) and *how long* to
back off before it (exponential growth with seeded jitter, so two runs
of the same campaign wait the same amounts in the same order).

This module is the one place in the tree allowed to spin a
``time.sleep``-based retry loop: rule ``REP011`` flags sleep-in-a-loop
anywhere outside ``repro.runtime``, funnelling every backoff decision
through a policy object that tests can inspect and replay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.runtime.runtime import CancelToken, JobError, MAX_SEED, derive_seed

#: Error type names retried by default.  ``TransientError`` is the
#: explicit opt-in marker (subclass it, or raise it, to declare a
#: failure temporary); the rest are the OS-level failures that routinely
#: heal on a second attempt.  Matching is by *class name* because worker
#: errors cross process boundaries as :class:`JobError` text, not live
#: exception objects.
DEFAULT_TRANSIENT_TYPES: tuple[str, ...] = (
    "BrokenPipeError",
    "ConnectionError",
    "ConnectionResetError",
    "InterruptedError",
    "TimeoutError",
    "TransientError",
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run a transiently failing job, and how fast.

    Attributes:
        max_attempts: Total attempts allowed, counting the first run.
        base_delay_s: Backoff before the first retry; doubles per retry.
        max_delay_s: Hard cap on any single backoff.
        jitter: Fraction of the capped delay added as seeded noise in
            ``[0, jitter)`` -- deterministic for a given ``seed`` and
            job key, unlike the random jitter most retry loops use.
        transient_types: Exception *class names* eligible for retry.
            Matching is exact on the unqualified name recorded in
            :class:`~repro.runtime.runtime.JobError.type`.
        seed: Root of the jitter derivation.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.1
    transient_types: tuple[str, ...] = field(
        default=DEFAULT_TRANSIENT_TYPES
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValidationError("retry delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValidationError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )

    def is_transient(self, error: JobError | str) -> bool:
        """Whether ``error`` (a JobError or a type name) may be retried."""
        name = error.type if isinstance(error, JobError) else error
        return name in self.transient_types

    def should_retry(self, error: JobError | str, attempt: int) -> bool:
        """Whether attempt ``attempt`` (1-based) failing with ``error``
        leaves budget for another try."""
        return attempt < self.max_attempts and self.is_transient(error)

    def delay_s(self, attempt: int, *parts: int | str) -> float:
        """Backoff before the attempt *after* ``attempt`` (1-based).

        Exponential in the attempt number, capped at ``max_delay_s``,
        plus jitter derived from ``(seed, attempt, *parts)`` -- pass the
        job's identity as ``parts`` so concurrent retries de-correlate
        without losing determinism.
        """
        if attempt < 1:
            raise ValidationError(f"attempt is 1-based, got {attempt}")
        delay = min(self.base_delay_s * (2 ** (attempt - 1)), self.max_delay_s)
        if self.jitter and delay:
            noise = derive_seed(self.seed, "retry-jitter", attempt, *parts)
            delay += delay * self.jitter * (noise / MAX_SEED)
        return delay

    def wait(
        self,
        attempt: int,
        *parts: int | str,
        cancel: CancelToken | None = None,
    ) -> float:
        """Sleep out the backoff for ``attempt``; returns the delay used.

        With a ``cancel`` token the wait doubles as a cancellation
        point: it returns as soon as the token fires.
        """
        delay = self.delay_s(attempt, *parts)
        if delay <= 0:
            return delay
        if cancel is not None:
            cancel.wait(delay)
        else:
            time.sleep(delay)
        return delay


__all__ = [
    "DEFAULT_TRANSIENT_TYPES",
    "RetryPolicy",
]
