"""Lexer for the attack-description DSL.

Hand-written scanner producing :class:`~repro.dsl.tokens.Token` streams.
Line comments start with ``#``; strings are double-quoted with ``\\"`` and
``\\\\`` escapes and must close on the same line (attack prose is long but
the format keeps one field per line).
"""

from __future__ import annotations

from repro.dsl.tokens import Token, TokenType
from repro.errors import DslSyntaxError

_PUNCTUATION = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize DSL source text.

    Returns the token list ending with an EOF token.

    Raises:
        DslSyntaxError: on unterminated strings or illegal characters.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def advance(count: int = 1) -> None:
        nonlocal index, line, column
        for __ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]
        if char in " \t\r\n":
            advance()
            continue
        if char == "#":
            while index < length and source[index] != "\n":
                advance()
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[char], char, line, column))
            advance()
            continue
        if char == '"':
            tokens.append(_scan_string(source, index, line, column, advance))
            continue
        if char.isdigit():
            tokens.append(_scan_dotted(source, index, line, column, advance))
            continue
        if char.isalpha() or char == "_":
            tokens.append(_scan_ident(source, index, line, column, advance))
            continue
        raise DslSyntaxError(f"illegal character {char!r}", line, column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens


def _scan_string(source, start, line, column, advance) -> Token:
    """Scan a double-quoted string starting at ``start``."""
    index = start + 1
    parts: list[str] = []
    while index < len(source):
        char = source[index]
        if char == "\n":
            raise DslSyntaxError("unterminated string", line, column)
        if char == "\\":
            if index + 1 >= len(source):
                raise DslSyntaxError("unterminated escape", line, column)
            escape = source[index + 1]
            if escape == '"':
                parts.append('"')
            elif escape == "\\":
                parts.append("\\")
            elif escape == "n":
                parts.append("\n")
            else:
                raise DslSyntaxError(
                    f"unknown escape \\{escape}", line, column
                )
            index += 2
            continue
        if char == '"':
            consumed = index - start + 1
            advance(consumed)
            return Token(TokenType.STRING, "".join(parts), line, column)
        parts.append(char)
        index += 1
    raise DslSyntaxError("unterminated string", line, column)


def _scan_dotted(source, start, line, column, advance) -> Token:
    """Scan a dotted number like ``2.1.4`` (also plain integers)."""
    index = start
    while index < len(source) and (
        source[index].isdigit() or source[index] == "."
    ):
        index += 1
    text = source[start:index]
    if text.endswith("."):
        raise DslSyntaxError(
            f"malformed dotted number {text!r}", line, column
        )
    advance(index - start)
    return Token(TokenType.DOTTED, text, line, column)


def _scan_ident(source, start, line, column, advance) -> Token:
    """Scan an identifier / keyword."""
    index = start
    while index < len(source) and (
        source[index].isalnum() or source[index] in "_-"
    ):
        index += 1
    text = source[start:index]
    advance(index - start)
    token_type = TokenType.ATTACK if text == "attack" else TokenType.IDENT
    return Token(token_type, text, line, column)


__all__ = [
    "tokenize",
]
