"""Formatter: attack descriptions -> DSL source (the encoder direction).

Formatting and re-parsing round-trips losslessly; the property tests rely
on this to show the DSL can serve as the canonical storage format for
attack descriptions.
"""

from __future__ import annotations

from repro.model.attack import AttackCategory, AttackDescription


def _quote(text: str) -> str:
    """Escape and double-quote a string value."""
    escaped = (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
    return f'"{escaped}"'


def format_attack(attack: AttackDescription) -> str:
    """Render one attack description as a DSL block."""
    goals = ", ".join(attack.safety_goal_ids) if attack.safety_goal_ids else "none"
    lines = [
        f"attack {attack.identifier} {{",
        f"  description: {_quote(attack.description)}",
        f"  goals: {goals}",
        f"  interface: {_quote(attack.interface)}",
        f"  threat: {attack.threat_link.threat_scenario_id}",
        f"  threat_type: {_quote(attack.stride.value)}",
        f"  attack_type: {_quote(attack.attack_type.name)}",
        f"  precondition: {_quote(attack.precondition)}",
        f"  expected_measures: {_quote(attack.expected_measures)}",
        f"  success: {_quote(attack.attack_success)}",
        f"  fails: {_quote(attack.attack_fails)}",
    ]
    if attack.implementation_comments:
        lines.append(f"  impl: {_quote(attack.implementation_comments)}")
    if attack.category is not AttackCategory.SAFETY:
        lines.append(f"  category: {attack.category.value}")
    lines.append("}")
    return "\n".join(lines)


def format_attacks(attacks: list[AttackDescription]) -> str:
    """Render a list of attack descriptions as one DSL document."""
    return "\n\n".join(format_attack(attack) for attack in attacks) + "\n"


__all__ = [
    "format_attack",
    "format_attacks",
]
