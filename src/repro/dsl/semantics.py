"""Semantic analysis: DSL AST -> validated attack descriptions.

The semantic pass resolves every reference a parsed attack block makes --
safety goals against the Step 2 results, threat scenarios against the
Step 1 library, attack types against the Table IV mapping -- and emits
:class:`~repro.model.attack.AttackDescription` objects.  It reuses the
:class:`~repro.core.derivation.AttackDeriver`, so DSL-sourced attacks pass
exactly the same trace validation as programmatically derived ones.
"""

from __future__ import annotations

from repro.core.derivation import AttackDeriver, AttackDescriptionSet
from repro.dsl.ast import AttackBlockNode, DocumentNode
from repro.errors import CatalogError, DslSemanticError, ValidationError
from repro.model.attack import AttackCategory
from repro.model.safety import SafetyGoal
from repro.model.threat import StrideType
from repro.threatlib.library import ThreatLibrary


def analyze(
    document: DocumentNode,
    library: ThreatLibrary,
    goals: list[SafetyGoal],
) -> AttackDescriptionSet:
    """Validate a parsed document and produce attack descriptions.

    Raises:
        DslSemanticError: carrying the attack id and the underlying trace
            problem for every broken reference.
    """
    deriver = AttackDeriver.create(library, goals, name="DSL attacks")
    for block in document.blocks:
        _analyze_block(block, deriver)
    return deriver.results


def _analyze_block(block: AttackBlockNode, deriver: AttackDeriver) -> None:
    def text(name: str, default: str = "") -> str:
        field = block.field(name)
        return field.single if field is not None else default

    goals_field = block.field("goals")
    assert goals_field is not None  # parser enforces required fields
    category = _category(block)
    stride = _stride(block)
    try:
        deriver.derive(
            description=text("description"),
            safety_goal_ids=goals_field.values,
            threat_id=text("threat"),
            attack_type_name=text("attack_type"),
            interface=text("interface"),
            precondition=text("precondition"),
            expected_measures=text("expected_measures"),
            attack_success=text("success"),
            attack_fails=text("fails"),
            implementation_comments=text("impl"),
            category=category,
            stride=stride,
            identifier=block.identifier,
        )
    except (ValidationError, CatalogError) as exc:
        raise DslSemanticError(f"{block.identifier}: {exc}") from exc


def _category(block: AttackBlockNode) -> AttackCategory:
    field = block.field("category")
    if field is None:
        return AttackCategory.SAFETY
    label = field.single.lower()
    for member in AttackCategory:
        if member.value == label:
            return member
    raise DslSemanticError(
        f"{block.identifier}: unknown category {field.single!r} "
        "(expected safety or privacy)"
    )


def _stride(block: AttackBlockNode) -> StrideType:
    field = block.field("threat_type")
    assert field is not None
    try:
        return StrideType.from_label(field.single)
    except ValueError as exc:
        raise DslSemanticError(f"{block.identifier}: {exc}") from exc


__all__ = [
    "analyze",
]
